//! Workspace-level integration tests: the full pipeline from C source to
//! ranked warnings, across all crates through the `acspec_repro` facade.

use acspec_repro::cfront::compile_c;
use acspec_repro::core::{analyze_procedure, cons_baseline, AcspecOptions, ConfigName, SibStatus};
use acspec_repro::ir::parse::parse_program;
use acspec_repro::vcgen::analyzer::AnalyzerConfig;

/// The complete Figure 1 scenario in C, through the HAVOC-style front
/// end: parse → instrument → desugar → analyze.
#[test]
fn c_double_free_end_to_end() {
    let src = "
        void dispatch(int *c, char *buf, int cmd) {
          if (nondet()) {
            free(c);
            free(buf);
            return;
          }
          if (cmd == 1) {
            if (nondet()) {
              free(c);
              free(buf);
              /* ERROR: missing return */
            }
          }
          free(c);
          free(buf);
        }";
    let program = compile_c(src).expect("compiles");
    let proc = program.procedure("dispatch").expect("exists").clone();

    let cons = cons_baseline(&program, &proc, AnalyzerConfig::default()).expect("ok");
    assert_eq!(cons.warnings.len(), 6, "Cons floods: {:?}", cons.warnings);

    let report = analyze_procedure(
        &program,
        &proc,
        &AcspecOptions::for_config(ConfigName::Conc),
    )
    .expect("ok");
    assert_eq!(report.status, SibStatus::Sib);
    assert_eq!(report.warnings.len(), 1, "got {:?}", report.warnings);
    // The surviving warning is the double free after the missing return
    // (the 5th free — first of the fall-through pair).
    assert!(report.warnings[0].tag.starts_with("double-free@"));
}

/// The fixed variant (with the return) reports nothing anywhere.
#[test]
fn c_fixed_double_free_is_clean() {
    let src = "
        void dispatch(int *c, char *buf, int cmd) {
          if (nondet()) {
            free(c);
            free(buf);
            return;
          }
          if (cmd == 1) {
            if (nondet()) {
              free(c);
              free(buf);
              return;
            }
          }
          free(c);
          free(buf);
        }";
    let program = compile_c(src).expect("compiles");
    let proc = program.procedure("dispatch").expect("exists").clone();
    for config in ConfigName::all() {
        let report =
            analyze_procedure(&program, &proc, &AcspecOptions::for_config(config)).expect("ok");
        assert!(
            report.warnings.is_empty(),
            "[{config}] false alarm: {:?}",
            report.warnings
        );
    }
}

/// Surface-syntax and C front ends produce consistent verdicts on the
/// same semantics.
#[test]
fn surface_and_c_frontends_agree() {
    let c_prog = compile_c(
        "int *malloc(int n);
         void f(void) {
           int *p = malloc(8);
           if (p == NULL) { *p = 1; }
         }",
    )
    .expect("compiles");
    let s_prog = parse_program(
        "procedure malloc() returns (r: int);
         procedure f() {
           var p: int;
           call p := malloc();
           if (p == 0) {
             assert p != 0;
             skip;
           }
         }",
    )
    .expect("parses");
    for (prog, which) in [(&c_prog, "C"), (&s_prog, "surface")] {
        let proc = prog.procedure("f").expect("exists").clone();
        let r = analyze_procedure(prog, &proc, &AcspecOptions::for_config(ConfigName::Conc))
            .expect("ok");
        assert_eq!(r.status, SibStatus::Sib, "{which}: doomed deref is a SIB");
        assert_eq!(r.warnings.len(), 1, "{which}");
    }
}

/// Benchmark generation → evaluation is deterministic end to end.
#[test]
fn evaluation_is_deterministic() {
    use acspec_repro::benchgen::samate::cwe476;
    let run = || {
        let bm = cwe476(99, 8);
        let mut verdicts = Vec::new();
        for proc in &bm.program.procedures {
            if proc.body.is_none() {
                continue;
            }
            let r = analyze_procedure(
                &bm.program,
                proc,
                &AcspecOptions::for_config(ConfigName::A1),
            )
            .expect("ok");
            let mut tags: Vec<String> = r.warnings.iter().map(|w| w.tag.clone()).collect();
            tags.sort();
            verdicts.push((proc.name.clone(), format!("{}", r.status), tags));
        }
        verdicts
    };
    assert_eq!(run(), run());
}

/// The smt crate is usable standalone through the facade.
#[test]
fn facade_reexports_solver() {
    use acspec_repro::smt::{Ctx, SmtResult, Solver};
    let mut ctx = Ctx::new();
    let mut solver = Solver::new();
    let x = ctx.mk_int_var("x");
    let one = ctx.mk_int(1);
    let lt = ctx.mk_lt(x, one);
    let gt = ctx.mk_lt(one, x);
    solver.assert_term(&mut ctx, lt);
    solver.assert_term(&mut ctx, gt);
    assert_eq!(solver.check(&mut ctx, &[]), SmtResult::Unsat);
}

/// Stress: a moderately branchy C function flows through every stage
/// within budget.
#[test]
fn branchy_function_analyzes_within_budget() {
    let src = "
        struct node { int v; struct node *next; };
        struct node *get(void);
        void walk(struct node *n, int k) {
          if (n == NULL) { return; }
          if (k > 0) {
            struct node *m = n->next;
            if (m != NULL) {
              m->v = k;
            }
          }
          n->v = 0;
        }";
    let program = compile_c(src).expect("compiles");
    let proc = program.procedure("walk").expect("exists").clone();
    for config in ConfigName::all() {
        let r = analyze_procedure(&program, &proc, &AcspecOptions::for_config(config)).expect("ok");
        assert!(!r.timed_out(), "[{config}] timed out");
    }
}
