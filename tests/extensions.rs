//! Workspace-level integration tests for the features beyond the paper's
//! prototype: triage, interprocedural inference, witnesses, the path
//! metric, and JSON reports — all through the facade, end to end from C.

use acspec_repro::cfront::compile_c;
use acspec_repro::core::{
    analyze_procedure, infer_preconditions, triage_program, AcspecOptions, Confidence, ConfigName,
    DeadMetric, SibStatus,
};

const DRIVER: &str = "
    struct req { int len; int cmd; };
    struct req *get_request(void);

    /* doomed dereference: highest confidence */
    void handle_bad(int *p) {
      if (p == NULL) { *p = 0; }
    }

    /* unchecked allocation behind an inconsistent check: medium */
    void handle_alloc(void) {
      struct req *r = get_request();
      if (flag()) {
        r->len = 0;
      } else {
        if (r != NULL) { r->len = 1; }
      }
    }

    int flag(void) { return 1; }
";

#[test]
fn triage_ranks_c_driver_warnings() {
    let program = compile_c(DRIVER).expect("compiles");
    let ranked = triage_program(&program, &AcspecOptions::default()).expect("triages");
    assert!(!ranked.is_empty());
    // The doomed dereference outranks the allocation inconsistency.
    let pos = |name: &str| {
        ranked
            .iter()
            .position(|r| r.proc_name == name)
            .unwrap_or_else(|| panic!("{name} missing: {ranked:?}"))
    };
    assert!(pos("handle_bad") < pos("handle_alloc"));
    assert_eq!(ranked[pos("handle_bad")].confidence, Confidence::Concrete);
    // Every ranked warning carries a provenance tag.
    for r in &ranked {
        assert!(r.warning.tag.contains('@'), "tag: {}", r.warning.tag);
    }
}

#[test]
fn interproc_from_c_source() {
    let program = compile_c(
        "void leaf(int *p) { *p = 1; }
         void caller(void) { leaf(NULL); }",
    )
    .expect("compiles");
    let opts = AcspecOptions::default();
    let inferred = infer_preconditions(&program, &opts).expect("infers");
    assert!(inferred.inferred.contains_key("leaf"));
    let caller = inferred.program.procedure("caller").expect("x").clone();
    let r = analyze_procedure(&inferred.program, &caller, &opts).expect("ok");
    assert_eq!(r.warnings.len(), 1);
    assert_eq!(r.status, SibStatus::Sib, "passing NULL dooms the call");
}

#[test]
fn witnesses_survive_the_c_pipeline() {
    let program = compile_c(
        "void f(int *p, int cmd) {
           if (cmd == 3) {
             if (p == NULL) { *p = 1; }
           }
         }",
    )
    .expect("compiles");
    let proc = program.procedure("f").expect("x").clone();
    let r = analyze_procedure(&program, &proc, &AcspecOptions::default()).expect("ok");
    assert_eq!(r.warnings.len(), 1);
    let w = r.warnings[0].witness.as_ref().expect("witness");
    assert_eq!(
        w.get("cmd"),
        Some(3),
        "witness drives the guarded path: {w}"
    );
    assert_eq!(w.get("p"), Some(0), "witness nulls the pointer: {w}");
}

#[test]
fn path_metric_from_c_source() {
    // Correlated double-check across two branches: wp kills the
    // (then, then) combination but no single branch.
    let program = compile_c(
        "void f(int a, int b, int *p) {
           int t = 0;
           if (a == 0) { t = 1; } else { t = 2; }
           if (b == 0) { t = 3; } else { t = 4; }
           if (a == 0) { if (b == 0) { *p = t; } }
         }",
    )
    .expect("compiles");
    let proc = program.procedure("f").expect("x").clone();
    let mut branch = AcspecOptions::for_config(ConfigName::Conc);
    branch.dead_metric = DeadMetric::BranchCoverage;
    let mut path = branch;
    path.dead_metric = DeadMetric::PathCoverage { max_profiles: 64 };
    let rb = analyze_procedure(&program, &proc, &branch).expect("ok");
    let rp = analyze_procedure(&program, &proc, &path).expect("ok");
    // The path metric can only strengthen the verdict.
    if rb.status == SibStatus::Sib {
        assert_eq!(rp.status, SibStatus::Sib);
    }
    assert!(rp.warnings.len() >= rb.warnings.len());
}

#[test]
fn json_report_round_trips_through_serde() {
    let program = compile_c("void f(int *p) { if (p == NULL) { *p = 1; } }").expect("ok");
    let proc = program.procedure("f").expect("x").clone();
    let r = analyze_procedure(&program, &proc, &AcspecOptions::default()).expect("ok");
    let json = r.to_json();
    let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    assert_eq!(v["proc_name"], "f");
    assert_eq!(v["status"], "Sib");
    assert_eq!(v["warnings"].as_array().expect("array").len(), 1);
}
