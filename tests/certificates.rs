//! End-to-end certificate tests: the analysis produces `--certs-out`
//! documents that the independent `acspec-check` crate accepts in full,
//! and single-field mutations (a flipped model bit, a negated proof
//! literal, a dropped blocking clause) are rejected.
//!
//! The producer and the checker share no code — `acspec-check` has no
//! dependencies at all — so these tests exercise the whole trust chain:
//! engine serialization, the JSON writer, the checker's parser, and its
//! model-evaluation / proof-replay re-validation.

use proptest::prelude::*;

use acspec_bench::{evaluate_with, EvalOptions};
use acspec_benchgen::suite::{generate_entry, SuiteKind, SUITE};
use acspec_check::check_document;
use acspec_repro::core::{
    certs_json, AcspecOptions, ConfigName, NullObserver, ProcCerts, ProcOutcome, ProgramAnalysis,
    SessionObserver,
};
use acspec_repro::ir::parse::parse_program;
use acspec_repro::vcgen::chaos::ChaosConfig;
use acspec_repro::vcgen::{CertEvent, CertOutcome};

/// Analyzes every procedure of `src` under `configs` with certification
/// on and returns the collected per-procedure certificate stores.
fn certify_source(src: &str, configs: &[ConfigName], chaos: Option<ChaosConfig>) -> Vec<ProcCerts> {
    let program = parse_program(src).expect("parses");
    let mut opts = AcspecOptions::for_config(configs[0]);
    opts.analyzer.chaos = chaos;
    let mut null = NullObserver;
    let observer: &mut dyn SessionObserver = &mut null;
    let results = ProgramAnalysis::new(&program)
        .options(opts)
        .configs(configs)
        .certify(true)
        .run(observer);
    results
        .into_iter()
        .filter_map(|o| match o {
            ProcOutcome::Analyzed(mut pa) => pa.certs.take(),
            ProcOutcome::Faulted(_) => None,
        })
        .collect()
}

/// A program with a doomed null deref (SIB), a correct procedure, and a
/// may-fail one: exercises sat and unsat certificates, cube claims,
/// exhaustion proofs, and weakening chains in one document.
const MIXED_SRC: &str = "
    procedure malloc() returns (r: int);
    procedure doomed() {
      var p: int;
      call p := malloc();
      if (p == 0) {
        assert p != 0;
        skip;
      }
    }
    procedure solid(n: int) {
      var x: int;
      x := n;
      assert x == n;
    }
    procedure shaky(n: int) {
      var x: int;
      x := n;
      if (n > 0) {
        x := x + 1;
      }
      assert x > 0;
    }
";

#[test]
fn clean_certificates_all_check() {
    let certs = certify_source(MIXED_SRC, &ConfigName::all(), None);
    let doc = certs_json(&certs);
    let sum = check_document(&doc);
    assert!(sum.ok(), "clean document must check: {:?}", sum.errors);
    let produced: usize = certs.iter().map(|p| p.store.certs.len()).sum();
    assert_eq!(sum.certs, produced, "every certificate examined");
    assert!(sum.sat_certs > 0 && sum.unsat_certs > 0, "{sum:?}");
    assert!(sum.claims > 0, "claims were threaded through");
}

/// Flips one boolean (or bumps one integer) in the first `Sat` model.
fn flip_model_bit(certs: &mut [ProcCerts]) -> bool {
    for pc in certs.iter_mut() {
        for c in &mut pc.store.certs {
            if let CertOutcome::Sat(m) = &mut c.outcome {
                if let Some(v) = m.bools.values_mut().next() {
                    *v = !*v;
                    return true;
                }
                if let Some(v) = m.ints.values_mut().next() {
                    *v = v.wrapping_add(1);
                    return true;
                }
            }
        }
    }
    false
}

/// Negates the first literal of the first non-empty input clause in the
/// first `Unsat` proof.
fn negate_proof_lit(certs: &mut [ProcCerts]) -> bool {
    for pc in certs.iter_mut() {
        for c in &mut pc.store.certs {
            if let CertOutcome::Unsat(p) = &mut c.outcome {
                for e in &mut p.events {
                    if let CertEvent::Input { lits, .. } = e {
                        if let Some(l) = lits.first_mut() {
                            *l = -*l;
                            return true;
                        }
                    }
                }
            }
        }
    }
    false
}

/// Clears the blocking clauses of the first `Unsat` certificate that has
/// any, so its external input clauses lose their provenance.
fn drop_blocking(certs: &mut [ProcCerts]) -> bool {
    for pc in certs.iter_mut() {
        for c in &mut pc.store.certs {
            if matches!(c.outcome, CertOutcome::Unsat(_)) && !c.blocking.is_empty() {
                c.blocking.clear();
                return true;
            }
        }
    }
    false
}

#[test]
fn mutated_certificates_are_rejected() {
    let clean = certify_source(MIXED_SRC, &ConfigName::all(), None);
    assert!(check_document(&certs_json(&clean)).ok());

    type Mutator = fn(&mut [ProcCerts]) -> bool;
    let mutations: [(&str, Mutator); 3] = [
        ("model bit flip", flip_model_bit),
        ("proof literal negation", negate_proof_lit),
        ("blocking clause drop", drop_blocking),
    ];
    for (what, mutate) in mutations {
        let mut doc = clean.clone();
        assert!(mutate(&mut doc), "{what}: no mutation site found");
        let sum = check_document(&certs_json(&doc));
        assert!(!sum.ok(), "{what} must be detected");
    }
}

/// The large-benchmark suite (the figure 8/9 workload, scaled down to
/// keep the test fast): every certificate the evaluation emits checks,
/// and a bit flip in that document is caught too.
#[test]
fn suite_certificates_accept_and_reject_bit_flips() {
    let entry = SUITE
        .iter()
        .find(|e| e.kind == SuiteKind::Large)
        .expect("suite has large benchmarks");
    let bm = generate_entry(entry, 64);
    let opts = EvalOptions {
        certify: true,
        ..EvalOptions::default()
    };
    let mut null = NullObserver;
    let mut ev = evaluate_with(&bm, &opts, &mut null);
    assert!(!ev.certs.is_empty(), "evaluation produced certificates");
    let sum = check_document(&certs_json(&ev.certs));
    assert!(sum.ok(), "suite certs must check: {:?}", sum.errors);
    assert!(sum.sat_certs > 0 && sum.unsat_certs > 0, "{sum:?}");

    assert!(flip_model_bit(&mut ev.certs) || negate_proof_lit(&mut ev.certs));
    assert!(!check_document(&certs_json(&ev.certs)).ok());
}

/// See `crates/core/tests/fault_tolerance.rs`: keeps the default
/// panic-hook spam off stderr for the chaos harness's injected panics.
fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.starts_with("chaos:"));
            if !injected {
                prev(info);
            }
        }));
    });
}

/// Fault injection must not leak unverifiable evidence: whatever
/// certificates survive a chaotic run still check. (Faulted procedures
/// produce incidents, not certificates; degraded ones only certify the
/// claims they actually re-proved.)
#[test]
fn chaos_runs_emit_only_checkable_certificates() {
    silence_injected_panics();
    for seed in [3u64, 17, 40] {
        let chaos = ChaosConfig::new(seed, 0.25);
        let certs = certify_source(MIXED_SRC, &ConfigName::all(), Some(chaos));
        let sum = check_document(&certs_json(&certs));
        assert!(
            sum.ok(),
            "chaos seed {seed}: unverifiable certificate leaked: {:?}",
            sum.errors
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Round trip: generated driver programs → certify → serialize →
    /// independent parse + re-validation, across random seeds and
    /// procedure counts.
    #[test]
    fn generated_programs_round_trip(seed in 0u64..10_000, procs in 1usize..5) {
        let bm = acspec_benchgen::drivers::generate(
            "certs-prop",
            seed,
            procs,
            acspec_benchgen::drivers::PatternMix::default(),
        );
        let opts = EvalOptions {
            certify: true,
            ..EvalOptions::default()
        };
        let mut null = NullObserver;
        let ev = evaluate_with(&bm, &opts, &mut null);
        let doc = certs_json(&ev.certs);
        let sum = check_document(&doc);
        prop_assert!(sum.ok(), "seed {seed}: {:?}", sum.errors);
        let produced: usize = ev.certs.iter().map(|p| p.store.certs.len()).sum();
        prop_assert_eq!(sum.certs, produced);
        // Serialization is deterministic: same stores, same bytes.
        prop_assert_eq!(doc, certs_json(&ev.certs));
    }
}
