//! Offline stand-in for [`serde_json`]: serializes any
//! [`serde::Serialize`] value to (pretty) JSON text and parses JSON text
//! into a dynamic [`Value`]. See `vendor/README.md` for why this exists.
//!
//! Supported surface: [`to_string`], [`to_string_pretty`], [`from_str`]
//! (into [`Value`] only), [`Value`] indexing by key and position, and the
//! comparison/accessor helpers tests use (`as_array`, `as_str`,
//! `PartialEq` against literals).

// Stand-in for an external crate: exempt from workspace lints.
#![allow(clippy::all)]

use std::collections::BTreeMap;
use std::fmt;

mod parse;
mod ser;
mod value;

pub use value::Value;

/// Serialization/parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl serde::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
///
/// # Errors
///
/// Returns [`Error`] if a `Serialize` impl reports one (the std impls
/// never do).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = to_value(value)?;
    let mut out = String::new();
    ser::write_value(&mut out, &v, None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Returns [`Error`] if a `Serialize` impl reports one.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = to_value(value)?;
    let mut out = String::new();
    ser::write_value(&mut out, &v, Some(2), 0);
    Ok(out)
}

/// Serializes `value` into a dynamic [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] if a `Serialize` impl reports one.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    value.serialize(ser::ValueSerializer)
}

/// Parses JSON text into a [`Value`].
///
/// # Errors
///
/// Returns [`Error`] on malformed input.
pub fn from_str(s: &str) -> Result<Value, Error> {
    parse::parse(s)
}

pub(crate) type Map = BTreeMap<String, Value>;
