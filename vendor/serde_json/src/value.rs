//! The dynamic JSON value.

use std::fmt;
use std::ops::Index;

use crate::Map;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Integers are kept exact; everything else is an `f64`.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (keys sorted, as `serde_json`'s `preserve_order`-less
    /// default effectively yields for ACSpec's reports).
    Object(Map),
}

/// A JSON number: integer when possible, float otherwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer out of `i64` range.
    UInt(u64),
    /// Float.
    Float(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::Int(i) => write!(f, "{i}"),
            Number::UInt(u) => write!(f, "{u}"),
            Number::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

impl Value {
    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::Int(i)) => Some(*i),
            Value::Number(Number::UInt(u)) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// The value as an `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::Int(i)) => u64::try_from(*i).ok(),
            Value::Number(Number::UInt(u)) => Some(*u),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::Int(i)) => Some(*i as f64),
            Value::Number(Number::UInt(u)) => Some(*u as f64),
            Value::Number(Number::Float(x)) => Some(*x),
            _ => None,
        }
    }

    /// True if the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object lookup returning `None` off-type or when absent.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

const NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_i64() == Some(i64::from(*other))
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<usize> for Value {
    fn eq(&self, other: &usize) -> bool {
        self.as_u64().is_some_and(|u| u as usize == *other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        crate::ser::write_value(&mut out, self, None, 0);
        f.write_str(&out)
    }
}
