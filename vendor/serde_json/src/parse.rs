//! A recursive-descent JSON parser producing [`Value`] trees.

use crate::value::{Number, Value};
use crate::{Error, Map};

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing input"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        serde::Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = self
                            .bytes
                            .get(self.pos..self.pos + 4)
                            .ok_or_else(|| self.err("short \\u escape"))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
                        self.pos += 4;
                        // Surrogate pairs are not reconstructed; lone
                        // surrogates map to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-assemble the UTF-8 sequence starting at b.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| self.err("bad UTF-8"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if float {
            text.parse::<f64>()
                .map(|x| Value::Number(Number::Float(x)))
                .map_err(|_| self.err("bad number"))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Number(Number::Int(i)))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::Number(Number::UInt(u)))
        } else {
            text.parse::<f64>()
                .map(|x| Value::Number(Number::Float(x)))
                .map_err(|_| self.err("bad number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_report_shaped_document() {
        let src = r#"{"name": "f", "warnings": [{"assert": "A5", "witness": null}], "n": 3, "t": 0.25, "ok": true}"#;
        let v = parse(src).expect("parses");
        assert_eq!(v["name"], "f");
        assert_eq!(v["warnings"][0]["assert"], "A5");
        assert!(v["warnings"][0]["witness"].is_null());
        assert_eq!(v["n"], 3i64);
        assert_eq!(v["t"].as_f64(), Some(0.25));
        assert_eq!(v["ok"], true);
        let reprinted = crate::from_str(&v.to_string()).expect("reparses");
        assert_eq!(v, reprinted);
    }

    #[test]
    fn escapes_survive() {
        let v = parse(r#""a\"b\\c\ndA""#).expect("parses");
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{41}"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
    }
}
