//! Serialize → [`Value`] bridge and the JSON writer.

use serde::ser::{SerializeMap, SerializeSeq, SerializeStruct};
use serde::{Serialize, Serializer};

use crate::value::{Number, Value};
use crate::{Error, Map};

/// Serializer producing a [`Value`] tree.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;
    type SerializeStruct = StructState;
    type SerializeSeq = SeqState;
    type SerializeMap = MapState;

    fn serialize_bool(self, v: bool) -> Result<Value, Error> {
        Ok(Value::Bool(v))
    }

    fn serialize_i64(self, v: i64) -> Result<Value, Error> {
        Ok(Value::Number(Number::Int(v)))
    }

    fn serialize_u64(self, v: u64) -> Result<Value, Error> {
        Ok(match i64::try_from(v) {
            Ok(i) => Value::Number(Number::Int(i)),
            Err(_) => Value::Number(Number::UInt(v)),
        })
    }

    fn serialize_f64(self, v: f64) -> Result<Value, Error> {
        Ok(Value::Number(Number::Float(v)))
    }

    fn serialize_str(self, v: &str) -> Result<Value, Error> {
        Ok(Value::String(v.to_string()))
    }

    fn serialize_unit(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }

    fn serialize_none(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Value, Error> {
        value.serialize(self)
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<Value, Error> {
        Ok(Value::String(variant.to_string()))
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<StructState, Error> {
        Ok(StructState { map: Map::new() })
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<SeqState, Error> {
        Ok(SeqState {
            items: Vec::with_capacity(len.unwrap_or(0)),
        })
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<MapState, Error> {
        Ok(MapState { map: Map::new() })
    }
}

/// In-progress struct.
pub struct StructState {
    map: Map,
}

impl SerializeStruct for StructState {
    type Ok = Value;
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.map
            .insert(key.to_string(), value.serialize(ValueSerializer)?);
        Ok(())
    }

    fn end(self) -> Result<Value, Error> {
        Ok(Value::Object(self.map))
    }
}

/// In-progress sequence.
pub struct SeqState {
    items: Vec<Value>,
}

impl SerializeSeq for SeqState {
    type Ok = Value;
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.items.push(value.serialize(ValueSerializer)?);
        Ok(())
    }

    fn end(self) -> Result<Value, Error> {
        Ok(Value::Array(self.items))
    }
}

/// In-progress map.
pub struct MapState {
    map: Map,
}

impl SerializeMap for MapState {
    type Ok = Value;
    type Error = Error;

    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Error> {
        let key = match key.serialize(ValueSerializer)? {
            Value::String(s) => s,
            other => other.to_string(),
        };
        self.map.insert(key, value.serialize(ValueSerializer)?);
        Ok(())
    }

    fn end(self) -> Result<Value, Error> {
        Ok(Value::Object(self.map))
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes `v` as JSON text. `indent = None` is compact; `Some(n)`
/// pretty-prints with `n`-space indentation (serde_json style).
pub fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(n) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(n * depth));
    }
}
