//! The usual `use proptest::prelude::*;` imports.

pub use crate::arbitrary::any;
pub use crate::strategy::{BoxedStrategy, Just, Strategy};
pub use crate::test_runner::ProptestConfig;
pub use crate::{prop_assert, prop_assert_eq, prop_compose, prop_oneof, proptest};

/// Module-path aliases matching upstream's `prop::` namespace.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}
