//! Collection strategies (`prop::collection`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A half-open length range; a bare `usize` means exactly that length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.max_exclusive - self.size.min;
        let len = self.size.min + rng.below_usize(span);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors of `element` values with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_bounds_hold() {
        let mut rng = TestRng::for_test("vec");
        let ranged = vec(0usize..5, 1..5);
        let fixed = vec(0usize..5, 8);
        for _ in 0..200 {
            let v = ranged.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert_eq!(fixed.generate(&mut rng).len(), 8);
        }
    }
}
