//! Sampling strategies (`prop::sample`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`select`].
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.below_usize(self.options.len())].clone()
    }
}

/// Picks uniformly from a fixed list of values.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    Select { options }
}
