//! Test configuration and the deterministic PRNG driving generation.

/// Per-test configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generator: SplitMix64 seeded from the test's name, so
/// every test draws a stable stream across runs and platforms (there is
/// no shrinking, so reproducibility comes from determinism instead).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from an arbitrary label (FNV-1a of the bytes).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 uniformly random bits (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, span)` by rejection sampling over `u128`.
    pub fn below(&mut self, span: u128) -> u128 {
        assert!(span > 0, "empty range");
        if span == 1 {
            return 0;
        }
        let zone = u128::MAX - (u128::MAX % span + 1) % span;
        loop {
            let hi = u128::from(self.next_u64()) << 64;
            let v = hi | u128::from(self.next_u64());
            if v <= zone {
                return v % span;
            }
        }
    }

    /// Uniform `usize` in `[0, span)`.
    pub fn below_usize(&mut self, span: usize) -> usize {
        self.below(span as u128) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn deterministic_per_name() {
        let xs: Vec<u64> = {
            let mut r = TestRng::for_test("a");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let ys: Vec<u64> = {
            let mut r = TestRng::for_test("a");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let zs: Vec<u64> = {
            let mut r = TestRng::for_test("b");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut r = TestRng::for_test("bounds");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
            assert!(r.below_usize(3) < 3);
        }
    }
}
