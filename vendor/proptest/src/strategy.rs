//! The [`Strategy`] trait and core combinators.

use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream there is no value tree and no shrinking: a strategy
/// simply draws a value from the PRNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `func`.
    fn prop_map<T, F>(self, func: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, func }
    }

    /// Builds a recursive strategy: `self` generates leaves and
    /// `recurse` wraps an inner strategy into one more level of
    /// structure. `depth` bounds nesting; the size/branch hints are
    /// accepted for upstream compatibility but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            // Each level flips between bottoming out and recursing, so
            // generated values span depths 0..=depth.
            strat = OneOf::new(vec![leaf.clone(), recurse(strat).boxed()]).boxed();
        }
        strat
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    func: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.func)(self.source.generate(rng))
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// A uniform choice among `options`.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below_usize(self.options.len());
        self.options[i].generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let v = rng.below(span);
                (self.start as i128).wrapping_add(v as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<i128> {
    type Value = i128;

    fn generate(&self, rng: &mut TestRng) -> i128 {
        assert!(self.start < self.end, "empty range strategy");
        // Safe because test ranges are far narrower than u128.
        let span = self.end.wrapping_sub(self.start) as u128;
        self.start.wrapping_add(rng.below(span) as i128)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|i| self[i].generate(rng))
    }
}

/// String-pattern strategy. Upstream interprets `&str` as a full regex;
/// here only the `.{m,n}` form the tests use is honored (any pattern
/// without a recognizable `{m,n}` suffix falls back to length 0..=32),
/// generating mostly printable ASCII with occasional control and
/// multi-byte characters.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (min, max) = parse_len_bounds(self).unwrap_or((0, 32));
        let len = min + rng.below_usize(max - min + 1);
        let mut out = String::with_capacity(len);
        for _ in 0..len {
            out.push(random_char(rng));
        }
        out
    }
}

fn parse_len_bounds(pattern: &str) -> Option<(usize, usize)> {
    let open = pattern.rfind('{')?;
    let close = pattern.rfind('}')?;
    let inner = pattern.get(open + 1..close)?;
    let (lo, hi) = inner.split_once(',')?;
    let lo: usize = lo.trim().parse().ok()?;
    let hi: usize = hi.trim().parse().ok()?;
    (lo <= hi).then_some((lo, hi))
}

fn random_char(rng: &mut TestRng) -> char {
    match rng.below(100) {
        0..=89 => char::from(b' ' + rng.below(95) as u8),
        90..=93 => '\n',
        94..=95 => '\t',
        _ => ['\u{0}', 'µ', 'λ', '→', '字', '\u{1F600}'][rng.below_usize(6)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples_stay_in_bounds() {
        let mut rng = TestRng::for_test("bounds");
        let strat = (0usize..3, -5i64..6, 1i128..50);
        for _ in 0..500 {
            let (a, b, c) = strat.generate(&mut rng);
            assert!(a < 3);
            assert!((-5..6).contains(&b));
            assert!((1..50).contains(&c));
        }
    }

    #[test]
    fn recursion_is_depth_bounded() {
        #[derive(Debug)]
        enum T {
            Leaf,
            Node(Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf => 0,
                T::Node(inner) => 1 + depth(inner),
            }
        }
        let strat = Just(())
            .prop_map(|()| T::Leaf)
            .prop_recursive(3, 8, 1, |inner| inner.prop_map(|t| T::Node(Box::new(t))));
        let mut rng = TestRng::for_test("depth");
        let mut seen_node = false;
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 3);
            seen_node |= depth(&t) > 0;
        }
        assert!(seen_node, "recursive arm never chosen");
    }

    #[test]
    fn string_pattern_honors_length_bounds() {
        let mut rng = TestRng::for_test("strings");
        for _ in 0..200 {
            let s = ".{0,200}".generate(&mut rng);
            assert!(s.chars().count() <= 200);
        }
        let fixed = ".{4,4}".generate(&mut rng);
        assert_eq!(fixed.chars().count(), 4);
    }
}
