//! Offline stand-in for [`proptest`] 1.x (see `vendor/README.md`).
//!
//! Implements the strategy combinators and macros the ACSpec property
//! tests use, driven by a deterministic per-test PRNG. Differences from
//! upstream: no shrinking (failures report the raw generated input), no
//! persisted regression files (`*.proptest-regressions` files are
//! ignored), and string "regex" strategies only honor the `.{m,n}`
//! length form the tests rely on.

// Stand-in for an external crate: exempt from workspace lints.
#![allow(clippy::all)]

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Defines property tests.
///
/// Each `fn name(pat in strategy, ...) { body }` item expands to a
/// plain test function that draws `config.cases` inputs and runs the
/// body on each; `prop_assert!`-style failures abort the case with the
/// generated input echoed in the panic message.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident(
        $($pat:pat in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::for_test(stringify!($name));
                let strategy = ($($strat,)+);
                for case in 0..config.cases {
                    let values =
                        $crate::strategy::Strategy::generate(&strategy, &mut rng);
                    let repr = format!("{:?}", &values);
                    let ($($pat,)+) = values;
                    let mut run =
                        || -> ::std::result::Result<(), ::std::string::String> {
                            $body
                            ::std::result::Result::Ok(())
                        };
                    if let ::std::result::Result::Err(msg) = run() {
                        panic!(
                            "proptest `{}` failed at case #{} with input {}: {}",
                            stringify!($name), case, repr, msg
                        );
                    }
                }
            }
        )*
    };
}

/// Defines a function returning a composed strategy:
/// `fn name()(pat in strategy, ...) -> T { body }`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident()(
        $($pat:pat in $strat:expr),+ $(,)?
    ) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name() -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)+),
                move |($($pat,)+)| $body,
            )
        }
    };
}

/// Picks uniformly among the given strategies (all must share a value
/// type). Upstream's `weight => strategy` arms are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($item:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($item)),+
        ])
    };
}

/// Fails the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the current test case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` == `{:?}`", lhs, rhs
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                lhs, rhs, format!($($fmt)+)
            ));
        }
    }};
}
