//! `any::<T>()` for simple scalar types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// The strategy returned by [`any`].
pub struct Any<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary_value(rng)
    }
}

/// A strategy over the full domain of `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}
