//! Offline stand-in for [`criterion`] 0.5 (see `vendor/README.md`).
//!
//! Benchmarks compile and run, printing a mean wall-clock time per
//! iteration — no warm-up modeling, outlier analysis, or HTML reports.
//! Passing `--test` (as `cargo test --benches` does) runs each
//! benchmark once as a smoke test.

// Stand-in for an external crate: exempt from workspace lints.
#![allow(clippy::all)]

use std::time::{Duration, Instant};

/// How batched inputs are grouped; only a hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// The benchmark harness entry point.
pub struct Criterion {
    smoke_test: bool,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            smoke_test: std::env::args().any(|a| a == "--test"),
            measurement: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Runs one benchmark, printing its mean iteration time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
            budget: if self.smoke_test {
                Duration::ZERO
            } else {
                self.measurement
            },
        };
        f(&mut b);
        if b.iters == 0 {
            println!("{id}: no iterations recorded");
        } else {
            let mean = b.elapsed.as_secs_f64() / b.iters as f64;
            println!("{id}: {:.3} ms/iter ({} iters)", mean * 1e3, b.iters);
        }
        self
    }
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        loop {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.elapsed += start.elapsed();
            self.iters += 1;
            if self.elapsed >= self.budget {
                break;
            }
        }
    }

    /// Like [`Bencher::iter`], with an untimed per-iteration setup.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        loop {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
            if self.elapsed >= self.budget {
                break;
            }
        }
    }
}

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_iterations() {
        let mut c = Criterion {
            smoke_test: true,
            measurement: Duration::ZERO,
        };
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| ran += 1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput)
        });
        assert!(ran >= 1);
    }
}
