//! Offline stand-in for [`rand`] 0.8 (see `vendor/README.md`).
//!
//! Implements the subset the benchmark generators and tests use:
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and the [`Rng`]
//! extension methods `gen_range`, `gen_bool`, and `gen`. The generator is
//! xoshiro256\*\* seeded through SplitMix64 — high-quality, deterministic
//! and stable across platforms, which is all the seeded benchmark
//! generation needs (the stream differs from upstream `rand`'s ChaCha12
//! `StdRng`, so regenerated corpora differ in content but not in kind).

// Stand-in for an external crate: exempt from workspace lints.
#![allow(clippy::all)]

use std::ops::Range;

/// Core source of randomness (`rand_core::RngCore` abridged).
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (`rand::SeedableRng` abridged).
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed;

    /// Builds a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that `gen_range` can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low < high, "gen_range called with an empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = uniform_u128(rng, span);
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low < high, "gen_range called with an empty range");
                let span = (high as u128) - (low as u128);
                let v = uniform_u128(rng, span);
                (low as u128 + v) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8, i16, i32, i64, isize);
impl_sample_uniform_unsigned!(u8, u16, u32, u64, usize);

/// Uniform value in `[0, span)` by rejection sampling (span ≤ 2^64 here,
/// but the u128 arithmetic keeps the macro uniform).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0 && span <= u128::from(u64::MAX) + 1);
    if span == u128::from(u64::MAX) + 1 {
        return u128::from(rng.next_u64());
    }
    let span64 = span as u64;
    // Rejection zone below the largest multiple of span.
    let zone = u64::MAX - (u64::MAX % span64 + 1) % span64;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return u128::from(v % span64);
        }
    }
}

/// Values `gen::<T>()` can produce.
pub trait Standard {
    /// A uniformly random value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

/// Convenience extension methods (`rand::Rng` abridged).
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} out of [0, 1]");
        // 53-bit mantissa comparison, as upstream does.
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }

    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seeded generator: xoshiro256\*\* (Blackman/Vigna).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix_fill(mut state: u64) -> [u64; 4] {
            let mut s = [0u64; 4];
            for slot in &mut s {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *slot = z ^ (z >> 31);
            }
            s
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                s = Self::splitmix_fill(0);
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            StdRng {
                s: Self::splitmix_fill(state),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s2x = s2 ^ s0;
            let mut s3x = s3 ^ s1;
            let s1x = s1 ^ s2x;
            let s0x = s0 ^ s3x;
            s2x ^= t;
            s3x = s3x.rotate_left(45);
            self.s = [s0x, s1x, s2x, s3x];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-3i64..4);
            assert!((-3..4).contains(&v));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).map(|_| rng.gen_bool(0.0)).any(|b| b));
        assert!((0..100).map(|_| rng.gen_bool(1.0)).all(|b| b));
        let trues = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_000..4_000).contains(&trues), "{trues}");
    }
}
