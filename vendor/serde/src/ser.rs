//! The serialization traits: a faithful (if abridged) transcription of
//! `serde::ser`.

use std::collections::{BTreeMap, HashMap};

/// A data structure that can be serialized.
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A format backend. Mirrors `serde::Serializer` minus the integer-width
/// zoo (everything funnels through `i64`/`u64`) and the enum/newtype
/// variants ACSpec never emits.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: crate::Error;
    /// Compound serializer for structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for maps.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes `()` / null.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Some(value)`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit enum variant (rendered as its name).
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begins serializing a struct with `len` fields.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begins serializing a sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins serializing a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_struct`].
pub trait SerializeStruct {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error;
    /// Serializes one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_seq`].
pub trait SerializeSeq {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error;
    /// Serializes one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_map`].
pub trait SerializeMap {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error;
    /// Serializes one key/value entry.
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error>;
    /// Finishes the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

// --------------------------------------------------------------------
// Serialize impls for the std types ACSpec reports contain.
// --------------------------------------------------------------------

macro_rules! impl_serialize_int {
    ($($t:ty => $method:ident as $cast:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self as $cast)
            }
        }
    )*};
}

impl_serialize_int! {
    i8 => serialize_i64 as i64,
    i16 => serialize_i64 as i64,
    i32 => serialize_i64 as i64,
    i64 => serialize_i64 as i64,
    isize => serialize_i64 as i64,
    u8 => serialize_u64 as u64,
    u16 => serialize_u64 as u64,
    u32 => serialize_u64 as u64,
    u64 => serialize_u64 as u64,
    usize => serialize_u64 as u64,
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}
