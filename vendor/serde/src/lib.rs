//! Offline stand-in for [`serde`](https://serde.rs).
//!
//! The build environment for this repository has no crates.io access, so
//! external dependencies are vendored as minimal API-compatible subsets
//! (see `vendor/README.md`). This crate provides exactly the
//! serialization surface ACSpec uses: the [`Serialize`]/[`Serializer`]
//! traits, the `SerializeStruct`/`SerializeSeq`/`SerializeMap` compound
//! helpers, and blanket impls for the std types that appear in reports.
//!
//! There is no `derive` macro — impls are written by hand — and no
//! `Deserialize` half: `serde_json::from_str` parses straight into
//! `serde_json::Value` without going through a deserializer.

// Stand-in for an external crate: exempt from workspace lints.
#![allow(clippy::all)]

pub mod ser;

pub use ser::{Serialize, Serializer};

/// Error trait mirrored from `serde::ser::Error`: lets generic code
/// construct serializer errors from display-able values.
pub trait Error: Sized + std::error::Error {
    /// Builds an error carrying `msg`.
    fn custom<T: std::fmt::Display>(msg: T) -> Self;
}
