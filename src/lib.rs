#![warn(missing_docs)]

//! Facade crate for the ACSpec reproduction workspace.
//!
//! Re-exports the individual crates under stable names so examples and
//! integration tests can `use acspec_repro::…`. See the workspace README
//! for the architecture overview.

pub use acspec_benchgen as benchgen;
pub use acspec_cfront as cfront;
pub use acspec_check as check;
pub use acspec_core as core;
pub use acspec_ir as ir;
pub use acspec_predabs as predabs;
pub use acspec_smt as smt;
pub use acspec_vcgen as vcgen;
