//! `acspec` — command-line front end for the ACSpec analysis.
//!
//! ```text
//! acspec <file.c | file.acs> [options]
//!
//!   --config <Conc|A0|A1|A2>   abstract configuration (default Conc)
//!   --prune <k>                k-clause pruning (default: off)
//!   --cons                     also show the conservative verifier's output
//!   --interproc                infer callee preconditions first (§7)
//!   --all-configs              analyze under all four configurations
//!   --specs                    print the almost-correct specifications
//!   --format <text|json>       output format (default text)
//!   --triage                    rank all warnings by confidence
//!   --trace-out <path>         write a JSONL span trace of the run
//!   --metrics-out <path>       write a JSON metrics snapshot
//!   --no-query-cache           disable the monotone query cache
//! ```
//!
//! `.c` inputs go through the HAVOC-style front end (null-dereference
//! assertions are inserted automatically); anything else is parsed as
//! the Boogie-like surface language.

use std::process::ExitCode;

use acspec_core::{
    infer_preconditions, triage_program, AcspecOptions, ConfigName, NullObserver, ProcReport,
    ProgramAnalysis, SessionObserver, SibStatus, TelemetryObserver,
};
use acspec_ir::Program;
use acspec_telemetry::{opt, Manifest};

struct Cli {
    path: String,
    config: ConfigName,
    prune: Option<usize>,
    cons: bool,
    interproc: bool,
    all_configs: bool,
    show_specs: bool,
    json: bool,
    triage: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    query_cache: bool,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        path: String::new(),
        config: ConfigName::Conc,
        prune: None,
        cons: false,
        interproc: false,
        all_configs: false,
        show_specs: false,
        json: false,
        triage: false,
        trace_out: None,
        metrics_out: None,
        query_cache: true,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--config" => {
                let v = args.get(i + 1).ok_or("--config needs a value")?;
                cli.config = match v.as_str() {
                    "Conc" | "conc" => ConfigName::Conc,
                    "A0" | "a0" => ConfigName::A0,
                    "A1" | "a1" => ConfigName::A1,
                    "A2" | "a2" => ConfigName::A2,
                    other => return Err(format!("unknown config `{other}`")),
                };
                i += 2;
            }
            "--prune" => {
                let v = args.get(i + 1).ok_or("--prune needs a value")?;
                cli.prune = Some(v.parse().map_err(|_| "--prune needs an integer")?);
                i += 2;
            }
            "--cons" => {
                cli.cons = true;
                i += 1;
            }
            "--interproc" => {
                cli.interproc = true;
                i += 1;
            }
            "--all-configs" => {
                cli.all_configs = true;
                i += 1;
            }
            "--specs" => {
                cli.show_specs = true;
                i += 1;
            }
            "--triage" => {
                cli.triage = true;
                i += 1;
            }
            "--format" => {
                let v = args.get(i + 1).ok_or("--format needs a value")?;
                cli.json = match v.as_str() {
                    "json" => true,
                    "text" => false,
                    other => return Err(format!("unknown format `{other}`")),
                };
                i += 2;
            }
            "--trace-out" => {
                let v = args.get(i + 1).ok_or("--trace-out needs a path")?;
                cli.trace_out = Some(v.clone());
                i += 2;
            }
            "--metrics-out" => {
                let v = args.get(i + 1).ok_or("--metrics-out needs a path")?;
                cli.metrics_out = Some(v.clone());
                i += 2;
            }
            "--no-query-cache" => {
                cli.query_cache = false;
                i += 1;
            }
            "--help" | "-h" => {
                return Err(String::new());
            }
            other if cli.path.is_empty() && !other.starts_with('-') => {
                cli.path = other.to_string();
                i += 1;
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if cli.path.is_empty() {
        return Err("no input file".into());
    }
    Ok(cli)
}

fn load_program(path: &str) -> Result<Program, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let program = if path.ends_with(".c") {
        acspec_cfront::compile_c(&source).map_err(|e| e.to_string())?
    } else {
        acspec_ir::parse::parse_program(&source).map_err(|e| e.to_string())?
    };
    acspec_ir::typecheck::check_program(&program).map_err(|e| e.to_string())?;
    Ok(program)
}

fn print_report(r: &ProcReport, show_specs: bool) {
    let verdict = if r.timed_out() {
        "TIMEOUT".to_string()
    } else {
        r.status.to_string()
    };
    println!(
        "  [{}] {:<8} |Q|={:<3} warnings={}",
        r.config,
        verdict,
        r.stats.n_predicates,
        r.warnings.len()
    );
    if show_specs {
        for spec in &r.specs {
            println!("      spec: {spec}");
        }
    }
    for w in &r.warnings {
        println!("      warning {}: {}", w.assert, w.tag);
        if let Some(witness) = &w.witness {
            println!("        witness: {witness}");
        }
    }
}

fn run() -> Result<bool, String> {
    let cli = parse_args()?;
    let mut program = load_program(&cli.path)?;

    let mut opts = AcspecOptions::for_config(cli.config);
    if let Some(k) = cli.prune {
        opts = opts.with_k_pruning(k);
    }
    if !cli.query_cache {
        opts.analyzer.query_cache = false;
    }

    if cli.interproc {
        let inferred = infer_preconditions(&program, &opts).map_err(|e| e.to_string())?;
        for (name, spec) in &inferred.inferred {
            println!("inferred precondition for `{name}`: requires {spec};");
        }
        program = inferred.program;
        if !inferred.inferred.is_empty() {
            println!();
        }
    }

    if cli.triage {
        let ranked = triage_program(&program, &opts).map_err(|e| e.to_string())?;
        if ranked.is_empty() {
            println!("no warnings: every unproven obligation was suppressed");
            return Ok(false);
        }
        println!("{} warning(s), highest confidence first:\n", ranked.len());
        for r in &ranked {
            println!(
                "[{}] {} :: {} ({})",
                r.confidence, r.proc_name, r.warning.assert, r.warning.tag
            );
            if let Some(w) = &r.warning.witness {
                println!("    witness: {w}");
            }
            if let Some(spec) = &r.spec {
                println!("    almost-correct spec: {spec}");
            }
        }
        return Ok(true);
    }

    let configs: Vec<ConfigName> = if cli.all_configs {
        ConfigName::all().to_vec()
    } else {
        vec![cli.config]
    };

    // One session per procedure: the encode and the demonic screen are
    // shared between the Cons baseline and every requested configuration.
    // Telemetry recording costs a per-query hook, so the observer is a
    // no-op unless a sink was requested.
    let telemetry_on = cli.trace_out.is_some() || cli.metrics_out.is_some();
    let mut null = NullObserver;
    let mut telemetry = TelemetryObserver::new();
    let observer: &mut dyn SessionObserver = if telemetry_on {
        &mut telemetry
    } else {
        &mut null
    };
    let results = ProgramAnalysis::new(&program)
        .options(opts)
        .configs(&configs)
        .run(observer)
        .map_err(|e| e.to_string())?;

    if telemetry_on {
        let manifest = Manifest {
            tool: "acspec".into(),
            command: cli.path.clone(),
            scale: None,
            threads: None,
            configs: configs.iter().map(|c| c.to_string()).collect(),
            options: vec![
                opt("prune", cli.prune.map_or("off".into(), |k| k.to_string())),
                opt("interproc", cli.interproc),
                opt("query_cache", opts.analyzer.query_cache),
            ],
        };
        let out = telemetry.finish();
        if let Some(path) = &cli.trace_out {
            out.write_trace(path, Some(&manifest))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
        }
        if let Some(path) = &cli.metrics_out {
            out.write_metrics(path, Some(&manifest))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
        }
    }

    let mut any_warning = false;
    let mut json_reports: Vec<String> = Vec::new();
    for pa in &results {
        if pa.cons.status == SibStatus::Correct {
            continue;
        }
        if !cli.json {
            println!("procedure {}:", pa.proc_name);
        }
        for r in pa.reports.iter().flatten() {
            any_warning |= !r.warnings.is_empty();
            if cli.json {
                json_reports.push(r.to_json());
            } else {
                print_report(r, cli.show_specs);
            }
        }
        if cli.cons {
            if cli.json {
                json_reports.push(pa.cons.to_json());
            } else {
                println!("  [Cons] {} warnings", pa.cons.warnings.len());
                for w in &pa.cons.warnings {
                    println!("      warning {}: {}", w.assert, w.tag);
                }
            }
        }
        if !cli.json {
            println!();
        }
    }
    if cli.json {
        println!("[{}]", json_reports.join(",\n"));
    }
    Ok(any_warning)
}

fn main() -> ExitCode {
    match run() {
        Ok(any_warning) => {
            if any_warning {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!(
                "usage: acspec <file.c | file.acs> [--config Conc|A0|A1|A2] [--prune k] \
                 [--cons] [--interproc] [--all-configs] [--specs] [--triage] \
                 [--format text|json] [--trace-out path] [--metrics-out path] \
                 [--no-query-cache]"
            );
            ExitCode::from(2)
        }
    }
}
