//! `acspec` — command-line front end for the ACSpec analysis.
//!
//! ```text
//! acspec <file.c | file.acs> [options]
//! acspec check <report.json | certs.json>
//!
//!   --config <Conc|A0|A1|A2>   abstract configuration (default Conc)
//!   --prune <k>                k-clause pruning (default: off)
//!   --cons                     also show the conservative verifier's output
//!   --interproc                infer callee preconditions first (§7)
//!   --all-configs              analyze under all four configurations
//!   --specs                    print the almost-correct specifications
//!   --format <text|json>       output format (default text)
//!   --triage                    rank all warnings by confidence
//!   --trace-out <path>         write a JSONL span trace of the run
//!   --metrics-out <path>       write a JSON metrics snapshot
//!   --certs-out <path>         write a certificate sidecar; the report
//!                              gains a `certs_ref` pointing at it
//!   --no-query-cache           disable the monotone query cache
//!   --deadline <secs>          wall-clock deadline per procedure+config
//!   --chaos-seed <u64>         deterministic fault-injection seed
//!   --chaos-rate <p>           fault probability per solver query (0..1)
//!   --store-dir <path>         persistent result store: unchanged
//!                              procedures are re-emitted byte-identically
//!                              with zero solver queries (corrupt entries
//!                              are quarantined and recomputed)
//!   --no-store                 ignore --store-dir (cold run)
//!   --search-threads <n>       worker budget shared by procedure
//!                              fan-out and in-query parallelism
//!                              (results are byte-identical at any n)
//!   --portfolio                race diversified solver forks on hard
//!                              verdict queries (deterministic merge)
//!   --cube-split <k>           cube-and-conquer ALL-SAT over 2^k cubes
//!                              for predicate covers
//!   --restart-base <n>         CDCL Luby restart base interval
//! ```
//!
//! `.c` inputs go through the HAVOC-style front end (null-dereference
//! assertions are inserted automatically); anything else is parsed as
//! the Boogie-like surface language.
//!
//! `acspec check` takes a `--format json` report (following its
//! `certs_ref` to the sidecar) or a sidecar itself and re-validates every
//! certificate with the independent `acspec-check` crate: models are
//! re-evaluated, refutations replayed, claims and weakening chains
//! re-tied to their evidence. Exit code 0 means every certificate
//! checked; 1 means at least one failure (each is printed).

use std::process::ExitCode;

use acspec_core::{
    certs_json_from_fragments, infer_preconditions, program_report_json_with, triage_program,
    AcspecOptions, AnalysisOutcome, ConfigName, NullObserver, ProcOutcome, ProcReport,
    ProgramAnalysis, SessionObserver, SibStatus, StoreSession, TelemetryObserver,
};
use acspec_ir::Program;
use acspec_telemetry::{opt, Manifest};
use acspec_vcgen::chaos::ChaosConfig;

struct Cli {
    path: String,
    config: ConfigName,
    prune: Option<usize>,
    cons: bool,
    interproc: bool,
    all_configs: bool,
    show_specs: bool,
    json: bool,
    triage: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    certs_out: Option<String>,
    query_cache: bool,
    deadline: Option<f64>,
    chaos_seed: Option<u64>,
    chaos_rate: Option<f64>,
    store_dir: Option<String>,
    no_store: bool,
    search_threads: Option<usize>,
    portfolio: bool,
    cube_split: Option<u32>,
    restart_base: Option<u64>,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        path: String::new(),
        config: ConfigName::Conc,
        prune: None,
        cons: false,
        interproc: false,
        all_configs: false,
        show_specs: false,
        json: false,
        triage: false,
        trace_out: None,
        metrics_out: None,
        certs_out: None,
        query_cache: true,
        deadline: None,
        chaos_seed: None,
        chaos_rate: None,
        store_dir: None,
        no_store: false,
        search_threads: None,
        portfolio: false,
        cube_split: None,
        restart_base: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--config" => {
                let v = args.get(i + 1).ok_or("--config needs a value")?;
                cli.config = match v.as_str() {
                    "Conc" | "conc" => ConfigName::Conc,
                    "A0" | "a0" => ConfigName::A0,
                    "A1" | "a1" => ConfigName::A1,
                    "A2" | "a2" => ConfigName::A2,
                    other => return Err(format!("unknown config `{other}`")),
                };
                i += 2;
            }
            "--prune" => {
                let v = args.get(i + 1).ok_or("--prune needs a value")?;
                cli.prune = Some(v.parse().map_err(|_| "--prune needs an integer")?);
                i += 2;
            }
            "--cons" => {
                cli.cons = true;
                i += 1;
            }
            "--interproc" => {
                cli.interproc = true;
                i += 1;
            }
            "--all-configs" => {
                cli.all_configs = true;
                i += 1;
            }
            "--specs" => {
                cli.show_specs = true;
                i += 1;
            }
            "--triage" => {
                cli.triage = true;
                i += 1;
            }
            "--format" => {
                let v = args.get(i + 1).ok_or("--format needs a value")?;
                cli.json = match v.as_str() {
                    "json" => true,
                    "text" => false,
                    other => return Err(format!("unknown format `{other}`")),
                };
                i += 2;
            }
            "--trace-out" => {
                let v = args.get(i + 1).ok_or("--trace-out needs a path")?;
                cli.trace_out = Some(v.clone());
                i += 2;
            }
            "--metrics-out" => {
                let v = args.get(i + 1).ok_or("--metrics-out needs a path")?;
                cli.metrics_out = Some(v.clone());
                i += 2;
            }
            "--certs-out" => {
                let v = args.get(i + 1).ok_or("--certs-out needs a path")?;
                cli.certs_out = Some(v.clone());
                i += 2;
            }
            "--no-query-cache" => {
                cli.query_cache = false;
                i += 1;
            }
            "--deadline" => {
                let v = args.get(i + 1).ok_or("--deadline needs seconds")?;
                let secs: f64 = v
                    .parse()
                    .map_err(|_| "--deadline needs a number of seconds")?;
                if secs.is_nan() || secs < 0.0 {
                    return Err("--deadline must be non-negative".into());
                }
                cli.deadline = Some(secs);
                i += 2;
            }
            "--chaos-seed" => {
                let v = args.get(i + 1).ok_or("--chaos-seed needs a value")?;
                cli.chaos_seed = Some(v.parse().map_err(|_| "--chaos-seed needs a u64")?);
                i += 2;
            }
            "--chaos-rate" => {
                let v = args.get(i + 1).ok_or("--chaos-rate needs a value")?;
                let rate: f64 = v.parse().map_err(|_| "--chaos-rate needs a number")?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err("--chaos-rate must be in 0..=1".into());
                }
                cli.chaos_rate = Some(rate);
                i += 2;
            }
            "--store-dir" => {
                let v = args.get(i + 1).ok_or("--store-dir needs a path")?;
                cli.store_dir = Some(v.clone());
                i += 2;
            }
            "--no-store" => {
                cli.no_store = true;
                i += 1;
            }
            "--search-threads" => {
                let v = args.get(i + 1).ok_or("--search-threads needs a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| "--search-threads needs a positive integer")?;
                if n == 0 {
                    return Err("--search-threads must be positive".into());
                }
                cli.search_threads = Some(n);
                i += 2;
            }
            "--portfolio" => {
                cli.portfolio = true;
                i += 1;
            }
            "--cube-split" => {
                let v = args.get(i + 1).ok_or("--cube-split needs a value")?;
                cli.cube_split = Some(v.parse().map_err(|_| "--cube-split needs an integer")?);
                i += 2;
            }
            "--restart-base" => {
                let v = args.get(i + 1).ok_or("--restart-base needs a value")?;
                let base: u64 = v
                    .parse()
                    .map_err(|_| "--restart-base needs a positive integer")?;
                if base == 0 {
                    return Err("--restart-base must be positive".into());
                }
                cli.restart_base = Some(base);
                i += 2;
            }
            "--help" | "-h" => {
                return Err(String::new());
            }
            other if cli.path.is_empty() && !other.starts_with('-') => {
                cli.path = other.to_string();
                i += 1;
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if cli.path.is_empty() {
        return Err("no input file".into());
    }
    Ok(cli)
}

/// Loads and checks an input file. Every failure is a `file:line:
/// message` (or `file: message` when no line applies) diagnostic, never
/// a panic — the CLI turns them into exit code 2.
fn load_program(path: &str) -> Result<Program, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read: {e}"))?;
    let program = if path.ends_with(".c") {
        acspec_cfront::compile_c(&source).map_err(|e| match e {
            acspec_cfront::CompileError::Parse(p) => format!("{path}:{}: {}", p.line, p.msg),
            acspec_cfront::CompileError::Lower(l) => format!("{path}:{}: {}", l.line, l.msg),
        })?
    } else {
        acspec_ir::parse::parse_program(&source)
            .map_err(|e| format!("{path}:{}:{}: {}", e.line, e.col, e.msg))?
    };
    acspec_ir::typecheck::check_program(&program).map_err(|e| format!("{path}: {e}"))?;
    Ok(program)
}

fn print_report(r: &ProcReport, show_specs: bool) {
    let verdict = match r.outcome {
        AnalysisOutcome::Ok => r.status.to_string(),
        AnalysisOutcome::TimedOut => "TIMEOUT".to_string(),
        AnalysisOutcome::Degraded { fallback, .. } => format!("DEGRADED({fallback})"),
    };
    println!(
        "  [{}] {:<8} |Q|={:<3} warnings={}",
        r.config,
        verdict,
        r.stats.n_predicates,
        r.warnings.len()
    );
    if show_specs {
        for spec in &r.specs {
            println!("      spec: {spec}");
        }
    }
    for w in &r.warnings {
        println!("      warning {}: {}", w.assert, w.tag);
        if let Some(witness) = &w.witness {
            println!("        witness: {witness}");
        }
    }
}

/// `acspec check <path>`: re-validates a certificate sidecar, or a
/// `--format json` report by following its `certs_ref` (resolved
/// relative to the report's directory). Returns `Ok(true)` — exit
/// code 1 — when any certificate fails.
fn run_check(args: &[String]) -> Result<bool, String> {
    let path = match args {
        [p] if !p.starts_with('-') => p.as_str(),
        _ => return Err("usage: acspec check <report.json | certs.json>".into()),
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read: {e}"))?;
    let top = acspec_check::json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let (certs_path, certs_text) = if top.get("procs").is_some() {
        (path.to_string(), text)
    } else if top.get("reports").is_some() {
        let r = top.get("certs_ref").and_then(|v| v.str()).ok_or_else(|| {
            format!("{path}: report has no `certs_ref`; re-run the analysis with --certs-out")
        })?;
        let resolved = std::path::Path::new(path)
            .parent()
            .map_or_else(|| std::path::PathBuf::from(r), |d| d.join(r));
        let resolved = resolved.to_string_lossy().into_owned();
        let t = std::fs::read_to_string(&resolved)
            .map_err(|e| format!("{resolved}: cannot read certs_ref target: {e}"))?;
        (resolved, t)
    } else {
        return Err(format!(
            "{path}: neither a certificate document (`procs`) nor a report (`reports`)"
        ));
    };
    let summary = acspec_check::check_document(&certs_text);
    println!(
        "{certs_path}: {} procedure(s), {} certificate(s) ({} sat, {} unsat), \
         {} claim(s), {} chain(s)",
        summary.procs,
        summary.certs,
        summary.sat_certs,
        summary.unsat_certs,
        summary.claims,
        summary.chains
    );
    if summary.ok() {
        println!("all certificates check");
        Ok(false)
    } else {
        for e in &summary.errors {
            eprintln!("FAIL: {e}");
        }
        eprintln!("{} failure(s)", summary.errors.len());
        Ok(true)
    }
}

fn run() -> Result<bool, String> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("check") {
        return run_check(&raw[1..]);
    }
    let cli = parse_args()?;
    let mut program = load_program(&cli.path)?;

    let mut opts = AcspecOptions::for_config(cli.config);
    if let Some(k) = cli.prune {
        opts = opts.with_k_pruning(k);
    }
    if !cli.query_cache {
        opts.analyzer.query_cache = false;
    }
    if let Some(secs) = cli.deadline {
        opts.analyzer.deadline = Some(std::time::Duration::from_secs_f64(secs));
    }
    if cli.chaos_seed.is_some() || cli.chaos_rate.is_some() {
        opts.analyzer.chaos = Some(ChaosConfig::new(
            cli.chaos_seed.unwrap_or(0),
            cli.chaos_rate.unwrap_or(0.0),
        ));
        silence_injected_panics();
    }
    opts.analyzer.portfolio = cli.portfolio;
    if let Some(k) = cli.cube_split {
        opts.analyzer.cube_split = k;
    }
    if let Some(base) = cli.restart_base {
        opts.analyzer.restart_base = base;
    }

    if cli.interproc {
        let inferred = infer_preconditions(&program, &opts).map_err(|e| e.to_string())?;
        for (name, spec) in &inferred.inferred {
            println!("inferred precondition for `{name}`: requires {spec};");
        }
        program = inferred.program;
        if !inferred.inferred.is_empty() {
            println!();
        }
    }

    if cli.triage {
        let ranked = triage_program(&program, &opts).map_err(|e| e.to_string())?;
        if ranked.is_empty() {
            println!("no warnings: every unproven obligation was suppressed");
            return Ok(false);
        }
        println!("{} warning(s), highest confidence first:\n", ranked.len());
        for r in &ranked {
            println!(
                "[{}] {} :: {} ({})",
                r.confidence, r.proc_name, r.warning.assert, r.warning.tag
            );
            if let Some(w) = &r.warning.witness {
                println!("    witness: {w}");
            }
            if let Some(spec) = &r.spec {
                println!("    almost-correct spec: {spec}");
            }
        }
        return Ok(true);
    }

    let configs: Vec<ConfigName> = if cli.all_configs {
        ConfigName::all().to_vec()
    } else {
        vec![cli.config]
    };

    // One session per procedure: the encode and the demonic screen are
    // shared between the Cons baseline and every requested configuration.
    // Telemetry recording costs a per-query hook, so the observer is a
    // no-op unless a sink was requested.
    let telemetry_on = cli.trace_out.is_some() || cli.metrics_out.is_some();
    let mut null = NullObserver;
    let mut telemetry = TelemetryObserver::new();
    let observer: &mut dyn SessionObserver = if telemetry_on {
        &mut telemetry
    } else {
        &mut null
    };
    // The persistent store is opt-in (`--store-dir`) and disabled under a
    // deadline (wall-clock timeouts make cached reports nondeterministic,
    // so ProgramAnalysis refuses the key anyway). When solver chaos is on,
    // the same seed and rate drive store-level I/O faults.
    let store = match (&cli.store_dir, cli.no_store) {
        (Some(dir), false) => Some(
            StoreSession::open_with_chaos(std::path::Path::new(dir), opts.analyzer.chaos)
                .map_err(|e| format!("cannot open store {dir}: {e}"))?,
        ),
        _ => None,
    };
    let mut results = ProgramAnalysis::new(&program)
        .options(opts)
        .configs(&configs)
        .search_threads(cli.search_threads.unwrap_or(0))
        .certify(cli.certs_out.is_some())
        .store(store.as_ref())
        .run(observer);

    // Drain the pre-rendered certificate fragments before the report loop
    // takes shared references into `results`. Fragments (rather than live
    // `ProcCerts`) keep warm store hits byte-identical to cold runs.
    let mut cert_fragments: Vec<String> = Vec::new();
    for outcome in &mut results {
        if let ProcOutcome::Analyzed(pa) = outcome {
            pa.certs.take();
            if let Some(fragment) = pa.certs_fragment.take() {
                cert_fragments.push(fragment);
            }
        }
    }
    if let Some(path) = &cli.certs_out {
        std::fs::write(path, certs_json_from_fragments(&cert_fragments))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }

    if telemetry_on {
        let mut options = vec![
            opt("prune", cli.prune.map_or("off".into(), |k| k.to_string())),
            opt("interproc", cli.interproc),
            opt("query_cache", opts.analyzer.query_cache),
        ];
        if let Some(secs) = cli.deadline {
            options.push(opt("deadline_secs", secs));
        }
        if let Some(chaos) = opts.analyzer.chaos {
            options.push(opt("chaos_seed", chaos.seed));
            options.push(opt("chaos_rate", chaos.rate));
        }
        if cli.portfolio {
            options.push(opt("portfolio", true));
        }
        if let Some(k) = cli.cube_split {
            options.push(opt("cube_split", u64::from(k)));
        }
        if let Some(n) = cli.search_threads {
            options.push(opt("search_threads", n as u64));
        }
        if let Some(base) = cli.restart_base {
            options.push(opt("restart_base", base));
        }
        if let Some(store) = &store {
            options.push(opt("store_dir", cli.store_dir.clone().unwrap_or_default()));
            telemetry.record_store(&store.stats());
        }
        let manifest = Manifest {
            tool: "acspec".into(),
            command: cli.path.clone(),
            scale: None,
            threads: None,
            configs: configs.iter().map(|c| c.to_string()).collect(),
            options,
        };
        let out = telemetry.finish();
        if let Some(path) = &cli.trace_out {
            out.write_trace(path, Some(&manifest))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
        }
        if let Some(path) = &cli.metrics_out {
            out.write_metrics(path, Some(&manifest))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
        }
    }

    let mut any_warning = false;
    let mut json_reports: Vec<&ProcReport> = Vec::new();
    let mut incidents = Vec::new();
    for outcome in &results {
        let pa = match outcome {
            ProcOutcome::Analyzed(pa) => pa,
            ProcOutcome::Faulted(incident) => {
                if cli.json {
                    incidents.push(incident.clone());
                } else {
                    println!("procedure {}:", incident.proc_name);
                    println!("  incident: {incident}");
                    println!();
                }
                continue;
            }
        };
        // Store-corruption incidents ride on an otherwise healthy analysis:
        // surface them even when the procedure itself is clean.
        for incident in &pa.incidents {
            if cli.json {
                incidents.push(incident.clone());
            } else {
                println!("procedure {}:", incident.proc_name);
                println!("  incident: {incident}");
                println!();
            }
        }
        if pa.cons.status == SibStatus::Correct {
            continue;
        }
        if !cli.json {
            println!("procedure {}:", pa.proc_name);
        }
        for r in pa.reports.iter().flatten() {
            any_warning |= !r.warnings.is_empty();
            if cli.json {
                json_reports.push(r);
            } else {
                print_report(r, cli.show_specs);
            }
        }
        if cli.cons {
            if cli.json {
                json_reports.push(&pa.cons);
            } else {
                println!("  [Cons] {} warnings", pa.cons.warnings.len());
                for w in &pa.cons.warnings {
                    println!("      warning {}: {}", w.assert, w.tag);
                }
            }
        }
        if !cli.json {
            println!();
        }
    }
    if cli.json {
        println!(
            "{}",
            program_report_json_with(&json_reports, &incidents, cli.certs_out.as_deref())
        );
    }
    Ok(any_warning)
}

/// Keeps the default panic-hook backtrace off stderr for the panics
/// the chaos harness injects on purpose — they are caught by the
/// worker loop and reported as incidents. Real panics still reach the
/// previous hook.
fn silence_injected_panics() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.starts_with("chaos:"));
        if !injected {
            prev(info);
        }
    }));
}

fn main() -> ExitCode {
    match run() {
        Ok(any_warning) => {
            if any_warning {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!(
                "usage: acspec <file.c | file.acs> [--config Conc|A0|A1|A2] [--prune k] \
                 [--cons] [--interproc] [--all-configs] [--specs] [--triage] \
                 [--format text|json] [--trace-out path] [--metrics-out path] \
                 [--certs-out path] [--no-query-cache] [--deadline secs] \
                 [--chaos-seed n] [--chaos-rate p] [--store-dir path] [--no-store] \
                 [--search-threads n] [--portfolio] [--cube-split k] \
                 [--restart-base n]\n\
                 usage: acspec check <report.json | certs.json>"
            );
            ExitCode::from(2)
        }
    }
}
