//! A small, strict JSON parser — the checker's only input channel.
//!
//! Independent of the engine's vendored serde on purpose: the
//! certificate document is the trust boundary, and the checker must not
//! share a parser (or its bugs) with the producer.

use std::collections::BTreeMap;

/// A parsed JSON value. Numbers are kept as `i64` when they are exact
/// integers (every number in a certificate document is) and rejected
/// otherwise — certificates have no legitimate floats.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (the only number form certificates use).
    Int(i64),
    /// A float (tolerated so report documents parse; never used by
    /// certificate fields).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (sorted keys; duplicate keys are a parse error).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value under `key`, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// This value as an array.
    pub fn arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// This value as an object map.
    pub fn obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// This value as an integer.
    pub fn int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// This value as an unsigned 32-bit id.
    pub fn u32(&self) -> Option<u32> {
        self.int().and_then(|i| u32::try_from(i).ok())
    }

    /// This value as a usize index.
    pub fn usize(&self) -> Option<usize> {
        self.int().and_then(|i| usize::try_from(i).ok())
    }

    /// This value as a string slice.
    pub fn str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a bool.
    pub fn bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 256;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        let end = self.pos + word.len();
        if self.bytes.get(self.pos..end) == Some(word.as_bytes()) {
            self.pos = end;
            Ok(())
        } else {
            Err(format!("expected `{word}` at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'n') => {
                self.literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let v = self.value(depth + 1)?;
                    if map.insert(key.clone(), v).is_some() {
                        return Err(format!("duplicate key `{key}`"));
                    }
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(map));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid utf8 in number".to_string())?;
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| format!("bad number `{text}`: {e}"))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| format!("bad integer `{text}`: {e}"))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not produced by the
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(code).ok_or("surrogate in \\u escape")?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos))
                }
                Some(_) => {
                    // Consume a maximal run of plain bytes. The input is
                    // a &str, so the byte stream is valid UTF-8, and the
                    // run ends at an ASCII delimiter (quote, backslash,
                    // control byte) or end of input — always a character
                    // boundary.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' || b < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid utf8 in string")?;
                    out.push_str(s);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structures() {
        let v = parse(r#"{"a":[1,-2,true,null,"x\n"],"b":{"c":3}}"#).expect("parses");
        assert_eq!(v.get("a").unwrap().arr().unwrap()[1].int(), Some(-2));
        assert_eq!(v.get("a").unwrap().arr().unwrap()[4].str(), Some("x\n"));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().int(), Some(3));
    }

    #[test]
    fn rejects_trailing_garbage_and_duplicates() {
        assert!(parse("{} x").is_err());
        assert!(parse(r#"{"a":1,"a":2}"#).is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn floats_tolerated_integers_exact() {
        assert_eq!(parse("9223372036854775807").unwrap().int(), Some(i64::MAX));
        assert!(matches!(parse("1.5").unwrap(), Value::Float(_)));
    }
}
