//! Independent model evaluation for `Sat` certificates.
//!
//! This mirrors the engine's documented model semantics (total
//! valuations: booleans default `false`, integers default `0`, wrapping
//! arithmetic, finite map/function tables with defaults, extensional map
//! equality over canonical tables) — reimplemented from the certificate
//! format alone, sharing no code with the engine.

use std::collections::{BTreeMap, HashMap};

use crate::doc::{Model, Node};

/// Evaluates certificate terms under a model.
pub struct Evaluator<'a> {
    terms: &'a BTreeMap<u32, Node>,
    model: &'a Model,
    int_memo: HashMap<u32, i64>,
    bool_memo: HashMap<u32, bool>,
    map_memo: HashMap<u32, (i64, BTreeMap<i64, i64>)>,
}

impl<'a> Evaluator<'a> {
    /// An evaluator over the given term table and model.
    pub fn new(terms: &'a BTreeMap<u32, Node>, model: &'a Model) -> Evaluator<'a> {
        Evaluator {
            terms,
            model,
            int_memo: HashMap::new(),
            bool_memo: HashMap::new(),
            map_memo: HashMap::new(),
        }
    }

    /// Evaluates a boolean term; `Err` when the term is missing or
    /// ill-sorted (a document defect, never a verdict).
    pub fn eval_bool(&mut self, t: u32) -> Result<bool, String> {
        if let Some(&b) = self.bool_memo.get(&t) {
            return Ok(b);
        }
        let node = self
            .terms
            .get(&t)
            .ok_or_else(|| format!("term {t} missing from table"))?
            .clone();
        let v = match node {
            Node::True => true,
            Node::False => false,
            Node::BoolVar(n) => self.model.bools.get(&n).copied().unwrap_or(false),
            Node::Not(a) => !self.eval_bool(a)?,
            Node::And(ps) => {
                let mut all = true;
                for p in ps {
                    if !self.eval_bool(p)? {
                        all = false;
                        break;
                    }
                }
                all
            }
            Node::Or(ps) => {
                let mut any = false;
                for p in ps {
                    if self.eval_bool(p)? {
                        any = true;
                        break;
                    }
                }
                any
            }
            Node::Implies(a, b) => !self.eval_bool(a)? || self.eval_bool(b)?,
            Node::Iff(a, b) => self.eval_bool(a)? == self.eval_bool(b)?,
            Node::Eq(a, b) => {
                if self.is_map(a) {
                    self.canon_map(a)? == self.canon_map(b)?
                } else {
                    self.eval_int(a)? == self.eval_int(b)?
                }
            }
            Node::Le(a, b) => self.eval_int(a)? <= self.eval_int(b)?,
            Node::Lt(a, b) => self.eval_int(a)? < self.eval_int(b)?,
            Node::Ite(c, a, b) => {
                if self.eval_bool(c)? {
                    self.eval_bool(a)?
                } else {
                    self.eval_bool(b)?
                }
            }
            _ => return Err(format!("term {t} is not boolean")),
        };
        self.bool_memo.insert(t, v);
        Ok(v)
    }

    fn is_map(&self, t: u32) -> bool {
        match self.terms.get(&t) {
            Some(Node::MapVar(_) | Node::Write(..)) => true,
            Some(Node::Ite(_, a, _)) => self.is_map(*a),
            _ => false,
        }
    }

    /// Evaluates an integer term.
    pub fn eval_int(&mut self, t: u32) -> Result<i64, String> {
        if let Some(&v) = self.int_memo.get(&t) {
            return Ok(v);
        }
        let node = self
            .terms
            .get(&t)
            .ok_or_else(|| format!("term {t} missing from table"))?
            .clone();
        let v = match node {
            Node::IntConst(c) => c,
            Node::IntVar(n) => self.model.ints.get(&n).copied().unwrap_or(0),
            Node::Add(ps) => {
                let mut s = 0i64;
                for p in ps {
                    s = s.wrapping_add(self.eval_int(p)?);
                }
                s
            }
            Node::MulC(c, a) => c.wrapping_mul(self.eval_int(a)?),
            Node::Ite(c, a, b) => {
                if self.eval_bool(c)? {
                    self.eval_int(a)?
                } else {
                    self.eval_int(b)?
                }
            }
            Node::App(f, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval_int(a)?);
                }
                match self.model.funcs.get(&f) {
                    Some(fv) => fv.entries.get(&vals).copied().unwrap_or(fv.default),
                    None => 0,
                }
            }
            Node::Read(m, i) => {
                let iv = self.eval_int(i)?;
                let (default, entries) = self.canon_map(m)?;
                entries.get(&iv).copied().unwrap_or(default)
            }
            _ => return Err(format!("term {t} is not an integer")),
        };
        self.int_memo.insert(t, v);
        Ok(v)
    }

    /// Canonical extensional map value: `(default, entries)` with every
    /// default-valued point removed, so equality of canonical values is
    /// extensional map equality.
    pub fn canon_map(&mut self, t: u32) -> Result<(i64, BTreeMap<i64, i64>), String> {
        if let Some(v) = self.map_memo.get(&t) {
            return Ok(v.clone());
        }
        let node = self
            .terms
            .get(&t)
            .ok_or_else(|| format!("term {t} missing from table"))?
            .clone();
        let value = match node {
            Node::MapVar(n) => match self.model.maps.get(&n) {
                Some(mv) => {
                    let entries = mv
                        .entries
                        .iter()
                        .filter(|&(_, &v)| v != mv.default)
                        .map(|(&k, &v)| (k, v))
                        .collect();
                    (mv.default, entries)
                }
                None => (0, BTreeMap::new()),
            },
            Node::Write(m, i, v) => {
                let (default, mut entries) = self.canon_map(m)?;
                let iv = self.eval_int(i)?;
                let vv = self.eval_int(v)?;
                if vv == default {
                    entries.remove(&iv);
                } else {
                    entries.insert(iv, vv);
                }
                (default, entries)
            }
            Node::Ite(c, a, b) => {
                if self.eval_bool(c)? {
                    self.canon_map(a)?
                } else {
                    self.canon_map(b)?
                }
            }
            _ => return Err(format!("term {t} is not a map")),
        };
        self.map_memo.insert(t, value.clone());
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc::Table;

    fn terms(pairs: Vec<(u32, Node)>) -> BTreeMap<u32, Node> {
        pairs.into_iter().collect()
    }

    #[test]
    fn defaults_and_wrapping() {
        let t = terms(vec![
            (1, Node::IntVar("x".into())),
            (2, Node::IntConst(i64::MAX)),
            (3, Node::Add(vec![1, 2])),
            (4, Node::BoolVar("b".into())),
        ]);
        let mut model = Model::default();
        model.ints.insert("x".into(), 1);
        let mut ev = Evaluator::new(&t, &model);
        assert_eq!(ev.eval_int(3), Ok(i64::MIN)); // wrapping add
        assert_eq!(ev.eval_bool(4), Ok(false)); // bool default
    }

    #[test]
    fn extensional_map_equality() {
        // write(M, 3, d) == M  where d is M's default: extensionally equal.
        let t = terms(vec![
            (1, Node::MapVar("M".into())),
            (2, Node::IntConst(3)),
            (3, Node::IntConst(7)),
            (4, Node::Write(1, 2, 3)),
            (5, Node::Eq(4, 1)),
        ]);
        let mut model = Model::default();
        model.maps.insert(
            "M".into(),
            Table {
                default: 7,
                entries: BTreeMap::new(),
            },
        );
        let mut ev = Evaluator::new(&t, &model);
        assert_eq!(ev.eval_bool(5), Ok(true));
    }
}
