//! Propositional proof replay for `Unsat` certificates.
//!
//! The certificate's proof log is a chronological sequence of tagged
//! input clauses and learnt clauses. After every input clause has been
//! structurally validated against its provenance tag (see `lib.rs`), the
//! replayer re-derives unsatisfiability from first principles:
//!
//! * each learnt clause must be a **RUP** (reverse unit propagation)
//!   consequence of the clauses before it — asserting its negation and
//!   unit-propagating must yield a conflict;
//! * the final core — the assumption literals the producer blamed — must
//!   propagate to a conflict against the full clause database.
//!
//! The propagator is a two-watched-literal scheme with a trail so each
//! RUP check runs against the persistent root state and is undone
//! afterwards.

/// An incremental unit propagator over signed integer literals
/// (`+v` / `-v`, `v ≥ 1`).
pub struct Propagator {
    /// Per-variable assignment: 0 unset, 1 true, 2 false.
    assign: Vec<u8>,
    /// Assigned variables in order.
    trail: Vec<usize>,
    /// Per-literal clause watch lists (index = `2·var + (lit < 0)`).
    watches: Vec<Vec<usize>>,
    clauses: Vec<Vec<i64>>,
    /// Set when the clause database alone is contradictory at root
    /// level; every subsequent derivation is then trivially valid.
    root_conflict: bool,
}

fn var(l: i64) -> usize {
    l.unsigned_abs() as usize
}

fn lit_index(l: i64) -> usize {
    var(l) * 2 + usize::from(l < 0)
}

impl Propagator {
    /// An empty propagator.
    pub fn new() -> Propagator {
        Propagator {
            assign: Vec::new(),
            trail: Vec::new(),
            watches: Vec::new(),
            clauses: Vec::new(),
            root_conflict: false,
        }
    }

    /// True once the database is contradictory without assumptions.
    pub fn root_conflict(&self) -> bool {
        self.root_conflict
    }

    fn ensure_var(&mut self, v: usize) {
        if v >= self.assign.len() {
            self.assign.resize(v + 1, 0);
            self.watches.resize((v + 1) * 2, Vec::new());
        }
    }

    fn value(&self, l: i64) -> Option<bool> {
        match self.assign[var(l)] {
            0 => None,
            1 => Some(l > 0),
            _ => Some(l < 0),
        }
    }

    fn enqueue(&mut self, l: i64) {
        self.assign[var(l)] = if l > 0 { 1 } else { 2 };
        self.trail.push(var(l));
    }

    /// Propagates every assignment from trail position `qhead` on;
    /// returns `true` on conflict (the trail is left as-is either way —
    /// the caller unwinds).
    fn propagate(&mut self, mut qhead: usize) -> bool {
        while qhead < self.trail.len() {
            let v = self.trail[qhead];
            qhead += 1;
            let false_lit: i64 = if self.assign[v] == 1 {
                -(v as i64)
            } else {
                v as i64
            };
            let widx = lit_index(false_lit);
            let mut ws = std::mem::take(&mut self.watches[widx]);
            let mut i = 0;
            while i < ws.len() {
                let ci = ws[i];
                if self.clauses[ci][0] == false_lit {
                    self.clauses[ci].swap(0, 1);
                }
                let first = self.clauses[ci][0];
                if self.value(first) == Some(true) {
                    i += 1;
                    continue;
                }
                // Look for a replacement watch among the tail literals.
                let len = self.clauses[ci].len();
                let mut moved = false;
                for k in 2..len {
                    let lk = self.clauses[ci][k];
                    if self.value(lk) != Some(false) {
                        self.clauses[ci].swap(1, k);
                        let nw = lit_index(self.clauses[ci][1]);
                        self.watches[nw].push(ci);
                        ws.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting on `first`.
                match self.value(first) {
                    Some(false) => {
                        self.watches[widx] = ws;
                        return true;
                    }
                    None => {
                        self.enqueue(first);
                        i += 1;
                    }
                    Some(true) => unreachable!("handled above"),
                }
            }
            self.watches[widx] = ws;
        }
        false
    }

    /// Adds a clause to the persistent database, propagating any
    /// consequence at root level.
    pub fn add_clause(&mut self, lits: &[i64]) {
        for &l in lits {
            self.ensure_var(var(l));
        }
        if self.root_conflict {
            return;
        }
        if lits.iter().any(|&l| self.value(l) == Some(true)) {
            // Root assignments never retract: the clause is satisfied
            // forever and can never propagate anything new.
            return;
        }
        let mut c: Vec<i64> = lits.to_vec();
        // Move non-false literals to the watch positions.
        let mut w = 0;
        for k in 0..c.len() {
            if self.value(c[k]).is_none() {
                c.swap(w, k);
                w += 1;
                if w == 2 {
                    break;
                }
            }
        }
        match w {
            0 => self.root_conflict = true,
            1 => {
                let mark = self.trail.len();
                let unit = c[0];
                self.enqueue(unit);
                if self.propagate(mark) {
                    self.root_conflict = true;
                }
            }
            _ => {
                let ci = self.clauses.len();
                self.watches[lit_index(c[0])].push(ci);
                self.watches[lit_index(c[1])].push(ci);
                self.clauses.push(c);
            }
        }
    }

    /// True when asserting the negation of `clause` and unit-propagating
    /// yields a conflict (the clause is a RUP consequence of the
    /// database). The trail is restored afterwards.
    pub fn has_rup(&mut self, clause: &[i64]) -> bool {
        let negated: Vec<i64> = clause.iter().map(|&l| -l).collect();
        self.units_conflict(&negated)
    }

    /// True when asserting `units` and unit-propagating yields a
    /// conflict. The trail is restored afterwards.
    pub fn units_conflict(&mut self, units: &[i64]) -> bool {
        for &l in units {
            self.ensure_var(var(l));
        }
        if self.root_conflict {
            return true;
        }
        let mark = self.trail.len();
        let mut conflict = false;
        for &l in units {
            match self.value(l) {
                Some(true) => {}
                Some(false) => {
                    conflict = true;
                    break;
                }
                None => self.enqueue(l),
            }
        }
        if !conflict {
            conflict = self.propagate(mark);
        }
        while self.trail.len() > mark {
            let v = self.trail.pop().expect("non-empty past mark");
            self.assign[v] = 0;
        }
        conflict
    }
}

impl Default for Propagator {
    fn default() -> Propagator {
        Propagator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rup_accepts_resolvents_and_rejects_non_consequences() {
        let mut p = Propagator::new();
        p.add_clause(&[1, 2]);
        p.add_clause(&[-1, 2]);
        // 2 follows by resolution → RUP.
        assert!(p.has_rup(&[2]));
        // 1 does not follow.
        assert!(!p.has_rup(&[1]));
        // Trail restored: still no root conflict.
        assert!(!p.root_conflict());
    }

    #[test]
    fn units_chain_to_conflict() {
        let mut p = Propagator::new();
        p.add_clause(&[-1, 2]);
        p.add_clause(&[-2, 3]);
        p.add_clause(&[-3]);
        assert!(p.units_conflict(&[1]));
        assert!(!p.units_conflict(&[-1]));
    }

    #[test]
    fn root_conflict_from_contradictory_units() {
        let mut p = Propagator::new();
        p.add_clause(&[5]);
        assert!(!p.root_conflict());
        p.add_clause(&[-5]);
        assert!(p.root_conflict());
        // Everything is derivable from ⊥.
        assert!(p.has_rup(&[9]));
    }

    #[test]
    fn learnt_clauses_extend_the_database() {
        let mut p = Propagator::new();
        p.add_clause(&[1, 2]);
        p.add_clause(&[1, -2]);
        assert!(p.has_rup(&[1]));
        p.add_clause(&[1]); // commit the learnt unit
        p.add_clause(&[-1, 3]);
        // Root propagation: 1, then 3.
        assert!(p.units_conflict(&[-3]));
    }
}
