#![warn(missing_docs)]

//! `acspec-check` — the independent certificate checker.
//!
//! The analysis engine (`acspec-smt` → `acspec-vcgen` → `acspec-core`)
//! emits a schema-versioned certificate sidecar (`--certs-out`) in which
//! every reported verdict is a [`doc::Claim`] backed by a
//! [`doc::Cert`]: a `Sat` certificate carries a full first-order model,
//! an `Unsat` certificate carries a replayable propositional proof. This
//! crate re-validates that document **without sharing any code with the
//! engine** — its own JSON parser ([`json`]), its own term evaluator
//! ([`eval`]), its own unit propagator ([`proof`]).
//!
//! # What is re-derived vs. trusted
//!
//! Re-derived from first principles:
//!
//! * **`Sat` verdicts** — every asserted root, assumption, and blocking
//!   clause must evaluate to *true* under the certificate's model.
//! * **`Unsat` verdicts** — every input clause in the proof log must
//!   match its provenance tag (asserted unit, Tseitin definitional
//!   clause reconstructed from the term structure, theory clause
//!   matching its term-level reading, blocking clause matching the
//!   query), every learnt clause must be a RUP consequence of the
//!   clauses before it, and the final core must propagate to a conflict.
//! * **Claim/certificate agreement** — each claim's expected verdict
//!   against its certificate's outcome, cube literals against the
//!   certificate's assumptions, cover-exhaustion blocking clauses
//!   against the enumerated cubes, and weakening-chain step structure
//!   (shrinking subsets grounded by unsat evidence down to the spec).
//!
//! Remaining in the trust base (documented in `DESIGN.md` §4.6): the
//! *validity* of theory-tagged clauses (the checker verifies they match
//! their claimed term-level reading, not linear-arithmetic validity),
//! the semantics of purification equations, and the mapping from report
//! claims to logical terms.

pub mod doc;
pub mod eval;
pub mod json;
pub mod proof;

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use doc::{Cert, ClaimKind, Event, Node, Outcome, Proc, Proof, StepEvidence, Tag};
use eval::Evaluator;
use proof::Propagator;

/// The result of checking a certificate document: counts of what was
/// examined plus every validation failure found (empty = fully valid).
#[derive(Debug, Default)]
pub struct CheckSummary {
    /// Procedures examined.
    pub procs: usize,
    /// Certificates examined.
    pub certs: usize,
    /// `Sat` certificates (model-checked).
    pub sat_certs: usize,
    /// `Unsat` certificates (proof-replayed).
    pub unsat_certs: usize,
    /// Claims examined.
    pub claims: usize,
    /// Weakening chains examined.
    pub chains: usize,
    /// Every validation failure, in document order.
    pub errors: Vec<String>,
}

impl CheckSummary {
    /// True when the document validated completely.
    pub fn ok(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Checks a certificate sidecar document (the `--certs-out` JSON text).
pub fn check_document(text: &str) -> CheckSummary {
    let mut sum = CheckSummary::default();
    let parsed = match doc::parse_certs_doc(text) {
        Ok(d) => d,
        Err(e) => {
            sum.errors.push(e);
            return sum;
        }
    };
    sum.procs = parsed.procs.len();
    for p in &parsed.procs {
        check_proc(p, &mut sum);
    }
    sum
}

fn outcome_name(o: &Outcome) -> &'static str {
    match o {
        Outcome::Sat(_) => "sat",
        Outcome::Unsat(_) => "unsat",
        Outcome::Unknown => "unknown",
    }
}

fn node_children(node: &Node) -> Vec<u32> {
    match node {
        Node::True
        | Node::False
        | Node::BoolVar(_)
        | Node::IntVar(_)
        | Node::IntConst(_)
        | Node::MapVar(_) => Vec::new(),
        Node::Not(a) | Node::MulC(_, a) => vec![*a],
        Node::And(ps) | Node::Or(ps) | Node::Add(ps) | Node::App(_, ps) => ps.clone(),
        Node::Implies(a, b)
        | Node::Iff(a, b)
        | Node::Eq(a, b)
        | Node::Le(a, b)
        | Node::Lt(a, b)
        | Node::Read(a, b) => vec![*a, *b],
        Node::Write(a, b, c) | Node::Ite(a, b, c) => vec![*a, *b, *c],
    }
}

fn check_proc(p: &Proc, sum: &mut CheckSummary) {
    let name = &p.proc_name;
    // Term table well-formedness: every referenced child exists.
    for (&id, node) in &p.terms {
        for c in node_children(node) {
            if !p.terms.contains_key(&c) {
                sum.errors.push(format!(
                    "proc {name}: term {id} references missing term {c}"
                ));
            }
        }
    }
    for &a in &p.asserts {
        if !p.terms.contains_key(&a) {
            sum.errors.push(format!(
                "proc {name}: assert stream references missing term {a}"
            ));
        }
    }

    // Certificates.
    for (ci, cert) in p.certs.iter().enumerate() {
        sum.certs += 1;
        let mut fail = |msg: String| sum.errors.push(format!("proc {name}: cert {ci}: {msg}"));
        if cert.asserts_upto > p.asserts.len() {
            fail(format!(
                "asserts_upto {} exceeds assert stream length {}",
                cert.asserts_upto,
                p.asserts.len()
            ));
            continue;
        }
        let mut shape_ok = true;
        for &t in cert
            .assumptions
            .iter()
            .chain(cert.blocking.iter().flatten())
        {
            if !p.terms.contains_key(&t) {
                fail(format!("references missing term {t}"));
                shape_ok = false;
            }
        }
        if !shape_ok {
            continue;
        }
        match &cert.outcome {
            Outcome::Sat(_) => {
                sum.sat_certs += 1;
                for e in check_sat_cert(p, cert) {
                    sum.errors.push(format!("proc {name}: cert {ci}: {e}"));
                }
            }
            Outcome::Unsat(proof) => {
                sum.unsat_certs += 1;
                for e in check_unsat_cert(p, cert, proof) {
                    sum.errors.push(format!("proc {name}: cert {ci}: {e}"));
                }
            }
            Outcome::Unknown => {
                sum.errors.push(format!(
                    "proc {name}: cert {ci}: outcome `unknown` is not checkable"
                ));
            }
        }
    }

    // Claims (plus cube bookkeeping for the per-label passes below).
    let mut cubes_by_label: BTreeMap<&str, Vec<(usize, &[i64])>> = BTreeMap::new();
    let mut exhaust_by_label: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (qi, claim) in p.claims.iter().enumerate() {
        sum.claims += 1;
        let mut fail = |msg: String| {
            sum.errors.push(format!(
                "proc {name}: claim {qi} ({} {}): {msg}",
                claim.kind_name(),
                claim.label
            ))
        };
        let implied = match claim.kind {
            ClaimKind::CanFail | ClaimKind::CubeFeasible { .. } | ClaimKind::SpecFails => "sat",
            _ => "unsat",
        };
        if claim.expect != implied {
            fail(format!(
                "kind implies expected verdict `{implied}`, document says `{}`",
                claim.expect
            ));
        }
        let Some(cert) = p.certs.get(claim.cert) else {
            fail(format!("certificate index {} out of range", claim.cert));
            continue;
        };
        if outcome_name(&cert.outcome) != implied {
            fail(format!(
                "claim requires a `{implied}` certificate, cert {} is `{}`",
                claim.cert,
                outcome_name(&cert.outcome)
            ));
            continue;
        }
        match &claim.kind {
            ClaimKind::CubeFeasible { cube, lits } => {
                for e in check_cube_claim(p, cert, lits) {
                    fail(e);
                }
                cubes_by_label
                    .entry(claim.label.as_str())
                    .or_default()
                    .push((*cube, lits.as_slice()));
            }
            ClaimKind::CoverExhausted => {
                exhaust_by_label
                    .entry(claim.label.as_str())
                    .or_default()
                    .push(claim.cert);
            }
            _ => {}
        }
    }

    // Per-label cube disjointness: no two feasible cubes may be the
    // same assignment.
    for (label, cubes) in &cubes_by_label {
        let mut seen: HashSet<BTreeSet<i64>> = HashSet::new();
        for (cube, lits) in cubes {
            let set: BTreeSet<i64> = lits.iter().copied().collect();
            if !seen.insert(set) {
                sum.errors.push(format!(
                    "proc {name}: label {label}: cube {cube} duplicates another cube"
                ));
            }
        }
    }

    // Cover exhaustion: the unsat query's blocking clauses must be
    // exactly the negations of the enumerated cubes — nothing blocked
    // that was not reported feasible, nothing reported but unblocked.
    for (label, cert_idxs) in &exhaust_by_label {
        let cube_sets: Vec<BTreeSet<i64>> = cubes_by_label
            .get(label)
            .map(|cubes| {
                cubes
                    .iter()
                    .map(|(_, lits)| lits.iter().copied().collect())
                    .collect()
            })
            .unwrap_or_default();
        for &ci in cert_idxs {
            for e in check_exhaustion_blocking(p, &p.certs[ci], &cube_sets) {
                sum.errors.push(format!("proc {name}: label {label}: {e}"));
            }
        }
    }

    // Weakening chains.
    for (hi, chain) in p.chains.iter().enumerate() {
        sum.chains += 1;
        if chain.steps.is_empty() {
            // Ungrounded chain (a fail = 0 fidelity push carries no dead
            // verdict): nothing to certify.
            continue;
        }
        let mut fail = |msg: String| {
            sum.errors
                .push(format!("proc {name}: chain {hi} ({}): {msg}", chain.label))
        };
        if let Some(cubes) = cubes_by_label.get(chain.label.as_str()) {
            let full: Vec<u32> = (0..cubes.len() as u32).collect();
            if chain.steps[0].subset != full {
                fail(format!(
                    "root subset {:?} is not the full cover 0..{}",
                    chain.steps[0].subset,
                    cubes.len()
                ));
            }
        }
        let mut cur: BTreeSet<u32> = chain.steps[0].subset.iter().copied().collect();
        for (si, step) in chain.steps.iter().enumerate() {
            let sset: BTreeSet<u32> = step.subset.iter().copied().collect();
            if si > 0 && sset != cur {
                fail(format!(
                    "step {si} subset does not match previous subset minus its removed clause"
                ));
            }
            if !sset.contains(&step.removed) {
                fail(format!(
                    "step {si} removes clause {} not present in its subset",
                    step.removed
                ));
            }
            for e in check_step_evidence(p, &sset, &step.evidence) {
                fail(format!("step {si}: {e}"));
            }
            cur = sset;
            cur.remove(&step.removed);
        }
        let spec: BTreeSet<u32> = chain.spec.iter().copied().collect();
        if spec != cur {
            fail("spec does not match the final weakened subset".to_string());
        }
    }
}

impl doc::Claim {
    fn kind_name(&self) -> &'static str {
        match self.kind {
            ClaimKind::CanFail => "can_fail",
            ClaimKind::CannotFail => "cannot_fail",
            ClaimKind::BaselineDead => "baseline_dead",
            ClaimKind::CubeFeasible { .. } => "cube_feasible",
            ClaimKind::CoverExhausted => "cover_exhausted",
            ClaimKind::SpecFails => "spec_fails",
            ClaimKind::SpecHolds => "spec_holds",
        }
    }
}

/// A feasible-cube claim's literals must be entailed by the
/// certificate's assumptions: `+t` requires the indicator term itself
/// among the assumptions, `-t` requires its negation.
fn check_cube_claim(p: &Proc, cert: &Cert, lits: &[i64]) -> Vec<String> {
    // Zero literals is the universal cube (a width-0 cover clause):
    // feasibility then rests on the guard assumptions alone.
    let mut errors = Vec::new();
    let assumed: BTreeSet<u32> = cert.assumptions.iter().copied().collect();
    let negated: BTreeSet<u32> = cert
        .assumptions
        .iter()
        .filter_map(|&u| match p.terms.get(&u) {
            Some(Node::Not(a)) => Some(*a),
            _ => None,
        })
        .collect();
    for &l in lits {
        if l == 0 || u32::try_from(l.unsigned_abs()).is_err() {
            errors.push(format!("cube literal {l} out of range"));
            continue;
        }
        let t = l.unsigned_abs() as u32;
        if !p.terms.contains_key(&t) {
            errors.push(format!("cube literal references missing term {t}"));
        } else if l > 0 && !assumed.contains(&t) {
            errors.push(format!(
                "cube literal +{t} has no matching certificate assumption"
            ));
        } else if l < 0 && !negated.contains(&t) {
            errors.push(format!(
                "cube literal -{t} has no matching negated certificate assumption"
            ));
        }
    }
    errors
}

/// An exhaustion certificate's blocking clauses, read back as signed
/// cubes (a plain term blocks the cube where it was *false*; a negated
/// term blocks the cube where it was *true*), must be exactly the
/// feasible cubes enumerated for the label.
fn check_exhaustion_blocking(p: &Proc, cert: &Cert, cube_sets: &[BTreeSet<i64>]) -> Vec<String> {
    let mut errors = Vec::new();
    let mut derived: Vec<BTreeSet<i64>> = Vec::new();
    for cl in &cert.blocking {
        let mut cube = BTreeSet::new();
        for &e in cl {
            match p.terms.get(&e) {
                Some(Node::Not(a)) => {
                    cube.insert(i64::from(*a));
                }
                Some(_) => {
                    cube.insert(-i64::from(e));
                }
                None => errors.push(format!("blocking clause references missing term {e}")),
            }
        }
        derived.push(cube);
    }
    let mut want: Vec<BTreeSet<i64>> = cube_sets.to_vec();
    derived.sort();
    want.sort();
    if derived != want {
        errors.push(format!(
            "exhaustion blocking clauses do not match the {} enumerated cubes",
            cube_sets.len()
        ));
    }
    errors
}

fn check_step_evidence(p: &Proc, subset: &BTreeSet<u32>, ev: &StepEvidence) -> Vec<String> {
    let mut errors = Vec::new();
    match ev {
        StepEvidence::Inconsistent { cert } | StepEvidence::DeadLoc { cert } => {
            match p.certs.get(*cert) {
                None => errors.push(format!("evidence certificate {cert} out of range")),
                Some(c) => {
                    if !matches!(c.outcome, Outcome::Unsat(_)) {
                        errors.push(format!(
                            "evidence certificate {cert} is `{}`, dead verdicts require `unsat`",
                            outcome_name(&c.outcome)
                        ));
                    }
                }
            }
        }
        StepEvidence::Path => {}
        StepEvidence::Dominated { base, evidence } => {
            let base_set: BTreeSet<u32> = base.iter().copied().collect();
            if !base_set.is_subset(subset) {
                errors.push("dominating base is not a subset of the step's subset".to_string());
            }
            errors.extend(check_step_evidence(p, &base_set, evidence));
        }
    }
    errors
}

// ---------------------------------------------------------------------
// Sat: model checking
// ---------------------------------------------------------------------

fn check_sat_cert(p: &Proc, cert: &Cert) -> Vec<String> {
    let Outcome::Sat(model) = &cert.outcome else {
        unreachable!("caller matched Sat")
    };
    let mut errors = Vec::new();
    if !cert.self_checked {
        errors.push("sat certificate without producer self-check".to_string());
    }
    let mut ev = Evaluator::new(&p.terms, model);
    for &t in p.asserts[..cert.asserts_upto]
        .iter()
        .chain(cert.assumptions.iter())
    {
        match ev.eval_bool(t) {
            Ok(true) => {}
            Ok(false) => errors.push(format!("term {t} is false under the model")),
            Err(e) => errors.push(e),
        }
    }
    for (bi, cl) in cert.blocking.iter().enumerate() {
        let mut sat = false;
        for &t in cl {
            match ev.eval_bool(t) {
                Ok(true) => {
                    sat = true;
                    break;
                }
                Ok(false) => {}
                Err(e) => {
                    errors.push(e);
                    break;
                }
            }
        }
        if !sat {
            errors.push(format!("blocking clause {bi} is false under the model"));
        }
    }
    errors
}

// ---------------------------------------------------------------------
// Unsat: proof replay
// ---------------------------------------------------------------------

fn check_unsat_cert(p: &Proc, cert: &Cert, proof: &Proof) -> Vec<String> {
    let mut errors = Vec::new();

    // Literal-table consistency: a negation's literal is the negated
    // literal of its child (the engine never allocates a fresh variable
    // for `Not`).
    for (&t, &l) in &proof.lits {
        if !p.terms.contains_key(&t) {
            errors.push(format!("literal table references missing term {t}"));
            continue;
        }
        if let Some(Node::Not(a)) = p.terms.get(&t) {
            if proof.lits.get(a) != Some(&-l) {
                errors.push(format!(
                    "literal of negation term {t} is not the negated literal of term {a}"
                ));
            }
        }
    }

    let asserted: HashSet<u32> = p.asserts[..cert.asserts_upto].iter().copied().collect();
    let blocking_sets: Vec<BTreeSet<u32>> = cert
        .blocking
        .iter()
        .map(|cl| cl.iter().copied().collect())
        .collect();
    let mut tseitin_memo: HashMap<u32, HashSet<Vec<i64>>> = HashMap::new();
    let mut prop = Propagator::new();

    for (ei, event) in proof.events.iter().enumerate() {
        let lits = match event {
            Event::Input { lits, .. } | Event::Learnt { lits } => lits,
        };
        if lits.contains(&0) {
            errors.push(format!("event {ei}: zero literal"));
            continue;
        }
        match event {
            Event::Input { lits, tag } => {
                if let Err(e) = check_input_clause(
                    p,
                    proof,
                    &asserted,
                    &blocking_sets,
                    &mut tseitin_memo,
                    lits,
                    tag,
                ) {
                    errors.push(format!("event {ei}: {e}"));
                }
                prop.add_clause(lits);
            }
            Event::Learnt { lits } => {
                if !prop.has_rup(lits) {
                    errors.push(format!(
                        "event {ei}: learnt clause is not a RUP consequence of the clauses before it"
                    ));
                }
                prop.add_clause(lits);
            }
        }
    }

    // Final conflict: the blamed core (a subset of the assumptions) must
    // propagate to a conflict; an empty core requires the clause
    // database alone to be contradictory.
    let assumed: HashSet<u32> = cert.assumptions.iter().copied().collect();
    let mut units = Vec::with_capacity(proof.core.len());
    let mut core_ok = true;
    for &t in &proof.core {
        if !assumed.contains(&t) {
            errors.push(format!("core term {t} is not among the assumptions"));
            core_ok = false;
        }
        match proof.lits.get(&t) {
            Some(&l) => units.push(l),
            None => {
                errors.push(format!("core term {t} has no literal"));
                core_ok = false;
            }
        }
    }
    if core_ok && !prop.units_conflict(&units) {
        errors.push("final core does not propagate to a conflict".to_string());
    }
    errors
}

fn lit_of(proof: &Proof, t: u32) -> Result<i64, String> {
    proof
        .lits
        .get(&t)
        .copied()
        .ok_or_else(|| format!("term {t} has no literal"))
}

fn sorted(lits: &[i64]) -> Vec<i64> {
    let mut v = lits.to_vec();
    v.sort_unstable();
    v
}

/// Validates one tagged input clause against its provenance: the clause
/// must be byte-for-byte reconstructible from the term structure and the
/// literal table, so a single flipped or dropped literal is rejected.
fn check_input_clause(
    p: &Proc,
    proof: &Proof,
    asserted: &HashSet<u32>,
    blocking_sets: &[BTreeSet<u32>],
    tseitin_memo: &mut HashMap<u32, HashSet<Vec<i64>>>,
    lits: &[i64],
    tag: &Tag,
) -> Result<(), String> {
    let got = sorted(lits);
    match tag {
        Tag::Assert { term } => {
            if !asserted.contains(term) {
                return Err(format!(
                    "assert tag names term {term} outside the installed prefix"
                ));
            }
            let want = vec![lit_of(proof, *term)?];
            if got != want {
                return Err(format!(
                    "assert clause does not match literal of term {term}"
                ));
            }
            Ok(())
        }
        Tag::Purify { term } => {
            let want = vec![lit_of(proof, *term)?];
            if got != want {
                return Err(format!(
                    "purify clause does not match literal of guard term {term}"
                ));
            }
            Ok(())
        }
        Tag::Tseitin { term } => {
            if !tseitin_memo.contains_key(term) {
                let set = tseitin_clauses(p, proof, *term)?;
                tseitin_memo.insert(*term, set);
            }
            if tseitin_memo[term].contains(&got) {
                Ok(())
            } else {
                Err(format!(
                    "clause is not a definitional clause of term {term}"
                ))
            }
        }
        Tag::Theory { parts } => {
            if parts.is_empty() {
                return Err("theory clause with no parts".to_string());
            }
            let mut want = Vec::with_capacity(parts.len());
            for &(t, pol) in parts {
                let l = lit_of(proof, t)?;
                want.push(if pol { l } else { -l });
            }
            want.sort_unstable();
            if got != want {
                return Err("theory clause does not match its term-level reading".to_string());
            }
            Ok(())
        }
        Tag::External { parts } => {
            // A width-0 cover clause blocks the universal cube with the
            // empty clause, so zero parts are legal — but only when the
            // certificate declares a matching (empty) blocking clause;
            // a genuinely untagged clause fails the membership check.
            let set: BTreeSet<u32> = parts.iter().copied().collect();
            if !blocking_sets.contains(&set) {
                return Err("external clause does not match any blocking clause".to_string());
            }
            let mut want = Vec::with_capacity(parts.len());
            for &t in parts {
                want.push(lit_of(proof, t)?);
            }
            want.sort_unstable();
            if got != want {
                return Err("external clause does not match its term literals".to_string());
            }
            Ok(())
        }
    }
}

/// The exact definitional (Tseitin) clauses a term may contribute,
/// reconstructed from the term structure and the literal table.
fn tseitin_clauses(p: &Proc, proof: &Proof, t: u32) -> Result<HashSet<Vec<i64>>, String> {
    let l = lit_of(proof, t)?;
    let node = p
        .terms
        .get(&t)
        .ok_or_else(|| format!("term {t} missing from table"))?;
    let mut set = HashSet::new();
    match node {
        // `true` is a fresh variable asserted positively; `false` is the
        // same with the term literal on the *negated* side.
        Node::True => {
            set.insert(vec![l]);
        }
        Node::False => {
            set.insert(vec![-l]);
        }
        Node::And(ps) => {
            let mut big = Vec::with_capacity(ps.len() + 1);
            for &q in ps {
                let lq = lit_of(proof, q)?;
                set.insert(sorted(&[-l, lq]));
                big.push(-lq);
            }
            big.push(l);
            set.insert(sorted(&big));
        }
        Node::Or(ps) => {
            let mut big = Vec::with_capacity(ps.len() + 1);
            for &q in ps {
                let lq = lit_of(proof, q)?;
                set.insert(sorted(&[l, -lq]));
                big.push(lq);
            }
            big.push(-l);
            set.insert(sorted(&big));
        }
        Node::Iff(a, b) => {
            let la = lit_of(proof, *a)?;
            let lb = lit_of(proof, *b)?;
            set.insert(sorted(&[-l, -la, lb]));
            set.insert(sorted(&[-l, la, -lb]));
            set.insert(sorted(&[l, la, lb]));
            set.insert(sorted(&[l, -la, -lb]));
        }
        _ => {
            return Err(format!(
                "term {t} has no definitional clauses (negations share their child's \
                 literal; implications are rewritten; atoms are plain variables)"
            ));
        }
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(doc: &str) -> CheckSummary {
        check_document(doc)
    }

    #[test]
    fn rejects_wrong_schema_version() {
        let s = check(r#"{"schema_version":2,"procs":[]}"#);
        assert!(!s.ok());
        assert!(s.errors[0].contains("schema_version"));
    }

    #[test]
    fn accepts_valid_sat_cert_and_rejects_mutated_model() {
        let doc = |val: bool| {
            format!(
                r#"{{"schema_version":3,"procs":[{{"proc_name":"f",
                   "terms":{{"1":["bool_var","b"]}},
                   "asserts":[1],
                   "certs":[{{"assumptions":[],"asserts_upto":1,"blocking":[],
                              "outcome":"sat",
                              "model":{{"ints":{{}},"bools":{{"b":{val}}},"maps":{{}},"funcs":{{}}}},
                              "self_checked":true}}],
                   "claims":[{{"label":"Cons","kind":"can_fail","expect":"sat","cert":0}}],
                   "chains":[]}}]}}"#
            )
        };
        let good = check(&doc(true));
        assert!(good.ok(), "unexpected errors: {:?}", good.errors);
        assert_eq!((good.certs, good.sat_certs, good.claims), (1, 1, 1));
        let bad = check(&doc(false));
        assert!(!bad.ok());
        assert!(bad.errors[0].contains("false under the model"));
    }

    // Two asserted roots `b` and `¬b`: the clause database alone is
    // contradictory, so the core is empty.
    fn unsat_doc(first_clause: &str, core: &str) -> String {
        format!(
            r#"{{"schema_version":3,"procs":[{{"proc_name":"f",
               "terms":{{"1":["bool_var","b"],"2":["not",1]}},
               "asserts":[1,2],
               "certs":[{{"assumptions":[],"asserts_upto":2,"blocking":[],
                          "outcome":"unsat",
                          "proof":{{"lits":[[1,1],[2,-1]],
                                    "events":[["input",[{first_clause}],["assert",1]],
                                              ["input",[-1],["assert",2]]],
                                    "core":[{core}]}},
                          "self_checked":true}}],
               "claims":[{{"label":"Cons","kind":"cannot_fail","expect":"unsat","cert":0}}],
               "chains":[]}}]}}"#
        )
    }

    #[test]
    fn replays_unsat_proof_and_rejects_flipped_literal() {
        let good = check(&unsat_doc("1", ""));
        assert!(good.ok(), "unexpected errors: {:?}", good.errors);
        assert_eq!(good.unsat_certs, 1);
        // Flip the first input clause's literal: tag reconstruction fails
        // AND the database no longer conflicts.
        let bad = check(&unsat_doc("-1", ""));
        assert!(!bad.ok());
        assert!(bad
            .errors
            .iter()
            .any(|e| e.contains("does not match literal")));
        assert!(bad.errors.iter().any(|e| e.contains("final core")));
    }

    #[test]
    fn rejects_core_term_outside_assumptions() {
        let bad = check(&unsat_doc("1", "1"));
        assert!(bad
            .errors
            .iter()
            .any(|e| e.contains("not among the assumptions")));
    }

    #[test]
    fn learnt_clauses_must_be_rup() {
        // Theory clauses (b ∨ c) and (¬b ∨ c) entail c but not b.
        let doc = |learnt: &str| {
            format!(
                r#"{{"schema_version":3,"procs":[{{"proc_name":"f",
                   "terms":{{"1":["bool_var","b"],"2":["bool_var","c"],"3":["not",2]}},
                   "asserts":[],
                   "certs":[{{"assumptions":[3],"asserts_upto":0,"blocking":[],
                              "outcome":"unsat",
                              "proof":{{"lits":[[1,1],[2,2],[3,-2]],
                                        "events":[["input",[1,2],["theory",[[1,true],[2,true]]]],
                                                  ["input",[-1,2],["theory",[[1,false],[2,true]]]],
                                                  ["learnt",[{learnt}]]],
                                        "core":[3]}},
                              "self_checked":true}}],
                   "claims":[],"chains":[]}}]}}"#
            )
        };
        let good = check(&doc("2"));
        assert!(good.ok(), "unexpected errors: {:?}", good.errors);
        let bad = check(&doc("1"));
        assert!(bad.errors.iter().any(|e| e.contains("RUP")));
    }

    #[test]
    fn rejects_unknown_outcomes_and_untagged_clauses() {
        let unknown = check(
            r#"{"schema_version":3,"procs":[{"proc_name":"f","terms":{},"asserts":[],
               "certs":[{"assumptions":[],"asserts_upto":0,"blocking":[],
                         "outcome":"unknown","self_checked":true}],
               "claims":[],"chains":[]}]}"#,
        );
        assert!(unknown.errors.iter().any(|e| e.contains("unknown")));
        // A clause with no provenance parts is only legal when the
        // certificate declares a matching empty blocking clause.
        let untagged = check(
            r#"{"schema_version":3,"procs":[{"proc_name":"f",
               "terms":{"1":["bool_var","b"]},"asserts":[],
               "certs":[{"assumptions":[],"asserts_upto":0,"blocking":[],
                         "outcome":"unsat",
                         "proof":{"lits":[[1,1]],
                                  "events":[["input",[1],["external",[]]],
                                            ["input",[-1],["external",[]]]],
                                  "core":[]},
                         "self_checked":true}],
               "claims":[],"chains":[]}]}"#,
        );
        assert!(untagged
            .errors
            .iter()
            .any(|e| e.contains("does not match any blocking clause")));
        // The width-0 cover case: a declared empty blocking clause is
        // the empty input clause, contradictory on its own.
        let empty_blocking = check(
            r#"{"schema_version":3,"procs":[{"proc_name":"f",
               "terms":{},"asserts":[],
               "certs":[{"assumptions":[],"asserts_upto":0,"blocking":[[]],
                         "outcome":"unsat",
                         "proof":{"lits":[],
                                  "events":[["input",[],["external",[]]]],
                                  "core":[]},
                         "self_checked":true}],
               "claims":[],"chains":[]}]}"#,
        );
        assert!(
            empty_blocking.ok(),
            "unexpected errors: {:?}",
            empty_blocking.errors
        );
    }

    #[test]
    fn validates_chain_structure() {
        // A 2-cube cover weakened once: root {0,1} minus 1 → spec {0}.
        let doc = |spec: &str| {
            format!(
                r#"{{"schema_version":3,"procs":[{{"proc_name":"f",
                   "terms":{{"1":["bool_var","p"],"2":["not",1]}},
                   "asserts":[],
                   "certs":[{{"assumptions":[1],"asserts_upto":0,"blocking":[],
                              "outcome":"sat",
                              "model":{{"ints":{{}},"bools":{{"p":true}},"maps":{{}},"funcs":{{}}}},
                              "self_checked":true}},
                             {{"assumptions":[2],"asserts_upto":0,"blocking":[],
                              "outcome":"sat",
                              "model":{{"ints":{{}},"bools":{{}},"maps":{{}},"funcs":{{}}}},
                              "self_checked":true}},
                             {{"assumptions":[],"asserts_upto":0,"blocking":[],
                              "outcome":"unsat",
                              "proof":{{"lits":[[1,1]],
                                        "events":[["input",[1],["theory",[[1,true]]]],
                                                  ["input",[-1],["theory",[[1,false]]]]],
                                        "core":[]}},
                              "self_checked":true}}],
                   "claims":[{{"label":"A1","kind":"cube_feasible","expect":"sat","cube":0,"lits":[1],"cert":0}},
                             {{"label":"A1","kind":"cube_feasible","expect":"sat","cube":1,"lits":[-1],"cert":1}}],
                   "chains":[{{"label":"A1","spec":[{spec}],
                              "steps":[{{"subset":[0,1],"removed":1,
                                        "evidence":{{"kind":"inconsistent","cert":2}}}}]}}]}}]}}"#
            )
        };
        let good = check(&doc("0"));
        assert!(good.ok(), "unexpected errors: {:?}", good.errors);
        assert_eq!(good.chains, 1);
        // Wrong spec: final subset is {0}, not {1}.
        let bad = check(&doc("1"));
        assert!(bad.errors.iter().any(|e| e.contains("spec does not match")));
    }
}
