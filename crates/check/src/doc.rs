//! The certificate document model: parsed, validated-shape form of the
//! `--certs-out` sidecar. Parsing is strict — any field with the wrong
//! shape is a document error, never a default.

use std::collections::BTreeMap;

use crate::json::Value;

/// The schema version this checker understands.
pub const SUPPORTED_SCHEMA_VERSION: i64 = 3;

/// A term node (the checker's own mirror of the engine's serialized
/// form; no shared code).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// `true`.
    True,
    /// `false`.
    False,
    /// Named boolean variable.
    BoolVar(String),
    /// Negation.
    Not(u32),
    /// N-ary conjunction.
    And(Vec<u32>),
    /// N-ary disjunction.
    Or(Vec<u32>),
    /// Implication.
    Implies(u32, u32),
    /// Bi-implication.
    Iff(u32, u32),
    /// Equality.
    Eq(u32, u32),
    /// `a ≤ b`.
    Le(u32, u32),
    /// `a < b`.
    Lt(u32, u32),
    /// Named integer variable.
    IntVar(String),
    /// Integer constant.
    IntConst(i64),
    /// N-ary sum.
    Add(Vec<u32>),
    /// Constant multiple.
    MulC(i64, u32),
    /// Uninterpreted function application.
    App(String, Vec<u32>),
    /// Map read.
    Read(u32, u32),
    /// Map write.
    Write(u32, u32, u32),
    /// Named map variable.
    MapVar(String),
    /// If-then-else.
    Ite(u32, u32, u32),
}

/// Clause provenance recorded in the proof log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tag {
    /// Unit clause asserting a root term.
    Assert {
        /// The asserted term.
        term: u32,
    },
    /// Unit clause from ite purification.
    Purify {
        /// The guarded-equation term (asserted by the clause).
        term: u32,
    },
    /// Tseitin definitional clause of `term`.
    Tseitin {
        /// The encoded term.
        term: u32,
    },
    /// Theory lemma/conflict clause over `(term, polarity)` literals.
    Theory {
        /// The clause parts.
        parts: Vec<(u32, bool)>,
    },
    /// Caller blocking clause over terms.
    External {
        /// The clause part terms.
        parts: Vec<u32>,
    },
}

/// One proof event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// An input clause with provenance.
    Input {
        /// Signed SAT literals.
        lits: Vec<i64>,
        /// Provenance.
        tag: Tag,
    },
    /// A learnt clause (must be a RUP consequence of everything before).
    Learnt {
        /// Signed SAT literals.
        lits: Vec<i64>,
    },
}

/// A finite table with a default value (maps and functions).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table<K: Ord> {
    /// Value at every unlisted point.
    pub default: i64,
    /// Explicit entries.
    pub entries: BTreeMap<K, i64>,
}

/// A full first-order model (Sat evidence).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Model {
    /// Integer variables by name.
    pub ints: BTreeMap<String, i64>,
    /// Boolean variables by name.
    pub bools: BTreeMap<String, bool>,
    /// Map variables by name.
    pub maps: BTreeMap<String, Table<i64>>,
    /// Uninterpreted functions by name.
    pub funcs: BTreeMap<String, Table<Vec<i64>>>,
}

/// Proof evidence (Unsat).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Proof {
    /// Term id → signed Tseitin literal.
    pub lits: BTreeMap<u32, i64>,
    /// Chronological input/learnt log.
    pub events: Vec<Event>,
    /// Assumption terms responsible for unsatisfiability.
    pub core: Vec<u32>,
}

/// A certificate's verdict with its evidence.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Satisfiable with a model.
    Sat(Model),
    /// Unsatisfiable with a proof.
    Unsat(Proof),
    /// Replay did not finish (never acceptable for a claim).
    Unknown,
}

/// One certificate.
#[derive(Debug, Clone, PartialEq)]
pub struct Cert {
    /// Assumption term ids (canonically sorted by the producer).
    pub assumptions: Vec<u32>,
    /// Prefix of the proc's assert stream installed for this query.
    pub asserts_upto: usize,
    /// Extra blocking clauses (term-id lists).
    pub blocking: Vec<Vec<u32>>,
    /// The verdict.
    pub outcome: Outcome,
    /// Producer-side self-check flag.
    pub self_checked: bool,
}

/// What a claim asserts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClaimKind {
    /// Assertion can fail (Sat).
    CanFail,
    /// Assertion cannot fail (Unsat).
    CannotFail,
    /// Location dead under the demonic baseline (Unsat).
    BaselineDead,
    /// ALL-SAT cube feasible (Sat).
    CubeFeasible {
        /// Cube index in the label's cover.
        cube: usize,
        /// Signed indicator term ids (`+t` = predicate true).
        lits: Vec<i64>,
    },
    /// ALL-SAT enumeration exhausted (Unsat under blocking).
    CoverExhausted,
    /// Assertion fails under a spec (Sat).
    SpecFails,
    /// Assertion verified under a spec (Unsat).
    SpecHolds,
}

/// One report-level claim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Claim {
    /// Report label the claim backs.
    pub label: String,
    /// What is claimed.
    pub kind: ClaimKind,
    /// `"sat"` or `"unsat"` — the verdict the certificate must carry.
    pub expect: String,
    /// Certificate index.
    pub cert: usize,
}

/// Evidence grounding a weakening-chain step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepEvidence {
    /// Subset inconsistent (Unsat certificate).
    Inconsistent {
        /// Certificate index.
        cert: usize,
    },
    /// Location unreachable (Unsat certificate).
    DeadLoc {
        /// Certificate index.
        cert: usize,
    },
    /// Path-metric structural evidence (no certificate).
    Path,
    /// Superset of a directly-dead base (monotonicity).
    Dominated {
        /// The dominating subset.
        base: Vec<u32>,
        /// The base's own evidence.
        evidence: Box<StepEvidence>,
    },
}

/// One weakening-chain step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// The dead subset (sorted clause indices).
    pub subset: Vec<u32>,
    /// The clause removed from it.
    pub removed: u32,
    /// Why the subset was dead.
    pub evidence: StepEvidence,
}

/// A certified weakening chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chain {
    /// Report label.
    pub label: String,
    /// The output spec (sorted clause indices).
    pub spec: Vec<u32>,
    /// Root-to-spec steps (may be empty for ungrounded chains).
    pub steps: Vec<Step>,
}

/// One procedure's certificates.
#[derive(Debug, Clone, PartialEq)]
pub struct Proc {
    /// Procedure name.
    pub proc_name: String,
    /// Term table.
    pub terms: BTreeMap<u32, Node>,
    /// Base assert stream (root term ids, in order).
    pub asserts: Vec<u32>,
    /// Certificates.
    pub certs: Vec<Cert>,
    /// Claims.
    pub claims: Vec<Claim>,
    /// Chains.
    pub chains: Vec<Chain>,
}

/// The whole sidecar document.
#[derive(Debug, Clone, PartialEq)]
pub struct CertsDoc {
    /// Schema version (must be [`SUPPORTED_SCHEMA_VERSION`]).
    pub schema_version: i64,
    /// Per-procedure entries.
    pub procs: Vec<Proc>,
}

fn err(what: &str) -> String {
    format!("malformed certificate document: {what}")
}

fn ids(v: &Value, what: &str) -> Result<Vec<u32>, String> {
    v.arr()
        .ok_or_else(|| err(what))?
        .iter()
        .map(|x| x.u32().ok_or_else(|| err(what)))
        .collect()
}

fn signed(v: &Value, what: &str) -> Result<Vec<i64>, String> {
    v.arr()
        .ok_or_else(|| err(what))?
        .iter()
        .map(|x| x.int().ok_or_else(|| err(what)))
        .collect()
}

fn node(v: &Value) -> Result<Node, String> {
    let a = v.arr().ok_or_else(|| err("term node not an array"))?;
    let tag = a
        .first()
        .and_then(Value::str)
        .ok_or_else(|| err("term node missing tag"))?;
    let one = |i: usize| -> Result<u32, String> {
        a.get(i)
            .and_then(Value::u32)
            .ok_or_else(|| err("term child id"))
    };
    Ok(match (tag, a.len()) {
        ("true", 1) => Node::True,
        ("false", 1) => Node::False,
        ("bool_var", 2) => {
            Node::BoolVar(a[1].str().ok_or_else(|| err("bool_var name"))?.to_string())
        }
        ("not", 2) => Node::Not(one(1)?),
        ("and", 2) => Node::And(ids(&a[1], "and children")?),
        ("or", 2) => Node::Or(ids(&a[1], "or children")?),
        ("implies", 3) => Node::Implies(one(1)?, one(2)?),
        ("iff", 3) => Node::Iff(one(1)?, one(2)?),
        ("eq", 3) => Node::Eq(one(1)?, one(2)?),
        ("le", 3) => Node::Le(one(1)?, one(2)?),
        ("lt", 3) => Node::Lt(one(1)?, one(2)?),
        ("int_var", 2) => Node::IntVar(a[1].str().ok_or_else(|| err("int_var name"))?.to_string()),
        ("int_const", 2) => Node::IntConst(a[1].int().ok_or_else(|| err("int_const value"))?),
        ("add", 2) => Node::Add(ids(&a[1], "add children")?),
        ("mulc", 3) => Node::MulC(a[1].int().ok_or_else(|| err("mulc factor"))?, one(2)?),
        ("app", 3) => Node::App(
            a[1].str().ok_or_else(|| err("app name"))?.to_string(),
            ids(&a[2], "app args")?,
        ),
        ("read", 3) => Node::Read(one(1)?, one(2)?),
        ("write", 4) => Node::Write(one(1)?, one(2)?, one(3)?),
        ("map_var", 2) => Node::MapVar(a[1].str().ok_or_else(|| err("map_var name"))?.to_string()),
        ("ite", 4) => Node::Ite(one(1)?, one(2)?, one(3)?),
        _ => return Err(err(&format!("unknown term tag `{tag}`"))),
    })
}

fn parse_tag(v: &Value) -> Result<Tag, String> {
    let a = v.arr().ok_or_else(|| err("clause tag not an array"))?;
    let name = a
        .first()
        .and_then(Value::str)
        .ok_or_else(|| err("clause tag missing name"))?;
    Ok(match (name, a.len()) {
        ("assert", 2) => Tag::Assert {
            term: a[1].u32().ok_or_else(|| err("assert tag term"))?,
        },
        ("purify", 4) => Tag::Purify {
            term: a[1].u32().ok_or_else(|| err("purify tag term"))?,
        },
        ("tseitin", 2) => Tag::Tseitin {
            term: a[1].u32().ok_or_else(|| err("tseitin tag term"))?,
        },
        ("theory", 2) => {
            let parts = a[1]
                .arr()
                .ok_or_else(|| err("theory parts"))?
                .iter()
                .map(|p| {
                    let pa = p.arr().filter(|pa| pa.len() == 2);
                    match pa {
                        Some(pa) => Ok((
                            pa[0].u32().ok_or_else(|| err("theory part term"))?,
                            pa[1].bool().ok_or_else(|| err("theory part polarity"))?,
                        )),
                        None => Err(err("theory part shape")),
                    }
                })
                .collect::<Result<Vec<_>, _>>()?;
            Tag::Theory { parts }
        }
        ("external", 2) => Tag::External {
            parts: ids(&a[1], "external parts")?,
        },
        _ => return Err(err(&format!("unknown clause tag `{name}`"))),
    })
}

fn parse_model(v: &Value) -> Result<Model, String> {
    let mut model = Model::default();
    for (name, x) in v
        .get("ints")
        .and_then(Value::obj)
        .ok_or_else(|| err("model ints"))?
    {
        model
            .ints
            .insert(name.clone(), x.int().ok_or_else(|| err("model int value"))?);
    }
    for (name, x) in v
        .get("bools")
        .and_then(Value::obj)
        .ok_or_else(|| err("model bools"))?
    {
        model.bools.insert(
            name.clone(),
            x.bool().ok_or_else(|| err("model bool value"))?,
        );
    }
    for (name, x) in v
        .get("maps")
        .and_then(Value::obj)
        .ok_or_else(|| err("model maps"))?
    {
        let default = x
            .get("default")
            .and_then(Value::int)
            .ok_or_else(|| err("map default"))?;
        let mut entries = BTreeMap::new();
        for e in x
            .get("entries")
            .and_then(Value::arr)
            .ok_or_else(|| err("map entries"))?
        {
            let pair = signed(e, "map entry")?;
            if pair.len() != 2 {
                return Err(err("map entry shape"));
            }
            entries.insert(pair[0], pair[1]);
        }
        model.maps.insert(name.clone(), Table { default, entries });
    }
    for (name, x) in v
        .get("funcs")
        .and_then(Value::obj)
        .ok_or_else(|| err("model funcs"))?
    {
        let default = x
            .get("default")
            .and_then(Value::int)
            .ok_or_else(|| err("func default"))?;
        let mut entries = BTreeMap::new();
        for e in x
            .get("entries")
            .and_then(Value::arr)
            .ok_or_else(|| err("func entries"))?
        {
            let pair = e
                .arr()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| err("func entry"))?;
            let args = signed(&pair[0], "func entry args")?;
            let val = pair[1].int().ok_or_else(|| err("func entry value"))?;
            entries.insert(args, val);
        }
        model.funcs.insert(name.clone(), Table { default, entries });
    }
    Ok(model)
}

fn parse_proof(v: &Value) -> Result<Proof, String> {
    let mut lits = BTreeMap::new();
    for e in v
        .get("lits")
        .and_then(Value::arr)
        .ok_or_else(|| err("proof lits"))?
    {
        let pair = e
            .arr()
            .filter(|a| a.len() == 2)
            .ok_or_else(|| err("proof lit pair"))?;
        let t = pair[0].u32().ok_or_else(|| err("proof lit term"))?;
        let l = pair[1].int().ok_or_else(|| err("proof lit value"))?;
        if l == 0 {
            return Err(err("zero literal"));
        }
        if lits.insert(t, l).is_some() {
            return Err(err("duplicate proof lit term"));
        }
    }
    let mut events = Vec::new();
    for e in v
        .get("events")
        .and_then(Value::arr)
        .ok_or_else(|| err("proof events"))?
    {
        let a = e.arr().ok_or_else(|| err("proof event shape"))?;
        let kind = a
            .first()
            .and_then(Value::str)
            .ok_or_else(|| err("proof event kind"))?;
        match (kind, a.len()) {
            ("input", 3) => events.push(Event::Input {
                lits: signed(&a[1], "input clause lits")?,
                tag: parse_tag(&a[2])?,
            }),
            ("learnt", 2) => events.push(Event::Learnt {
                lits: signed(&a[1], "learnt clause lits")?,
            }),
            _ => return Err(err("unknown proof event")),
        }
    }
    let core = ids(
        v.get("core").ok_or_else(|| err("proof core missing"))?,
        "proof core",
    )?;
    Ok(Proof { lits, events, core })
}

fn parse_cert(v: &Value) -> Result<Cert, String> {
    let assumptions = ids(
        v.get("assumptions")
            .ok_or_else(|| err("cert assumptions"))?,
        "cert assumptions",
    )?;
    let asserts_upto = v
        .get("asserts_upto")
        .and_then(Value::usize)
        .ok_or_else(|| err("cert asserts_upto"))?;
    let blocking = v
        .get("blocking")
        .and_then(Value::arr)
        .ok_or_else(|| err("cert blocking"))?
        .iter()
        .map(|cl| ids(cl, "blocking clause"))
        .collect::<Result<Vec<_>, _>>()?;
    let outcome = match v
        .get("outcome")
        .and_then(Value::str)
        .ok_or_else(|| err("cert outcome"))?
    {
        "sat" => Outcome::Sat(parse_model(
            v.get("model")
                .ok_or_else(|| err("sat cert missing model"))?,
        )?),
        "unsat" => Outcome::Unsat(parse_proof(
            v.get("proof")
                .ok_or_else(|| err("unsat cert missing proof"))?,
        )?),
        "unknown" => Outcome::Unknown,
        other => return Err(err(&format!("unknown outcome `{other}`"))),
    };
    let self_checked = v
        .get("self_checked")
        .and_then(Value::bool)
        .ok_or_else(|| err("cert self_checked"))?;
    Ok(Cert {
        assumptions,
        asserts_upto,
        blocking,
        outcome,
        self_checked,
    })
}

fn parse_claim(v: &Value) -> Result<Claim, String> {
    let label = v
        .get("label")
        .and_then(Value::str)
        .ok_or_else(|| err("claim label"))?
        .to_string();
    let expect = v
        .get("expect")
        .and_then(Value::str)
        .ok_or_else(|| err("claim expect"))?
        .to_string();
    let cert = v
        .get("cert")
        .and_then(Value::usize)
        .ok_or_else(|| err("claim cert index"))?;
    let kind = match v
        .get("kind")
        .and_then(Value::str)
        .ok_or_else(|| err("claim kind"))?
    {
        "can_fail" => ClaimKind::CanFail,
        "cannot_fail" => ClaimKind::CannotFail,
        "baseline_dead" => ClaimKind::BaselineDead,
        "cube_feasible" => ClaimKind::CubeFeasible {
            cube: v
                .get("cube")
                .and_then(Value::usize)
                .ok_or_else(|| err("cube index"))?,
            lits: signed(v.get("lits").ok_or_else(|| err("cube lits"))?, "cube lits")?,
        },
        "cover_exhausted" => ClaimKind::CoverExhausted,
        "spec_fails" => ClaimKind::SpecFails,
        "spec_holds" => ClaimKind::SpecHolds,
        other => return Err(err(&format!("unknown claim kind `{other}`"))),
    };
    Ok(Claim {
        label,
        kind,
        expect,
        cert,
    })
}

fn parse_evidence(v: &Value) -> Result<StepEvidence, String> {
    match v
        .get("kind")
        .and_then(Value::str)
        .ok_or_else(|| err("step evidence kind"))?
    {
        "inconsistent" => Ok(StepEvidence::Inconsistent {
            cert: v
                .get("cert")
                .and_then(Value::usize)
                .ok_or_else(|| err("evidence cert"))?,
        }),
        "dead_loc" => Ok(StepEvidence::DeadLoc {
            cert: v
                .get("cert")
                .and_then(Value::usize)
                .ok_or_else(|| err("evidence cert"))?,
        }),
        "path" => Ok(StepEvidence::Path),
        "dominated" => Ok(StepEvidence::Dominated {
            base: ids(
                v.get("base").ok_or_else(|| err("dominated base"))?,
                "dominated base",
            )?,
            evidence: Box::new(parse_evidence(
                v.get("evidence").ok_or_else(|| err("dominated evidence"))?,
            )?),
        }),
        other => Err(err(&format!("unknown evidence kind `{other}`"))),
    }
}

fn parse_chain(v: &Value) -> Result<Chain, String> {
    let label = v
        .get("label")
        .and_then(Value::str)
        .ok_or_else(|| err("chain label"))?
        .to_string();
    let spec = ids(
        v.get("spec").ok_or_else(|| err("chain spec"))?,
        "chain spec",
    )?;
    let steps = v
        .get("steps")
        .and_then(Value::arr)
        .ok_or_else(|| err("chain steps"))?
        .iter()
        .map(|s| {
            Ok(Step {
                subset: ids(
                    s.get("subset").ok_or_else(|| err("step subset"))?,
                    "step subset",
                )?,
                removed: s
                    .get("removed")
                    .and_then(Value::u32)
                    .ok_or_else(|| err("step removed"))?,
                evidence: parse_evidence(s.get("evidence").ok_or_else(|| err("step evidence"))?)?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(Chain { label, spec, steps })
}

fn parse_proc(v: &Value) -> Result<Proc, String> {
    let proc_name = v
        .get("proc_name")
        .and_then(Value::str)
        .ok_or_else(|| err("proc_name"))?
        .to_string();
    let mut terms = BTreeMap::new();
    for (id, t) in v
        .get("terms")
        .and_then(Value::obj)
        .ok_or_else(|| err("proc terms"))?
    {
        let id: u32 = id.parse().map_err(|_| err("term id key"))?;
        terms.insert(id, node(t)?);
    }
    let asserts = ids(
        v.get("asserts").ok_or_else(|| err("proc asserts"))?,
        "proc asserts",
    )?;
    let certs = v
        .get("certs")
        .and_then(Value::arr)
        .ok_or_else(|| err("proc certs"))?
        .iter()
        .map(parse_cert)
        .collect::<Result<Vec<_>, _>>()?;
    let claims = v
        .get("claims")
        .and_then(Value::arr)
        .ok_or_else(|| err("proc claims"))?
        .iter()
        .map(parse_claim)
        .collect::<Result<Vec<_>, _>>()?;
    let chains = v
        .get("chains")
        .and_then(Value::arr)
        .ok_or_else(|| err("proc chains"))?
        .iter()
        .map(parse_chain)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Proc {
        proc_name,
        terms,
        asserts,
        certs,
        claims,
        chains,
    })
}

/// Parses a certificate sidecar document from JSON text.
pub fn parse_certs_doc(text: &str) -> Result<CertsDoc, String> {
    let v = crate::json::parse(text)?;
    let schema_version = v
        .get("schema_version")
        .and_then(Value::int)
        .ok_or_else(|| err("schema_version"))?;
    if schema_version != SUPPORTED_SCHEMA_VERSION {
        return Err(format!(
            "unsupported schema_version {schema_version} (checker supports {SUPPORTED_SCHEMA_VERSION})"
        ));
    }
    let procs = v
        .get("procs")
        .and_then(Value::arr)
        .ok_or_else(|| err("procs"))?
        .iter()
        .map(parse_proc)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(CertsDoc {
        schema_version,
        procs,
    })
}
