//! Content-addressed procedure fingerprints: the cache key of the
//! persistent result store (DESIGN.md §4.9).
//!
//! A procedure's analysis result depends on exactly two things: its own
//! *desugared* body (which already inlines the contracts of directly
//! called procedures — §2.1 replaces each call with
//! `assert pre; havoc; assume post`) and the contracts of every
//! procedure reachable from it through the call graph (an edit to a
//! transitive callee's contract changes what the direct callee's
//! inferred/declared contract *means*, and the interprocedural
//! inference pass propagates it). The fingerprint is a SHA-256 over a
//! canonical rendering of both.
//!
//! Deliberate stability properties (pinned by
//! `tests/fingerprint_stability.rs`):
//!
//! * renaming or editing an *unrelated* procedure changes nothing;
//! * reordering procedure definitions changes nothing (assert ids are
//!   textual within the procedure; callee contracts are sorted by
//!   name);
//! * editing a body the procedure never calls changes nothing;
//! * editing the contract of *any* transitive callee changes the
//!   fingerprint (direct callees also via the desugared body).

use std::collections::BTreeSet;
use std::fmt::Write as _;

use acspec_ir::desugar::{desugar_procedure, DesugarOptions};
use acspec_ir::program::{Contract, Procedure, Program};
use acspec_store::sha256_hex;

use crate::driver::AcspecError;
use crate::interproc::callees_of;

/// Every procedure reachable from `proc` through call edges (excluding
/// `proc` itself unless it is on a cycle through itself), in name order.
fn transitive_callees<'p>(program: &'p Program, proc: &Procedure) -> Vec<&'p Procedure> {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut frontier: BTreeSet<String> = BTreeSet::new();
    if let Some(body) = &proc.body {
        callees_of(body, &mut frontier);
    }
    while let Some(name) = frontier.pop_first() {
        if !seen.insert(name.clone()) {
            continue;
        }
        if let Some(callee) = program.procedures.iter().find(|p| p.name == name) {
            if let Some(body) = &callee.body {
                callees_of(body, &mut frontier);
            }
        }
    }
    // BTreeSet iteration gives name order; resolve to declarations
    // (unknown callees simply contribute their name with no contract —
    // desugaring the caller will fail long before the store matters).
    seen.iter()
        .filter_map(|n| program.procedures.iter().find(|p| &p.name == n))
        .collect()
}

fn push_contract(out: &mut String, c: &Contract) {
    let _ = write!(
        out,
        "requires {};ensures {};modifies {}",
        c.requires,
        c.ensures,
        c.modifies.join(",")
    );
}

/// Computes the canonical fingerprint text for `proc` (exposed for the
/// stability tests; [`procedure_fingerprint`] hashes it).
///
/// # Errors
///
/// Returns the desugaring error for malformed procedures (unknown
/// callee, arity mismatch, external body) — such procedures are never
/// cached; the analysis session reports the real error.
pub fn fingerprint_text(program: &Program, proc: &Procedure) -> Result<String, AcspecError> {
    let d = desugar_procedure(program, proc, DesugarOptions::default())?;
    let mut out = String::new();
    let _ = writeln!(out, "acspec-fingerprint v1");
    let _ = writeln!(out, "proc {}", d.name);
    let _ = writeln!(out, "body {}", d.body);
    let _ = write!(out, "asserts ");
    for a in &d.asserts {
        let _ = write!(out, "{}:{};", a.id, a.tag);
    }
    let _ = writeln!(out);
    let _ = write!(out, "vars ");
    for (name, sort) in &d.vars {
        let _ = write!(out, "{name}:{sort},");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "inputs {}", d.inputs.join(","));
    let _ = write!(out, "nus ");
    for (nu, sort) in &d.nus {
        let _ = write!(out, "{nu}:{sort},");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "call_sites {}", d.call_sites);
    let _ = write!(out, "contract ");
    push_contract(&mut out, &proc.contract);
    let _ = writeln!(out);
    for callee in transitive_callees(program, proc) {
        let _ = write!(out, "callee {} ", callee.name);
        push_contract(&mut out, &callee.contract);
        let _ = writeln!(out);
    }
    Ok(out)
}

/// The content-addressed fingerprint of `proc`: 64 hex characters of
/// SHA-256 over [`fingerprint_text`].
///
/// # Errors
///
/// Propagates [`fingerprint_text`]'s desugaring error.
pub fn procedure_fingerprint(program: &Program, proc: &Procedure) -> Result<String, AcspecError> {
    Ok(sha256_hex(fingerprint_text(program, proc)?.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use acspec_ir::parse::parse_program;

    #[test]
    fn transitive_contract_edits_change_the_print() {
        let base = "
            procedure leaf(x: int) requires x > 0; { assert x > 0; }
            procedure mid(y: int) { call leaf(y); }
            procedure top(z: int) { call mid(z); }";
        let edited = "
            procedure leaf(x: int) requires x > 1; { assert x > 0; }
            procedure mid(y: int) { call leaf(y); }
            procedure top(z: int) { call mid(z); }";
        let a = parse_program(base).expect("parses");
        let b = parse_program(edited).expect("parses");
        let top_a = a.procedures.iter().find(|p| p.name == "top").unwrap();
        let top_b = b.procedures.iter().find(|p| p.name == "top").unwrap();
        // `leaf` is two hops from `top`: its contract must still matter.
        assert_ne!(
            procedure_fingerprint(&a, top_a).unwrap(),
            procedure_fingerprint(&b, top_b).unwrap()
        );
    }

    #[test]
    fn fingerprint_is_a_hex_digest() {
        let p = parse_program("procedure f(x: int) { assert x != 0; }").expect("parses");
        let fp = procedure_fingerprint(&p, &p.procedures[0]).unwrap();
        assert_eq!(fp.len(), 64);
        assert!(fp.bytes().all(|b| b.is_ascii_hexdigit()));
    }
}
