//! The certificate sidecar: per-claim evidence threaded up from the
//! query engine (`--certs-out`).
//!
//! Every verdict the report surfaces is recorded here as a [`Claim`]
//! pointing into the procedure's shared
//! [`CertStore`](acspec_vcgen::CertStore): a `can_fail` warning claim
//! expects a `Sat` certificate carrying a full model, a `cannot_fail` /
//! `baseline_dead` / `cover_exhausted` claim expects an `Unsat`
//! certificate carrying a replayable proof, and each Algorithm 2
//! weakening chain is recorded step by step with the dead-verdict
//! evidence grounding it ([`ChainRecord`]). The sidecar is written as a
//! self-contained schema-versioned JSON document that the independent
//! `acspec-check` crate re-validates without sharing any code with this
//! engine.
//!
//! The JSON writer here is hand-rolled (not serde): the document format
//! is the contract with the independent checker, so the emission is kept
//! explicit and deterministic (every map is ordered, every enum has a
//! stable tag) rather than derived.

use std::fmt::Write as _;

use acspec_ir::locs::LocId;
use acspec_ir::stmt::AssertId;
use acspec_vcgen::{CertEvent, CertOutcome, CertStore, CertTag, QueryCert, TermNode};

use crate::report::REPORT_SCHEMA_VERSION;

/// What a claim asserts about the program, keyed to the report field it
/// backs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClaimKind {
    /// The assertion can fail under the active environment (a warning):
    /// expects `Sat` with a failure model.
    CanFail {
        /// The failing assertion.
        assert: AssertId,
        /// Its provenance tag.
        tag: String,
    },
    /// The assertion cannot fail: expects `Unsat` with a proof.
    CannotFail {
        /// The suppressed assertion.
        assert: AssertId,
        /// Its provenance tag.
        tag: String,
    },
    /// The location is dead under the demonic environment (`Dead(true)`
    /// baseline): expects `Unsat`.
    BaselineDead {
        /// The dead location.
        loc: LocId,
    },
    /// An ALL-SAT cover cube is feasible: expects `Sat`.
    CubeFeasible {
        /// Cube index (= cover clause index).
        cube: usize,
        /// The cube as signed indicator term ids (`+t` = predicate
        /// true, `-t` = false), for the checker's disjointness pass.
        lits: Vec<i64>,
    },
    /// The ALL-SAT enumeration is exhausted — the blocking clauses cover
    /// every failing cube: expects `Unsat` under the certificate's
    /// blocking clauses.
    CoverExhausted,
    /// The assertion fails under an almost-correct specification (a
    /// high-confidence warning): expects `Sat`.
    SpecFails {
        /// The rendered specification.
        spec: String,
        /// The warned assertion.
        assert: AssertId,
        /// Its provenance tag.
        tag: String,
    },
    /// The assertion is verified under an almost-correct specification:
    /// expects `Unsat`.
    SpecHolds {
        /// The rendered specification.
        spec: String,
        /// The verified assertion.
        assert: AssertId,
        /// Its provenance tag.
        tag: String,
    },
}

impl ClaimKind {
    /// Stable lowercase kind name (the JSON `kind` field).
    pub fn name(&self) -> &'static str {
        match self {
            ClaimKind::CanFail { .. } => "can_fail",
            ClaimKind::CannotFail { .. } => "cannot_fail",
            ClaimKind::BaselineDead { .. } => "baseline_dead",
            ClaimKind::CubeFeasible { .. } => "cube_feasible",
            ClaimKind::CoverExhausted => "cover_exhausted",
            ClaimKind::SpecFails { .. } => "spec_fails",
            ClaimKind::SpecHolds { .. } => "spec_holds",
        }
    }

    /// The verdict this claim's certificate must carry.
    pub fn expect(&self) -> &'static str {
        match self {
            ClaimKind::CanFail { .. }
            | ClaimKind::CubeFeasible { .. }
            | ClaimKind::SpecFails { .. } => "sat",
            ClaimKind::CannotFail { .. }
            | ClaimKind::BaselineDead { .. }
            | ClaimKind::CoverExhausted
            | ClaimKind::SpecHolds { .. } => "unsat",
        }
    }
}

/// One verdict surfaced by a report, with its backing certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Claim {
    /// The report the claim backs (`Cons`, a configuration name, or
    /// `shared` for the screen).
    pub label: String,
    /// What is claimed.
    pub kind: ClaimKind,
    /// Index into the procedure store's certificates.
    pub cert: usize,
}

/// Evidence grounding one weakening-chain step's dead verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepEvidence {
    /// The subset's conjunction is unsatisfiable over the inputs.
    Inconsistent {
        /// Certificate (expects `Unsat`).
        cert: usize,
    },
    /// A tracked location became unreachable.
    DeadLoc {
        /// The dead location.
        loc: LocId,
        /// Certificate for `reach(loc)` (expects `Unsat`).
        cert: usize,
    },
    /// A baseline path profile disappeared (path metric): structural
    /// evidence only, no per-location certificate.
    Path,
    /// Superset of `base`, itself directly dead (§2.3 monotonicity).
    Dominated {
        /// The dominating (smaller) dead subset.
        base: Vec<u32>,
        /// `base`'s own direct evidence.
        evidence: Box<StepEvidence>,
    },
}

/// One step of a certified weakening chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainStepRecord {
    /// The dead subset this step weakened (sorted clause indices).
    pub subset: Vec<u32>,
    /// The clause removed.
    pub removed: u32,
    /// Why `subset` was dead.
    pub evidence: StepEvidence,
}

/// A certified Algorithm 2 weakening chain, from the full cover down to
/// one output specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainRecord {
    /// The configuration the chain belongs to.
    pub label: String,
    /// The output spec (sorted clause indices into the cover).
    pub spec: Vec<u32>,
    /// The steps, root-to-spec. Empty when the chain could not be
    /// grounded (a `fail = 0` fidelity push has no dead verdict).
    pub steps: Vec<ChainStepRecord>,
}

/// Everything one procedure's session certified: the shared store plus
/// the claims and chains referencing it.
#[derive(Debug, Clone, Default)]
pub struct ProcCerts {
    /// Procedure name.
    pub proc_name: String,
    /// The term table, assert stream, and certificates.
    pub store: CertStore,
    /// Report-level claims.
    pub claims: Vec<Claim>,
    /// Certified weakening chains.
    pub chains: Vec<ChainRecord>,
}

impl ProcCerts {
    /// True when nothing was certified (store untouched).
    pub fn is_empty(&self) -> bool {
        self.store.certs.is_empty() && self.claims.is_empty() && self.chains.is_empty()
    }
}

// ---------------------------------------------------------------------
// JSON emission
// ---------------------------------------------------------------------

pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn join<T, F: FnMut(&T) -> String>(items: &[T], f: F) -> String {
    items.iter().map(f).collect::<Vec<_>>().join(",")
}

fn term_json(node: &TermNode) -> String {
    let ids = |ps: &[u32]| join(ps, u32::to_string);
    match node {
        TermNode::True => "[\"true\"]".into(),
        TermNode::False => "[\"false\"]".into(),
        TermNode::BoolVar(n) => format!("[\"bool_var\",\"{}\"]", esc(n)),
        TermNode::Not(a) => format!("[\"not\",{a}]"),
        TermNode::And(ps) => format!("[\"and\",[{}]]", ids(ps)),
        TermNode::Or(ps) => format!("[\"or\",[{}]]", ids(ps)),
        TermNode::Implies(a, b) => format!("[\"implies\",{a},{b}]"),
        TermNode::Iff(a, b) => format!("[\"iff\",{a},{b}]"),
        TermNode::Eq(a, b) => format!("[\"eq\",{a},{b}]"),
        TermNode::Le(a, b) => format!("[\"le\",{a},{b}]"),
        TermNode::Lt(a, b) => format!("[\"lt\",{a},{b}]"),
        TermNode::IntVar(n) => format!("[\"int_var\",\"{}\"]", esc(n)),
        TermNode::IntConst(c) => format!("[\"int_const\",{c}]"),
        TermNode::Add(ps) => format!("[\"add\",[{}]]", ids(ps)),
        TermNode::MulC(c, a) => format!("[\"mulc\",{c},{a}]"),
        TermNode::App(f, ps) => format!("[\"app\",\"{}\",[{}]]", esc(f), ids(ps)),
        TermNode::Read(m, i) => format!("[\"read\",{m},{i}]"),
        TermNode::Write(m, i, v) => format!("[\"write\",{m},{i},{v}]"),
        TermNode::MapVar(n) => format!("[\"map_var\",\"{}\"]", esc(n)),
        TermNode::Ite(c, a, b) => format!("[\"ite\",{c},{a},{b}]"),
    }
}

fn tag_json(tag: &CertTag) -> String {
    match tag {
        CertTag::Assert { term } => format!("[\"assert\",{term}]"),
        CertTag::Purify { term, ite, var } => format!("[\"purify\",{term},{ite},{var}]"),
        CertTag::Tseitin { term } => format!("[\"tseitin\",{term}]"),
        CertTag::Theory { parts } => format!(
            "[\"theory\",[{}]]",
            join(parts, |(t, p)| format!("[{t},{p}]"))
        ),
        CertTag::External { parts } => {
            format!("[\"external\",[{}]]", join(parts, u32::to_string))
        }
    }
}

fn cert_json(cert: &QueryCert) -> String {
    let mut s = String::from("{");
    let _ = write!(
        s,
        "\"assumptions\":[{}],\"asserts_upto\":{},\"blocking\":[{}]",
        join(&cert.assumptions, u32::to_string),
        cert.asserts_upto,
        join(&cert.blocking, |cl| format!(
            "[{}]",
            join(cl, u32::to_string)
        )),
    );
    let _ = write!(s, ",\"outcome\":\"{}\"", cert.outcome.name());
    match &cert.outcome {
        CertOutcome::Sat(model) => {
            let ints = model
                .ints
                .iter()
                .map(|(n, v)| format!("\"{}\":{v}", esc(n)))
                .collect::<Vec<_>>()
                .join(",");
            let bools = model
                .bools
                .iter()
                .map(|(n, v)| format!("\"{}\":{v}", esc(n)))
                .collect::<Vec<_>>()
                .join(",");
            let maps = model
                .maps
                .iter()
                .map(|(n, mv)| {
                    format!(
                        "\"{}\":{{\"default\":{},\"entries\":[{}]}}",
                        esc(n),
                        mv.default,
                        mv.entries
                            .iter()
                            .map(|(k, v)| format!("[{k},{v}]"))
                            .collect::<Vec<_>>()
                            .join(",")
                    )
                })
                .collect::<Vec<_>>()
                .join(",");
            let funcs = model
                .funcs
                .iter()
                .map(|(n, fv)| {
                    format!(
                        "\"{}\":{{\"default\":{},\"entries\":[{}]}}",
                        esc(n),
                        fv.default,
                        fv.entries
                            .iter()
                            .map(|(args, v)| format!("[[{}],{v}]", join(args, i64::to_string)))
                            .collect::<Vec<_>>()
                            .join(",")
                    )
                })
                .collect::<Vec<_>>()
                .join(",");
            let _ = write!(
                s,
                ",\"model\":{{\"ints\":{{{ints}}},\"bools\":{{{bools}}},\"maps\":{{{maps}}},\"funcs\":{{{funcs}}}}}"
            );
        }
        CertOutcome::Unsat(proof) => {
            let lits = proof
                .lits
                .iter()
                .map(|(t, l)| format!("[{t},{l}]"))
                .collect::<Vec<_>>()
                .join(",");
            let events = join(&proof.events, |e| match e {
                CertEvent::Input { lits, tag } => format!(
                    "[\"input\",[{}],{}]",
                    join(lits, i64::to_string),
                    tag_json(tag)
                ),
                CertEvent::Learnt { lits } => {
                    format!("[\"learnt\",[{}]]", join(lits, i64::to_string))
                }
            });
            let _ = write!(
                s,
                ",\"proof\":{{\"lits\":[{lits}],\"events\":[{events}],\"core\":[{}]}}",
                join(&proof.core, u32::to_string)
            );
        }
        CertOutcome::Unknown => {}
    }
    let _ = write!(s, ",\"self_checked\":{}}}", cert.self_checked);
    s
}

fn claim_json(claim: &Claim) -> String {
    let mut s = format!(
        "{{\"label\":\"{}\",\"kind\":\"{}\",\"expect\":\"{}\"",
        esc(&claim.label),
        claim.kind.name(),
        claim.kind.expect()
    );
    match &claim.kind {
        ClaimKind::CanFail { assert, tag } | ClaimKind::CannotFail { assert, tag } => {
            let _ = write!(s, ",\"assert\":\"{assert}\",\"tag\":\"{}\"", esc(tag));
        }
        ClaimKind::BaselineDead { loc } => {
            let _ = write!(s, ",\"loc\":{}", loc.0);
        }
        ClaimKind::CubeFeasible { cube, lits } => {
            let _ = write!(
                s,
                ",\"cube\":{cube},\"lits\":[{}]",
                join(lits, i64::to_string)
            );
        }
        ClaimKind::CoverExhausted => {}
        ClaimKind::SpecFails { spec, assert, tag } | ClaimKind::SpecHolds { spec, assert, tag } => {
            let _ = write!(
                s,
                ",\"spec\":\"{}\",\"assert\":\"{assert}\",\"tag\":\"{}\"",
                esc(spec),
                esc(tag)
            );
        }
    }
    let _ = write!(s, ",\"cert\":{}}}", claim.cert);
    s
}

fn evidence_json(ev: &StepEvidence) -> String {
    match ev {
        StepEvidence::Inconsistent { cert } => {
            format!("{{\"kind\":\"inconsistent\",\"cert\":{cert}}}")
        }
        StepEvidence::DeadLoc { loc, cert } => {
            format!(
                "{{\"kind\":\"dead_loc\",\"loc\":{},\"cert\":{cert}}}",
                loc.0
            )
        }
        StepEvidence::Path => "{\"kind\":\"path\"}".into(),
        StepEvidence::Dominated { base, evidence } => format!(
            "{{\"kind\":\"dominated\",\"base\":[{}],\"evidence\":{}}}",
            join(base, u32::to_string),
            evidence_json(evidence)
        ),
    }
}

fn chain_json(chain: &ChainRecord) -> String {
    format!(
        "{{\"label\":\"{}\",\"spec\":[{}],\"steps\":[{}]}}",
        esc(&chain.label),
        join(&chain.spec, u32::to_string),
        join(&chain.steps, |st| format!(
            "{{\"subset\":[{}],\"removed\":{},\"evidence\":{}}}",
            join(&st.subset, u32::to_string),
            st.removed,
            evidence_json(&st.evidence)
        ))
    )
}

/// Renders one procedure's sidecar fragment (an element of the
/// document's `procs` array). Public because the persistent result
/// store saves exactly this string per procedure: a warm run reassembles
/// the sidecar from stored fragments with
/// [`certs_json_from_fragments`], making warm sidecars byte-identical
/// to cold ones *by construction* rather than by re-serialization.
pub fn proc_certs_json(pc: &ProcCerts) -> String {
    proc_json(pc)
}

/// Assembles a sidecar document from pre-rendered per-procedure
/// fragments (see [`proc_certs_json`]). Uses the same format string as
/// [`certs_json`], so mixing cold fragments and store-loaded fragments
/// yields the same bytes as an all-cold run.
pub fn certs_json_from_fragments(fragments: &[String]) -> String {
    format!(
        "{{\"schema_version\":{REPORT_SCHEMA_VERSION},\"procs\":[{}]}}\n",
        fragments.join(",")
    )
}

fn proc_json(pc: &ProcCerts) -> String {
    let terms = pc
        .store
        .terms
        .iter()
        .map(|(id, node)| format!("\"{id}\":{}", term_json(node)))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"proc_name\":\"{}\",\"terms\":{{{terms}}},\"asserts\":[{}],\"certs\":[{}],\"claims\":[{}],\"chains\":[{}]}}",
        esc(&pc.proc_name),
        join(&pc.store.asserts, u32::to_string),
        join(&pc.store.certs, cert_json),
        join(&pc.claims, claim_json),
        join(&pc.chains, chain_json),
    )
}

/// Renders the certificate sidecar document (the `--certs-out` payload):
/// schema-versioned, one entry per certified procedure.
pub fn certs_json(procs: &[ProcCerts]) -> String {
    format!(
        "{{\"schema_version\":{REPORT_SCHEMA_VERSION},\"procs\":[{}]}}\n",
        join(procs, proc_json)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_kinds_pair_names_with_expectations() {
        let k = ClaimKind::CanFail {
            assert: AssertId(3),
            tag: "deref".into(),
        };
        assert_eq!(k.name(), "can_fail");
        assert_eq!(k.expect(), "sat");
        assert_eq!(ClaimKind::CoverExhausted.expect(), "unsat");
        assert_eq!(ClaimKind::BaselineDead { loc: LocId(1) }.expect(), "unsat");
    }

    #[test]
    fn sidecar_document_is_schema_versioned_json() {
        let doc = certs_json(&[ProcCerts {
            proc_name: "f".into(),
            ..ProcCerts::default()
        }]);
        assert!(doc.starts_with(&format!("{{\"schema_version\":{REPORT_SCHEMA_VERSION}")));
        assert!(doc.contains("\"proc_name\":\"f\""));
        // Parseable by the vendored serde_json (sanity only — the real
        // consumer is the independent acspec-check parser).
        let v: serde_json::Value = serde_json::from_str(&doc).expect("valid JSON");
        assert_eq!(v["procs"][0]["claims"].as_array().map(Vec::len), Some(0));
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn fragment_assembly_matches_direct_emission() {
        let procs = vec![
            ProcCerts {
                proc_name: "f".into(),
                ..ProcCerts::default()
            },
            ProcCerts {
                proc_name: "g".into(),
                ..ProcCerts::default()
            },
        ];
        let fragments: Vec<String> = procs.iter().map(proc_certs_json).collect();
        assert_eq!(certs_json_from_fragments(&fragments), certs_json(&procs));
    }
}
