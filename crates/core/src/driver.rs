//! Thin one-shot entry points over the staged session layer
//! ([`crate::session`]): the end-to-end ACSpec pipeline
//! (`FindAbstractSIBs`, Algorithm 1) and the conservative-verifier
//! baseline (`Cons`).
//!
//! Each function builds a [`ProcSession`] (one desugar, one encode) and
//! runs the requested slice of it. Callers analyzing one procedure
//! under several configurations should hold a session directly — or use
//! [`crate::session::ProgramAnalysis`] for whole programs — so the
//! encode and the demonic screen are shared instead of repeated.

use acspec_ir::desugar::DesugarError;
use acspec_ir::program::{Procedure, Program};
use acspec_vcgen::analyzer::AnalyzerConfig;
use acspec_vcgen::translate::TranslateError;

use crate::config::AcspecOptions;
use crate::report::ProcReport;
use crate::session::ProcSession;

/// Errors that abort an analysis (as opposed to timeouts, which are
/// reported inside [`ProcReport`]).
#[derive(Debug)]
pub enum AcspecError {
    /// Desugaring failed (unknown callee, arity, …).
    Desugar(DesugarError),
    /// Encoding failed (unbound names — a front-end bug).
    Translate(TranslateError),
}

impl std::fmt::Display for AcspecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AcspecError::Desugar(e) => write!(f, "desugaring failed: {e}"),
            AcspecError::Translate(e) => write!(f, "encoding failed: {e}"),
        }
    }
}

impl std::error::Error for AcspecError {}

impl From<DesugarError> for AcspecError {
    fn from(e: DesugarError) -> Self {
        AcspecError::Desugar(e)
    }
}

impl From<TranslateError> for AcspecError {
    fn from(e: TranslateError) -> Self {
        AcspecError::Translate(e)
    }
}

/// Runs the full ACSpec analysis (`FindAbstractSIBs`, Algorithm 1) on one
/// procedure: desugar → encode → mine `Q` → predicate cover → Algorithm 2
/// → `Normalize`/`PruneClauses` → collect warnings.
///
/// # Errors
///
/// Returns [`AcspecError`] for malformed inputs; analysis-budget
/// exhaustion is reported via [`ProcReport::outcome`] instead (the
/// paper's "TO" column), with the interrupted stage in
/// [`ProcReport::timeout_stage`].
pub fn analyze_procedure(
    program: &Program,
    proc: &Procedure,
    opts: &AcspecOptions,
) -> Result<ProcReport, AcspecError> {
    let reports = analyze_procedure_multi(program, proc, opts, &[opts.prune])?;
    Ok(reports.into_iter().next().expect("one variant requested"))
}

/// Like [`analyze_procedure`], but evaluates several `PruneClauses`
/// configurations against a *single* run of the expensive pipeline
/// (encoding, cover, Algorithm 2). Returns one report per variant, in
/// order. Used by the evaluation harness for Figure 6's `k = ∞,3,2,1`
/// columns.
///
/// # Errors
///
/// Returns [`AcspecError`] for malformed inputs.
pub fn analyze_procedure_multi(
    program: &Program,
    proc: &Procedure,
    opts: &AcspecOptions,
    prune_variants: &[acspec_predabs::normalize::PruneConfig],
) -> Result<Vec<ProcReport>, AcspecError> {
    let mut session = ProcSession::new(program, proc, opts.analyzer)?;
    Ok(session.run_config(opts, prune_variants))
}

/// The conservative verifier baseline (`Cons`, BOOGIE in the paper):
/// every assertion that can fail under the demonic (unconstrained)
/// environment, labeled [`crate::report::ReportLabel::Cons`].
///
/// # Errors
///
/// Returns [`AcspecError`] for malformed inputs. A budget timeout is
/// reported as `outcome = TimedOut` with empty warnings.
pub fn cons_baseline(
    program: &Program,
    proc: &Procedure,
    analyzer: AnalyzerConfig,
) -> Result<ProcReport, AcspecError> {
    let mut session = ProcSession::new(program, proc, analyzer)?;
    Ok(session.cons())
}
