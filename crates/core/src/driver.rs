//! The end-to-end ACSpec pipeline (`FindAbstractSIBs`, Algorithm 1) and
//! the conservative-verifier baseline (`Cons`).

use std::collections::BTreeSet;
use std::time::Instant;

use acspec_ir::desugar::{desugar_procedure, DesugarError, DesugarOptions};
use acspec_ir::expr::Formula;
use acspec_ir::program::{Procedure, Program};
use acspec_ir::stmt::AssertId;
use acspec_predabs::clause::{clauses_to_formula, QClause};
use acspec_predabs::cover::{predicate_cover_capped, Cover};
use acspec_predabs::mine::mine_predicates;
use acspec_predabs::normalize::{normalize, prune_clauses};
use acspec_smt::TermId;
use acspec_vcgen::analyzer::{AnalyzerConfig, ProcAnalyzer, Selector};
use acspec_vcgen::translate::TranslateError;

use crate::config::{AcspecOptions, DeadMetric};
use crate::report::{AnalysisOutcome, ProcReport, ProcStats, SibStatus, Warning};
use crate::search::{find_almost_correct_specs_with, DeadCheck};

/// Errors that abort an analysis (as opposed to timeouts, which are
/// reported inside [`ProcReport`]).
#[derive(Debug)]
pub enum AcspecError {
    /// Desugaring failed (unknown callee, arity, …).
    Desugar(DesugarError),
    /// Encoding failed (unbound names — a front-end bug).
    Translate(TranslateError),
}

impl std::fmt::Display for AcspecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AcspecError::Desugar(e) => write!(f, "desugaring failed: {e}"),
            AcspecError::Translate(e) => write!(f, "encoding failed: {e}"),
        }
    }
}

impl std::error::Error for AcspecError {}

impl From<DesugarError> for AcspecError {
    fn from(e: DesugarError) -> Self {
        AcspecError::Desugar(e)
    }
}

impl From<TranslateError> for AcspecError {
    fn from(e: TranslateError) -> Self {
        AcspecError::Translate(e)
    }
}

/// Installs a selector for an arbitrary clause set over the cover's
/// indicator terms.
fn install_clause_set_selector(
    az: &mut ProcAnalyzer,
    cover: &Cover,
    clauses: &[QClause],
) -> Selector {
    let mut conj: Vec<TermId> = Vec::with_capacity(clauses.len());
    for c in clauses {
        let parts: Vec<TermId> = c
            .lits()
            .iter()
            .map(|l| {
                let b = cover.indicators[l.pred];
                if l.positive {
                    b
                } else {
                    az.ctx.mk_not(b)
                }
            })
            .collect();
        conj.push(az.ctx.mk_or(parts));
    }
    let body = az.ctx.mk_and(conj);
    az.add_selector_term(body)
}

/// Computes the *strongest* clause set with the same consistent input
/// states as `clauses` by enumerating the specification's
/// theory-satisfiable cubes and negating the complement, then Boolean
/// normalizing.
///
/// The maximal-clause cover omits clauses for theory-inconsistent cubes
/// (ALL-SAT never produces them), which leaves weaker-looking Boolean
/// forms than the paper's displayed specifications (e.g. Figure 1's
/// `!Freed[c] && !Freed[buf] && c != buf`); this pass recovers the
/// paper's form. Returns `None` (caller falls back to syntactic
/// normalization) when `|Q|` is too large for cube enumeration.
fn semantic_normal_form(
    az: &mut ProcAnalyzer,
    cover: &Cover,
    clauses: &[QClause],
    normalize_cap: usize,
) -> Option<Vec<QClause>> {
    use acspec_predabs::clause::QLit;
    let nq = cover.preds.len();
    if nq == 0 || nq > 10 {
        return None;
    }
    let sel = install_clause_set_selector(az, cover, clauses);
    let session = az.ctx.fresh_bool_var("semnf");
    let not_session = az.ctx.mk_not(session);
    let mut models: std::collections::HashSet<u32> = std::collections::HashSet::new();
    loop {
        match az.is_consistent(&[sel], &[session]) {
            Ok(true) => {}
            Ok(false) => break,
            Err(_) => return None,
        }
        let mut mask = 0u32;
        let mut blocking: Vec<TermId> = vec![not_session];
        for (i, &b) in cover.indicators.iter().enumerate() {
            let v = az.model_bool(b).unwrap_or(false);
            if v {
                mask |= 1 << i;
            }
            blocking.push(if v { az.ctx.mk_not(b) } else { b });
        }
        az.add_clause(&blocking);
        models.insert(mask);
        if models.len() > 256 {
            return None;
        }
    }
    // Strongest equivalent: forbid every cube that is not a consistent
    // model of the specification.
    let mut out = Vec::new();
    for mask in 0..(1u32 << nq) {
        if models.contains(&mask) {
            continue;
        }
        let lits: Vec<QLit> = (0..nq)
            .map(|i| QLit {
                pred: i,
                positive: mask & (1 << i) == 0,
            })
            .collect();
        out.push(QClause::new(lits));
    }
    Some(normalize(&out, normalize_cap))
}

/// Renders a witness environment as `name = value` pairs.
fn render_witness(w: &std::collections::BTreeMap<String, i64>) -> String {
    w.iter()
        .map(|(k, v)| format!("{k} = {v}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Runs the full ACSpec analysis (`FindAbstractSIBs`, Algorithm 1) on one
/// procedure: desugar → encode → mine `Q` → predicate cover → Algorithm 2
/// → `Normalize`/`PruneClauses` → collect warnings.
///
/// # Errors
///
/// Returns [`AcspecError`] for malformed inputs; analysis-budget
/// exhaustion is reported via [`ProcReport::outcome`] instead (the
/// paper's "TO" column).
pub fn analyze_procedure(
    program: &Program,
    proc: &Procedure,
    opts: &AcspecOptions,
) -> Result<ProcReport, AcspecError> {
    let reports = analyze_procedure_multi(program, proc, opts, &[opts.prune])?;
    Ok(reports.into_iter().next().expect("one variant requested"))
}

/// Like [`analyze_procedure`], but evaluates several `PruneClauses`
/// configurations against a *single* run of the expensive pipeline
/// (encoding, cover, Algorithm 2). Returns one report per variant, in
/// order. Used by the evaluation harness for Figure 6's `k = ∞,3,2,1`
/// columns.
///
/// # Errors
///
/// Returns [`AcspecError`] for malformed inputs.
pub fn analyze_procedure_multi(
    program: &Program,
    proc: &Procedure,
    opts: &AcspecOptions,
    prune_variants: &[acspec_predabs::normalize::PruneConfig],
) -> Result<Vec<ProcReport>, AcspecError> {
    let start = Instant::now();
    let d = desugar_procedure(program, proc, DesugarOptions::default())?;
    let mut az = ProcAnalyzer::new(&d, opts.analyzer)?;
    let tag_of = |id: AssertId| -> String {
        d.asserts
            .get(id.0 as usize)
            .map(|m| m.tag.clone())
            .unwrap_or_default()
    };
    let mut report = ProcReport {
        proc_name: proc.name.clone(),
        config: opts.config,
        status: SibStatus::MayBug,
        warnings: Vec::new(),
        specs: Vec::new(),
        min_fail: 0,
        stats: ProcStats::default(),
        outcome: AnalysisOutcome::Ok,
    };
    let n_variants = prune_variants.len().max(1);
    let replicate = |mut r: ProcReport, az: &ProcAnalyzer, start: Instant, n: usize| {
        r.stats.solver_queries = az.queries;
        r.stats.seconds = start.elapsed().as_secs_f64();
        vec![r; n]
    };
    let timeout_report = |mut r: ProcReport, az: &ProcAnalyzer, start: Instant, n: usize| {
        r.outcome = AnalysisOutcome::TimedOut;
        replicate(r, az, start, n)
    };

    // The `true` baseline is removed before the analysis (§2.3): dead
    // locations for branch coverage, feasible profiles for path coverage.
    let dead_check = match opts.dead_metric {
        DeadMetric::BranchCoverage => match az.dead_set(&[]) {
            Ok(d) => DeadCheck::Branch { baseline_dead: d },
            Err(_) => return Ok(timeout_report(report, &az, start, n_variants)),
        },
        DeadMetric::PathCoverage { max_profiles } => match az.path_profiles(&[], max_profiles) {
            Ok(p) => DeadCheck::Path {
                baseline_profiles: p,
                cap: max_profiles,
            },
            Err(_) => return Ok(timeout_report(report, &az, start, n_variants)),
        },
    };

    // The conservative screen: procedures with no demonic failures are
    // correct; the paper excludes them from all statistics.
    let demonic_fail = match az.fail_set(&[]) {
        Ok(f) => f,
        Err(_) => return Ok(timeout_report(report, &az, start, n_variants)),
    };
    if demonic_fail.is_empty() {
        report.status = SibStatus::Correct;
        return Ok(replicate(report, &az, start, n_variants));
    }

    // Mine Q under the configuration's abstraction.
    let q = mine_predicates(&d, opts.config.abstraction());
    report.stats.n_predicates = q.len();
    if q.len() > opts.max_predicates {
        return Ok(timeout_report(report, &az, start, n_variants));
    }

    // Predicate cover (ALL-SAT).
    let cover = match predicate_cover_capped(&mut az, &q, opts.max_cover_clauses) {
        Ok(c) => c,
        Err(_) => return Ok(timeout_report(report, &az, start, n_variants)),
    };
    report.stats.n_cover_clauses = cover.clauses.len();

    // Algorithm 2.
    let handles = cover.install_handles(&mut az);
    let selectors: Vec<acspec_vcgen::Selector> = handles.iter().map(|&(s, _)| s).collect();
    let bodies: Vec<acspec_smt::TermId> = handles.iter().map(|&(_, b)| b).collect();
    let search = match find_almost_correct_specs_with(
        &mut az,
        &selectors,
        &dead_check,
        opts.max_search_nodes,
        Some(&bodies),
    ) {
        Ok(s) => s,
        Err(_) => return Ok(timeout_report(report, &az, start, n_variants)),
    };
    report.stats.search_nodes = search.nodes_visited;
    report.status = if search.root_dead {
        SibStatus::Sib
    } else {
        SibStatus::MayBug
    };
    report.min_fail = search.min_fail;

    // Normalize each output spec once, then prune per variant and collect
    // E = Fail(Φ) for each variant.
    let call_sites_of_pred = |p: usize| -> Vec<u32> {
        cover.preds[p]
            .nu_consts()
            .into_iter()
            .map(|nu| nu.site)
            .collect()
    };
    let mut normalized_specs: Vec<Vec<QClause>> = Vec::new();
    for subset in &search.specs {
        let clauses: Vec<QClause> = subset
            .iter()
            .map(|&i| cover.clauses[i as usize].clone())
            .collect();
        let normalized = if opts.apply_normalize {
            semantic_normal_form(&mut az, &cover, &clauses, opts.normalize_max_clauses)
                .unwrap_or_else(|| normalize(&clauses, opts.normalize_max_clauses))
        } else {
            clauses
        };
        normalized_specs.push(normalized);
    }

    let variants: Vec<acspec_predabs::normalize::PruneConfig> = if prune_variants.is_empty() {
        vec![opts.prune]
    } else {
        prune_variants.to_vec()
    };
    let mut out = Vec::with_capacity(variants.len());
    for prune in &variants {
        let mut warnings: BTreeSet<AssertId> = BTreeSet::new();
        let mut witnesses: std::collections::BTreeMap<AssertId, String> =
            std::collections::BTreeMap::new();
        let mut specs: Vec<Formula> = Vec::new();
        let mut timed_out = false;
        for normalized in &normalized_specs {
            let pruned = prune_clauses(normalized, *prune, &call_sites_of_pred);
            let spec_formula = clauses_to_formula(&pruned, &cover.preds);
            if !specs.contains(&spec_formula) {
                specs.push(spec_formula);
            }
            let sel = install_clause_set_selector(&mut az, &cover, &pruned);
            match az.fail_set(&[sel]) {
                Ok(f) => {
                    for id in &f {
                        if !witnesses.contains_key(id) {
                            if let Ok(Some(w)) = az.failure_witness(*id, &[sel]) {
                                if !w.is_empty() {
                                    witnesses.insert(*id, render_witness(&w));
                                }
                            }
                        }
                    }
                    warnings.extend(f);
                }
                Err(_) => {
                    timed_out = true;
                    break;
                }
            }
        }
        let mut r = report.clone();
        r.specs = specs;
        r.warnings = warnings
            .into_iter()
            .map(|id| Warning {
                assert: id,
                tag: tag_of(id),
                witness: witnesses.remove(&id),
            })
            .collect();
        r.stats.solver_queries = az.queries;
        r.stats.seconds = start.elapsed().as_secs_f64();
        if timed_out {
            r.outcome = AnalysisOutcome::TimedOut;
        }
        out.push(r);
    }
    Ok(out)
}

/// The conservative verifier baseline (`Cons`, BOOGIE in the paper):
/// every assertion that can fail under the demonic (unconstrained)
/// environment.
///
/// # Errors
///
/// Returns [`AcspecError`] for malformed inputs. A budget timeout is
/// reported as `outcome = TimedOut` with empty warnings.
pub fn cons_baseline(
    program: &Program,
    proc: &Procedure,
    analyzer: AnalyzerConfig,
) -> Result<ProcReport, AcspecError> {
    let start = Instant::now();
    let d = desugar_procedure(program, proc, DesugarOptions::default())?;
    let mut az = ProcAnalyzer::new(&d, analyzer)?;
    let mut report = ProcReport {
        proc_name: proc.name.clone(),
        config: crate::config::ConfigName::Conc,
        status: SibStatus::MayBug,
        warnings: Vec::new(),
        specs: Vec::new(),
        min_fail: 0,
        stats: ProcStats::default(),
        outcome: AnalysisOutcome::Ok,
    };
    match az.fail_set(&[]) {
        Ok(fails) => {
            if fails.is_empty() {
                report.status = SibStatus::Correct;
            }
            report.warnings = fails
                .into_iter()
                .map(|id| Warning {
                    assert: id,
                    tag: d
                        .asserts
                        .get(id.0 as usize)
                        .map(|m| m.tag.clone())
                        .unwrap_or_default(),
                    witness: None,
                })
                .collect();
        }
        Err(_) => report.outcome = AnalysisOutcome::TimedOut,
    }
    report.stats.solver_queries = az.queries;
    report.stats.seconds = start.elapsed().as_secs_f64();
    Ok(report)
}
