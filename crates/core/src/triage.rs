//! Warning triage across a whole program — the paper's end goal:
//! "reporting a high-confidence subset of the assertion failures reported
//! by a modular verifier" (§1), with the abstract configurations as a
//! confidence knob (§5.1.3).
//!
//! Every assertion the conservative verifier flags is assigned the
//! *most precise* configuration that still reports it:
//!
//! * reported by `Conc` — a concrete semantic inconsistency bug, the
//!   paper's highest-confidence class;
//! * reported first by `A1` — an abstract SIB witnessed after ignoring
//!   conditionals;
//! * reported first by `A2` — witnessed only under the coarsest
//!   vocabulary (`A0` is omitted from the ladder, as in the paper's
//!   tables: any ν-dependent failure it catches, `A2` catches too);
//! * reported by none — a demonic-environment warning (`Cons` only),
//!   lowest confidence.

use acspec_ir::program::{Procedure, Program};

use crate::config::{AcspecOptions, ConfigName};
use crate::driver::AcspecError;
use crate::report::{SibStatus, Warning};
use crate::session::ProcSession;

/// Confidence levels, highest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Confidence {
    /// Reported under the concrete configuration (a SIB).
    Concrete,
    /// Reported first under `A1` (ignore conditionals).
    Abstract1,
    /// Reported only under the coarsest configuration (`A2`).
    Abstract2,
    /// Reported only by the conservative verifier.
    DemonicOnly,
}

impl std::fmt::Display for Confidence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Confidence::Concrete => write!(f, "HIGH (Conc SIB)"),
            Confidence::Abstract1 => write!(f, "MEDIUM (A1)"),
            Confidence::Abstract2 => write!(f, "LOW (A2)"),
            Confidence::DemonicOnly => write!(f, "NOISE (Cons only)"),
        }
    }
}

/// A warning with its confidence level and procedure.
#[derive(Debug, Clone)]
pub struct RankedWarning {
    /// The confidence class.
    pub confidence: Confidence,
    /// The enclosing procedure.
    pub proc_name: String,
    /// The warning (id, tag, witness when available).
    pub warning: Warning,
    /// The almost-correct specification that revealed it, if any.
    pub spec: Option<String>,
}

/// Triages every procedure of a program, returning warnings ordered by
/// decreasing confidence (stable within a class: program order).
///
/// Procedures the conservative verifier proves correct contribute
/// nothing; timed-out configurations are skipped (their warnings may
/// then surface at a lower confidence).
///
/// # Errors
///
/// Returns [`AcspecError`] for malformed programs.
pub fn triage_program(
    program: &Program,
    base: &AcspecOptions,
) -> Result<Vec<RankedWarning>, AcspecError> {
    let mut out = Vec::new();
    for proc in &program.procedures {
        if proc.body.is_none() {
            continue;
        }
        out.extend(triage_procedure(program, proc, base)?);
    }
    out.sort_by_key(|a| a.confidence);
    Ok(out)
}

/// Triages a single procedure.
///
/// # Errors
///
/// Returns [`AcspecError`] for malformed programs.
pub fn triage_procedure(
    program: &Program,
    proc: &Procedure,
    base: &AcspecOptions,
) -> Result<Vec<RankedWarning>, AcspecError> {
    // One session serves the baseline and the whole ladder: the
    // procedure is desugared, encoded, and screened exactly once.
    let mut session = ProcSession::new(program, proc, base.analyzer)?;
    let cons = session.cons();
    if cons.status == SibStatus::Correct {
        return Ok(Vec::new());
    }
    // Most precise first; the first configuration reporting an assertion
    // claims it.
    let ladder = [
        (Confidence::Concrete, vec![ConfigName::Conc]),
        (Confidence::Abstract1, vec![ConfigName::A1]),
        (Confidence::Abstract2, vec![ConfigName::A2]),
    ];
    let mut claimed: std::collections::BTreeSet<acspec_ir::AssertId> =
        std::collections::BTreeSet::new();
    let mut out = Vec::new();
    for (confidence, configs) in ladder {
        for config in configs {
            let mut opts = *base;
            opts.config = config;
            let r = session
                .run_config(&opts, &[opts.prune])
                .into_iter()
                .next()
                .expect("one variant requested");
            if r.timed_out() {
                continue;
            }
            let spec = r.specs.first().map(ToString::to_string);
            for w in r.warnings {
                if claimed.insert(w.assert) {
                    out.push(RankedWarning {
                        confidence,
                        proc_name: proc.name.clone(),
                        warning: w,
                        spec: spec.clone(),
                    });
                }
            }
        }
    }
    for w in cons.warnings {
        if claimed.insert(w.assert) {
            out.push(RankedWarning {
                confidence: Confidence::DemonicOnly,
                proc_name: proc.name.clone(),
                warning: w,
                spec: None,
            });
        }
    }
    out.sort_by_key(|a| a.confidence);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acspec_ir::parse::parse_program;

    #[test]
    fn ladder_assigns_expected_levels() {
        // One procedure per confidence class.
        let src = "
            procedure ext() returns (r: int);

            /* Conc: doomed dereference */
            procedure high(x: int) {
              if (x == 0) { assert x != 0; }
            }

            /* A1: figure-2 style inconsistency behind a conditional */
            procedure medium() {
              var data: int; var t: int;
              call data := ext();
              call t := ext();
              if (t == 1) {
                assert data != 0;
              } else {
                if (data != 0) { assert data != 0; }
              }
            }

            /* A2: simple unchecked external value */
            procedure low() {
              var p: int;
              call p := ext();
              assert p != 0;
            }

            /* Cons only: parameter dereference */
            procedure noise(p: int) {
              assert p != 0;
            }";
        let prog = parse_program(src).expect("parses");
        let opts = AcspecOptions::default();
        let ranked = triage_program(&prog, &opts).expect("triages");
        let level_of = |name: &str| -> Confidence {
            ranked
                .iter()
                .find(|r| r.proc_name == name)
                .unwrap_or_else(|| panic!("no warning for {name}"))
                .confidence
        };
        assert_eq!(level_of("high"), Confidence::Concrete);
        assert_eq!(level_of("medium"), Confidence::Abstract1);
        assert_eq!(level_of("low"), Confidence::Abstract2);
        assert_eq!(level_of("noise"), Confidence::DemonicOnly);
        // Ordering: confidences non-decreasing.
        for pair in ranked.windows(2) {
            assert!(pair[0].confidence <= pair[1].confidence);
        }
    }

    #[test]
    fn correct_procedures_contribute_nothing() {
        let prog = parse_program(
            "procedure ok(x: int) {
               assume x != 0;
               assert x != 0;
             }",
        )
        .expect("parses");
        let ranked = triage_program(&prog, &AcspecOptions::default()).expect("triages");
        assert!(ranked.is_empty());
    }

    #[test]
    fn each_assert_claimed_once() {
        let prog = parse_program(
            "procedure f(x: int) {
               if (x == 0) { assert x != 0; }
               assert x != 5;
             }",
        )
        .expect("parses");
        let ranked = triage_program(&prog, &AcspecOptions::default()).expect("triages");
        let mut ids: Vec<_> = ranked.iter().map(|r| r.warning.assert).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), ranked.len(), "no duplicates: {ranked:?}");
    }
}
