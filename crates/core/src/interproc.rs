//! Limited interprocedural analysis — the paper's stated extension
//! (§5.1.2, §7): *"To catch such bugs, we plan to extend our current
//! method to assert the weakest precondition of simple procedures at
//! call sites."*
//!
//! [`infer_preconditions`] walks the call graph bottom-up. For every
//! defined procedure with a trivial contract it computes the predicate
//! cover `β_Q(wp)` over the ν-free concrete vocabulary (a formula over
//! parameters and globals only) and — when that specification creates no
//! dead code (i.e. the procedure has no SIB of its own) — adopts it as
//! the procedure's `requires` clause. Re-analyzing callers then asserts
//! these inferred preconditions at call sites, so "simple but buggy"
//! callees like `void Foo(x) { *x = 1; }` surface as warnings in their
//! callers instead of false negatives.

use std::collections::{BTreeMap, BTreeSet};

use acspec_ir::desugar::{desugar_procedure, DesugarOptions};
use acspec_ir::expr::Formula;
use acspec_ir::program::Program;
use acspec_ir::stmt::Stmt;
use acspec_predabs::clause::clauses_to_formula;
use acspec_predabs::cover::predicate_cover_capped;
use acspec_predabs::mine::{mine_predicates, Abstraction};
use acspec_predabs::normalize::normalize;
use acspec_vcgen::analyzer::ProcAnalyzer;

use crate::config::AcspecOptions;
use crate::driver::AcspecError;

/// Result of the inference pass.
#[derive(Debug, Clone)]
pub struct InferredContracts {
    /// The program with inferred `requires` clauses installed.
    pub program: Program,
    /// The preconditions adopted, per procedure.
    pub inferred: BTreeMap<String, Formula>,
}

pub(crate) fn callees_of(body: &Stmt, out: &mut BTreeSet<String>) {
    match body {
        Stmt::Call { callee, .. } => {
            out.insert(callee.clone());
        }
        Stmt::Seq(ss) => {
            for s in ss {
                callees_of(s, out);
            }
        }
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            callees_of(then_branch, out);
            callees_of(else_branch, out);
        }
        Stmt::While { body, .. } => callees_of(body, out),
        _ => {}
    }
}

/// Topological order of defined procedures, callees first. Procedures on
/// call cycles keep their original contracts (the analysis is still
/// modular; recursion is out of scope, as in the paper).
fn bottom_up_order(program: &Program) -> Vec<String> {
    let defined: BTreeSet<&str> = program
        .procedures
        .iter()
        .filter(|p| p.body.is_some())
        .map(|p| p.name.as_str())
        .collect();
    let mut deps: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
    for p in &program.procedures {
        if let Some(body) = &p.body {
            let mut cs = BTreeSet::new();
            callees_of(body, &mut cs);
            cs.retain(|c| defined.contains(c.as_str()) && c != &p.name);
            deps.insert(&p.name, cs);
        }
    }
    let mut order = Vec::new();
    let mut placed: BTreeSet<String> = BTreeSet::new();
    // Kahn-style; nodes stuck on cycles are simply never placed.
    loop {
        let ready: Vec<String> = deps
            .iter()
            .filter(|(n, cs)| !placed.contains(**n) && cs.iter().all(|c| placed.contains(c)))
            .map(|(n, _)| (*n).to_string())
            .collect();
        if ready.is_empty() {
            break;
        }
        for n in ready {
            placed.insert(n.clone());
            order.push(n);
        }
    }
    order
}

/// Runs the inference pass.
///
/// Only procedures whose current `requires` is `true` are touched, and a
/// precondition is adopted only when it is expressible over parameters
/// and globals (ν-free) and creates no dead code in the callee. The
/// returned program can then be analyzed with
/// [`crate::analyze_procedure`] as usual; inferred preconditions surface
/// as `pre:<callee>@<site>` warnings in callers.
///
/// # Errors
///
/// Returns [`AcspecError`] for malformed programs. Procedures that
/// exceed the analysis budget simply keep their trivial contracts.
pub fn infer_preconditions(
    program: &Program,
    opts: &AcspecOptions,
) -> Result<InferredContracts, AcspecError> {
    let mut out = program.clone();
    let mut inferred = BTreeMap::new();
    for name in bottom_up_order(program) {
        let proc = out.procedure(&name).expect("ordered over out").clone();
        if proc.contract.requires != Formula::True {
            continue; // respect user-provided contracts
        }
        let d = desugar_procedure(&out, &proc, DesugarOptions::default())?;
        let mut az = ProcAnalyzer::new(&d, opts.analyzer)?;
        // ν-free concrete vocabulary: the precondition must be a formula
        // over the caller-visible state (parameters and globals).
        let q: Vec<_> = mine_predicates(&d, Abstraction::concrete())
            .into_iter()
            .filter(|a| a.nu_consts().is_empty())
            .collect();
        if q.is_empty() || q.len() > opts.max_predicates {
            continue;
        }
        let Ok(baseline_dead) = az.dead_set(&[]) else {
            continue;
        };
        let Ok(cover) = predicate_cover_capped(&mut az, &q, opts.max_cover_clauses) else {
            continue;
        };
        if cover.clauses.is_empty() {
            continue; // already correct under `true`
        }
        // Adopt only specs that kill no code (no SIB): otherwise the
        // callee's own warning machinery is the right reporter.
        let sels = cover.install_selectors(&mut az);
        let Ok(consistent) = az.is_consistent(&sels, &[]) else {
            continue;
        };
        if !consistent {
            continue;
        }
        let Ok(dead) = az.dead_set(&sels) else {
            continue;
        };
        if dead.difference(&baseline_dead).next().is_some() {
            continue;
        }
        let simplified = normalize(&cover.clauses, opts.normalize_max_clauses);
        let spec = clauses_to_formula(&simplified, &cover.preds);
        let target = out
            .procedures
            .iter_mut()
            .find(|p| p.name == name)
            .expect("exists");
        target.contract.requires = spec.clone();
        inferred.insert(name, spec);
    }
    Ok(InferredContracts {
        program: out,
        inferred,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze_procedure, ConfigName, SibStatus};
    use acspec_ir::parse::parse_program;

    #[test]
    fn simple_callee_gets_its_wp_as_precondition() {
        let prog = parse_program(
            "procedure callee(x: int) {
               assert x != 0;
             }
             procedure caller_bad() {
               call callee(0);
             }
             procedure caller_good() {
               call callee(7);
             }",
        )
        .expect("parses");
        let opts = AcspecOptions::for_config(ConfigName::Conc);
        let inferred = infer_preconditions(&prog, &opts).expect("infers");
        assert_eq!(
            inferred.inferred.get("callee").map(ToString::to_string),
            Some("x != 0".to_string())
        );
        // The bad caller now fails the inferred precondition.
        let bad = inferred.program.procedure("caller_bad").expect("x").clone();
        let r = analyze_procedure(&inferred.program, &bad, &opts).expect("ok");
        assert_eq!(r.warnings.len(), 1, "got {:?}", r.warnings);
        assert!(r.warnings[0].tag.contains("pre:callee"));
        // The good caller stays clean.
        let good = inferred
            .program
            .procedure("caller_good")
            .expect("x")
            .clone();
        let r = analyze_procedure(&inferred.program, &good, &opts).expect("ok");
        assert!(r.warnings.is_empty(), "got {:?}", r.warnings);
    }

    #[test]
    fn sib_callees_keep_trivial_contracts() {
        // The callee's wp kills code (its own SIB); its warning should be
        // reported in the callee, not exported as a precondition.
        let prog = parse_program(
            "procedure callee(x: int) {
               if (x == 0) { assert x != 0; }
             }
             procedure caller() {
               call callee(0);
             }",
        )
        .expect("parses");
        let opts = AcspecOptions::for_config(ConfigName::Conc);
        let inferred = infer_preconditions(&prog, &opts).expect("infers");
        assert!(
            !inferred.inferred.contains_key("callee"),
            "SIB callee must not export: {:?}",
            inferred.inferred
        );
        let callee = inferred.program.procedure("callee").expect("x").clone();
        let r = analyze_procedure(&inferred.program, &callee, &opts).expect("ok");
        assert_eq!(r.status, SibStatus::Sib);
    }

    #[test]
    fn user_contracts_are_respected() {
        let prog = parse_program(
            "procedure callee(x: int)
               requires x > 5;
             {
               assert x != 0;
             }
             procedure caller() {
               call callee(9);
             }",
        )
        .expect("parses");
        let opts = AcspecOptions::for_config(ConfigName::Conc);
        let inferred = infer_preconditions(&prog, &opts).expect("infers");
        assert!(!inferred.inferred.contains_key("callee"));
        let callee = inferred.program.procedure("callee").expect("x");
        assert_eq!(callee.contract.requires.to_string(), "x > 5");
    }

    #[test]
    fn chains_propagate_bottom_up() {
        // leaf needs p != 0; mid forwards its own parameter; top passes 0.
        let prog = parse_program(
            "procedure leaf(p: int) {
               assert p != 0;
             }
             procedure mid(q: int) {
               call leaf(q);
             }
             procedure top() {
               call mid(0);
             }",
        )
        .expect("parses");
        let opts = AcspecOptions::for_config(ConfigName::Conc);
        let inferred = infer_preconditions(&prog, &opts).expect("infers");
        assert!(inferred.inferred.contains_key("leaf"));
        assert!(
            inferred.inferred.contains_key("mid"),
            "mid inherits the obligation: {:?}",
            inferred.inferred
        );
        let top = inferred.program.procedure("top").expect("x").clone();
        let r = analyze_procedure(&inferred.program, &top, &opts).expect("ok");
        assert_eq!(r.warnings.len(), 1, "got {:?}", r.warnings);
    }

    #[test]
    fn recursion_is_left_alone() {
        let prog = parse_program(
            "procedure even(n: int) {
               assert n >= 0;
               call odd(n - 1);
             }
             procedure odd(n: int) {
               call even(n - 1);
             }",
        )
        .expect("parses");
        let opts = AcspecOptions::for_config(ConfigName::Conc);
        let inferred = infer_preconditions(&prog, &opts).expect("infers");
        assert!(inferred.inferred.is_empty(), "{:?}", inferred.inferred);
    }
}
