//! The [`TelemetryObserver`]: turns session events into a span tree and
//! a metrics registry (the `--trace-out` / `--metrics-out` backends).
//!
//! The observer rides [`ProgramAnalysis::run`]'s deterministic replay
//! (events arrive in procedure order regardless of worker-thread
//! count), building one [`TraceBuf`] per procedure and assembling them
//! in that same stable order — so the finished trace is byte-identical
//! across thread counts, modulo wall-times.
//!
//! Span tree:
//!
//! ```text
//!   program
//!     └─ procedure (proc=…)
//!          └─ config (label=shared|Cons|Conc|…)
//!               └─ stage (stage=…, seq=…, queries=…, cache_hits=…,
//!                         cache_misses=…)
//!                    · solver_query events (outcome, counters, seconds)
//! ```
//!
//! [`ProgramAnalysis::run`]: crate::session::ProgramAnalysis::run

use std::collections::BTreeMap;
use std::io::Write;

use acspec_smt::{LBD_BUCKET_BOUNDS, RESTART_BUCKET_BOUNDS};
use acspec_telemetry::{
    Histogram, Manifest, MetricsRegistry, SpanHandle, Trace, TraceBuf, TraceRender,
};
use acspec_vcgen::analyzer::WIN_LATENCY_BOUNDS_US;
use acspec_vcgen::stage::Stage;

use crate::report::{AnalysisIncident, Fallback, IncidentKind, ReportLabel};
use crate::session::{QueryEvent, SessionObserver, StageEvent};

/// Per-procedure recording state.
#[derive(Debug)]
struct ProcTrace {
    buf: TraceBuf,
    root: SpanHandle,
    configs: BTreeMap<Option<ReportLabel>, SpanHandle>,
    /// Queries replayed ahead of their owning stage event.
    pending: Vec<QueryEvent>,
}

impl ProcTrace {
    fn new(proc_name: &str) -> ProcTrace {
        let mut buf = TraceBuf::new();
        let root = buf.push_span(None, "procedure", vec![("proc", proc_name.into())], 0.0);
        ProcTrace {
            buf,
            root,
            configs: BTreeMap::new(),
            pending: Vec::new(),
        }
    }

    fn config_span(&mut self, label: Option<ReportLabel>) -> SpanHandle {
        let root = self.root;
        *self.configs.entry(label).or_insert_with(|| {
            let name = label.map_or_else(|| "shared".to_string(), |l| l.to_string());
            self.buf
                .push_span(Some(root), "config", vec![("label", name.into())], 0.0)
        })
    }
}

/// Label text used in span attributes and metric names.
fn label_name(label: Option<ReportLabel>) -> String {
    label.map_or_else(|| "shared".to_string(), |l| l.to_string())
}

/// A [`SessionObserver`] that records spans, solver-query events, and
/// metrics. Opt into per-query events by construction — its
/// [`wants_queries`](SessionObserver::wants_queries) returns `true`, so
/// sessions running under it enable the analyzer's query hook.
///
/// Call [`TelemetryObserver::finish`] after the analysis to assemble
/// the deterministic trace and take the registry.
#[derive(Debug, Default)]
pub struct TelemetryObserver {
    bufs: Vec<TraceBuf>,
    current: Option<ProcTrace>,
    metrics: MetricsRegistry,
    search_events: bool,
}

impl TelemetryObserver {
    /// An empty observer.
    pub fn new() -> TelemetryObserver {
        TelemetryObserver::default()
    }

    /// Opts into CDCL search summaries: sessions running under this
    /// observer enable the solver's [`SearchObserver`] hook (per-conflict
    /// LBD computation), and each `solver_query` trace event gains
    /// `restarts`/`max_dl`/`learnt_clauses`/`lbd_max` attributes plus
    /// `solver.lbd` / `solver.conflicts_per_restart` histograms in the
    /// metrics snapshot. Off by default — existing traces and snapshots
    /// are byte-identical to pre-instrumentation output.
    ///
    /// [`SearchObserver`]: acspec_smt::SearchObserver
    #[must_use]
    pub fn with_search_events(mut self, on: bool) -> TelemetryObserver {
        self.search_events = on;
        self
    }

    fn proc_trace(&mut self, proc_name: &str) -> &mut ProcTrace {
        if self.current.is_none() {
            self.current = Some(ProcTrace::new(proc_name));
        }
        self.current.as_mut().expect("just ensured")
    }

    /// Live view of the metrics registry (e.g. for progress displays).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Folds a persistent-store stats snapshot into the registry:
    /// `store.{hits,misses,corrupt,retries,saves,save_errors,quarantined}`
    /// counters plus `store.load_seconds` / `store.save_seconds` latency
    /// histograms. Call once after the run (the snapshot is cumulative).
    /// Runs without a store never touch these families, so their metric
    /// snapshots stay byte-identical.
    pub fn record_store(&mut self, stats: &acspec_store::StoreStats) {
        self.metrics.inc("store.hits", stats.hits);
        self.metrics.inc("store.misses", stats.misses);
        self.metrics.inc("store.corrupt", stats.corrupt);
        self.metrics.inc("store.retries", stats.retries);
        self.metrics.inc("store.saves", stats.saves);
        self.metrics.inc("store.save_errors", stats.save_errors);
        self.metrics.inc("store.quarantined", stats.quarantined);
        for &s in &stats.load_seconds {
            self.metrics.observe("store.load_seconds", s);
        }
        for &s in &stats.save_seconds {
            self.metrics.observe("store.save_seconds", s);
        }
    }

    /// Assembles the trace (stable procedure order) and hands over the
    /// metrics registry.
    pub fn finish(mut self) -> TelemetryOutput {
        if let Some(pt) = self.current.take() {
            // Defensive: a run that errored mid-procedure still yields
            // the events recorded so far.
            self.bufs.push(pt.buf);
        }
        let procs = self.bufs.len();
        let trace = Trace::assemble("program", vec![("procs", procs.into())], self.bufs);
        TelemetryOutput {
            trace,
            metrics: self.metrics,
        }
    }
}

impl SessionObserver for TelemetryObserver {
    fn stage_completed(&mut self, event: &StageEvent) {
        let stage_name = event.stage.name();
        let pt = self.proc_trace(&event.proc_name);
        let config = pt.config_span(event.label);
        let span = pt.buf.push_span(
            Some(config),
            "stage",
            vec![
                ("stage", stage_name.into()),
                ("seq", u64::from(event.seq).into()),
                ("queries", event.metrics.queries.into()),
                ("cache_hits", event.cache.hits().into()),
                ("cache_misses", event.cache.misses.into()),
            ],
            event.metrics.seconds,
        );
        for q in pt.pending.drain(..) {
            let mut attrs = vec![
                ("seq", u64::from(q.seq).into()),
                ("outcome", q.outcome.name().into()),
                ("conflicts", q.counters.conflicts.into()),
                ("decisions", q.counters.decisions.into()),
                ("propagations", q.counters.propagations.into()),
                ("theory_conflicts", q.counters.theory_conflicts.into()),
            ];
            if let Some(s) = q.search {
                attrs.push(("restarts", s.restarts.into()));
                attrs.push(("max_dl", u64::from(s.max_decision_level).into()));
                attrs.push(("learnt_clauses", s.learnt_clauses.into()));
                attrs.push(("lbd_max", u64::from(s.max_lbd).into()));
            }
            pt.buf.push_event(span, "solver_query", attrs, q.seconds);
        }
        pt.buf.add_seconds(config, event.metrics.seconds);
        let root = pt.root;
        pt.buf.add_seconds(root, event.metrics.seconds);

        self.metrics.gauge_add(
            &format!("stage.{stage_name}.seconds"),
            event.metrics.seconds,
        );
        self.metrics.inc(
            &format!("stage.{stage_name}.queries"),
            event.metrics.queries,
        );
        self.metrics.inc("cache.hits", event.cache.hits());
        self.metrics.inc("cache.hit_sat", event.cache.hits_sat);
        self.metrics.inc("cache.hit_unsat", event.cache.hits_unsat);
        self.metrics.inc("cache.misses", event.cache.misses);
        self.metrics
            .inc("cache.invalidations", event.cache.invalidations);
        self.metrics
            .gauge_add("stage.total_seconds", event.metrics.seconds);
        self.metrics.observe("stage.seconds", event.metrics.seconds);
        self.metrics.gauge_add(
            &format!("config.{}.seconds", label_name(event.label)),
            event.metrics.seconds,
        );
        // Chaos counters only appear when fault injection is active, so
        // chaos-free runs keep byte-identical metric snapshots.
        if event.chaos.draws > 0 {
            self.metrics.inc("chaos.draws", event.chaos.draws);
            self.metrics.inc("chaos.unknowns", event.chaos.unknowns);
            self.metrics.inc("chaos.blowups", event.chaos.blowups);
            self.metrics.inc("chaos.latencies", event.chaos.latencies);
            self.metrics.inc("chaos.panics", event.chaos.panics);
        }
        // Parallel-search counters only appear when portfolio racing or
        // cube splitting actually ran, so sequential runs keep
        // byte-identical metric snapshots.
        if !event.parallel.is_zero() {
            let p = &event.parallel;
            self.metrics.inc("portfolio.queries", p.portfolio_queries);
            self.metrics.inc("portfolio.forked", p.portfolio_forked);
            self.metrics.inc("portfolio.rounds", p.portfolio_rounds);
            self.metrics.inc("portfolio.wins", p.portfolio_wins);
            self.metrics.inc("portfolio.rescues", p.portfolio_rescues);
            if p.portfolio_wins > 0 {
                let bounds: Vec<f64> = WIN_LATENCY_BOUNDS_US
                    .iter()
                    .map(|&b| b as f64 / 1e6)
                    .collect();
                let hist = Histogram::from_parts(
                    &bounds,
                    &p.portfolio_win_latency,
                    p.portfolio_win_micros as f64 / 1e6,
                );
                self.metrics.merge_histogram("portfolio.win_seconds", &hist);
            }
            self.metrics.inc("cube.sessions", p.cube_sessions);
            self.metrics.inc("cube.workers", p.cube_workers);
            self.metrics.inc("cube.models", p.cube_models);
        }
        // Likewise for the term arena: stages that never intern keep
        // prior metric snapshots unchanged.
        if event.terms.any() {
            let t = &event.terms;
            self.metrics.inc("terms.interned_nodes", t.interned_nodes);
            self.metrics.inc("terms.intern_hits", t.intern_hits);
            self.metrics.inc("terms.memo_hits", t.memo_hits());
            self.metrics.inc("terms.subst_hits", t.subst_hits);
            self.metrics.inc("terms.atoms_hits", t.atoms_hits);
            self.metrics.inc("terms.translate_hits", t.translate_hits);
            self.metrics.inc("terms.bytes_saved", t.bytes_saved());
        }
    }

    fn incident_recorded(&mut self, incident: &AnalysisIncident) {
        self.metrics.inc("incident.total", 1);
        match incident.kind {
            IncidentKind::Panic => self.metrics.inc("incident.panics", 1),
            IncidentKind::Error => self.metrics.inc("incident.errors", 1),
            IncidentKind::StoreCorruption => self.metrics.inc("incident.store_corruption", 1),
        }
    }

    fn degradation_recorded(&mut self, _proc_name: &str, _from: Stage, fallback: Fallback) {
        self.metrics.inc("incident.degraded", 1);
        self.metrics
            .inc(&format!("degraded.{}", fallback.name()), 1);
    }

    fn query_completed(&mut self, event: &QueryEvent) {
        self.metrics.inc("solver.queries", 1);
        self.metrics
            .inc(&format!("solver.{}", event.outcome.name()), 1);
        self.metrics
            .inc("solver.conflicts", event.counters.conflicts);
        self.metrics
            .inc("solver.decisions", event.counters.decisions);
        self.metrics
            .inc("solver.propagations", event.counters.propagations);
        self.metrics
            .inc("solver.theory_conflicts", event.counters.theory_conflicts);
        self.metrics.observe("solver.query_seconds", event.seconds);
        if let Some(s) = event.search {
            self.metrics.inc("solver.restarts", s.restarts);
            self.metrics.inc("solver.learnt_clauses", s.learnt_clauses);
            self.metrics
                .inc("solver.learnt_literals", s.learnt_literals);
            self.metrics
                .gauge_max("solver.max_decision_level", f64::from(s.max_decision_level));
            let lbd_bounds: Vec<f64> = LBD_BUCKET_BOUNDS.iter().map(|&b| b as f64).collect();
            self.metrics.merge_histogram(
                "solver.lbd",
                &Histogram::from_parts(&lbd_bounds, &s.lbd_hist, s.lbd_sum as f64),
            );
            // Each restart interval contributes its conflict count, so
            // the histogram's sum is the total conflicts in the window.
            let restart_bounds: Vec<f64> =
                RESTART_BUCKET_BOUNDS.iter().map(|&b| b as f64).collect();
            self.metrics.merge_histogram(
                "solver.conflicts_per_restart",
                &Histogram::from_parts(&restart_bounds, &s.restart_hist, s.conflicts as f64),
            );
        }
        self.proc_trace(&event.proc_name)
            .pending
            .push(event.clone());
    }

    fn proc_completed(&mut self, proc_name: &str) {
        let mut pt = self
            .current
            .take()
            .unwrap_or_else(|| ProcTrace::new(proc_name));
        // Stragglers (queries with no matching stage event) attach to
        // the procedure span so they are never dropped.
        let root = pt.root;
        for q in std::mem::take(&mut pt.pending) {
            pt.buf.push_event(
                root,
                "solver_query",
                vec![
                    ("seq", u64::from(q.seq).into()),
                    ("outcome", q.outcome.name().into()),
                ],
                q.seconds,
            );
        }
        self.bufs.push(pt.buf);
        self.metrics.inc("procs", 1);
    }

    fn wants_queries(&self) -> bool {
        true
    }

    fn wants_search(&self) -> bool {
        self.search_events
    }
}

/// The assembled outputs of a [`TelemetryObserver`].
#[derive(Debug)]
pub struct TelemetryOutput {
    /// The deterministic span tree.
    pub trace: Trace,
    /// The metrics registry.
    pub metrics: MetricsRegistry,
}

impl TelemetryOutput {
    /// The JSONL trace (header line, then spans with their events).
    pub fn trace_jsonl(&self, manifest: Option<&Manifest>) -> String {
        self.trace.to_jsonl(manifest)
    }

    /// The JSONL trace with render options (determinism tests zero the
    /// wall-times; golden tests also redact ids and counters).
    pub fn trace_jsonl_with(&self, manifest: Option<&Manifest>, opts: TraceRender) -> String {
        self.trace.to_jsonl_with(manifest, opts)
    }

    /// The schema-versioned metrics snapshot.
    pub fn metrics_json(&self, manifest: Option<&Manifest>) -> String {
        self.metrics.snapshot_json(manifest)
    }

    /// The Chrome/Perfetto `trace_events` JSON document.
    pub fn trace_perfetto(&self, manifest: Option<&Manifest>) -> String {
        self.trace.to_perfetto(manifest)
    }

    /// [`TelemetryOutput::trace_perfetto`] with render options.
    pub fn trace_perfetto_with(&self, manifest: Option<&Manifest>, opts: TraceRender) -> String {
        self.trace.to_perfetto_with(manifest, opts)
    }

    /// Writes the JSONL trace to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating or writing the file.
    pub fn write_trace(&self, path: &str, manifest: Option<&Manifest>) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.trace_jsonl(manifest).as_bytes())
    }

    /// Writes the Perfetto trace to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating or writing the file.
    pub fn write_trace_perfetto(
        &self,
        path: &str,
        manifest: Option<&Manifest>,
    ) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.trace_perfetto(manifest).as_bytes())
    }

    /// Writes the metrics snapshot to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating or writing the file.
    pub fn write_metrics(&self, path: &str, manifest: Option<&Manifest>) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        let mut s = self.metrics_json(manifest);
        s.push('\n');
        f.write_all(s.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::ProgramAnalysis;
    use acspec_ir::parse::parse_program;

    const TWO_PROCS: &str = "
        procedure f(x: int) { if (x == 0) { assert x != 0; } }
        procedure g(p: int) { assert p != 0; }";

    fn run_telemetry(threads: usize) -> TelemetryOutput {
        let prog = parse_program(TWO_PROCS).expect("parses");
        let mut obs = TelemetryObserver::new();
        let outcomes = ProgramAnalysis::new(&prog).threads(threads).run(&mut obs);
        assert!(outcomes.iter().all(|o| o.incident().is_none()));
        obs.finish()
    }

    #[test]
    fn span_tree_covers_procedures_configs_and_stages() {
        let out = run_telemetry(1);
        let procs: Vec<&str> = out
            .trace
            .spans_of("procedure")
            .filter_map(|s| Trace::str_attr(s, "proc"))
            .collect();
        assert_eq!(procs, vec!["f", "g"]);
        // Every (procedure, config, stage) combination that ran has a
        // stage span whose ancestry names it.
        let stages: Vec<_> = out.trace.spans_of("stage").collect();
        assert!(!stages.is_empty());
        for s in &stages {
            let chain = out.trace.ancestry(s.id);
            assert_eq!(chain.last().expect("root").kind, "program");
            assert_eq!(chain[1].kind, "config");
            assert_eq!(chain[2].kind, "procedure");
        }
        // Each procedure has both shared and per-config work.
        let labels: std::collections::BTreeSet<&str> = out
            .trace
            .spans_of("config")
            .filter_map(|s| Trace::str_attr(s, "label"))
            .collect();
        assert!(labels.contains("shared"), "{labels:?}");
        assert!(labels.contains("Conc"), "{labels:?}");
    }

    #[test]
    fn one_query_event_per_solver_check() {
        let out = run_telemetry(1);
        let events = out.trace.events.len();
        assert!(events > 0, "no solver_query events recorded");
        assert_eq!(out.metrics.counter("solver.queries"), events as u64);
        // Query totals agree with the stage tables' query counts.
        let stage_queries: u64 = out
            .trace
            .spans_of("stage")
            .map(|s| {
                s.attrs
                    .iter()
                    .find_map(|(k, v)| match v {
                        acspec_telemetry::Value::U64(n) if *k == "queries" => Some(*n),
                        _ => None,
                    })
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(stage_queries, events as u64);
        // Outcome counters partition the total.
        let by_outcome = out.metrics.counter("solver.sat")
            + out.metrics.counter("solver.unsat")
            + out.metrics.counter("solver.unknown");
        assert_eq!(by_outcome, events as u64);
    }

    #[test]
    fn search_mode_adds_cdcl_metrics_and_attrs() {
        let prog = parse_program(TWO_PROCS).expect("parses");
        let mut obs = TelemetryObserver::new().with_search_events(true);
        let outcomes = ProgramAnalysis::new(&prog).threads(1).run(&mut obs);
        assert!(outcomes.iter().all(|o| o.incident().is_none()));
        let out = obs.finish();
        // Trivial queries may produce zero conflicts, but the histograms
        // and the decision-level gauge must exist whenever search
        // summaries were recorded.
        let lbd = out.metrics.histogram("solver.lbd").expect("lbd histogram");
        let cpr = out
            .metrics
            .histogram("solver.conflicts_per_restart")
            .expect("restart histogram");
        assert_eq!(lbd.count(), out.metrics.counter("solver.learnt_clauses"));
        assert!(cpr.count() >= 1, "every consulted query ends an interval");
        assert!(out.metrics.gauge("solver.max_decision_level") >= 0.0);
        // Every recorded solver_query event carries the CDCL attrs.
        assert!(!out.trace.events.is_empty());
        for e in &out.trace.events {
            assert!(
                e.attrs.iter().any(|(k, _)| *k == "restarts"),
                "missing restarts attr: {e:?}"
            );
            assert!(e.attrs.iter().any(|(k, _)| *k == "lbd_max"));
        }
        // Without the opt-in, none of this appears (byte-compat path).
        let plain = run_telemetry(1);
        assert!(plain.metrics.histogram("solver.lbd").is_none());
        assert_eq!(plain.metrics.counter("solver.restarts"), 0);
        assert!(plain
            .trace
            .events
            .iter()
            .all(|e| e.attrs.iter().all(|(k, _)| *k != "restarts")));
    }

    #[test]
    fn metrics_snapshot_has_stage_and_solver_families() {
        let out = run_telemetry(1);
        assert!(out.metrics.gauge("stage.total_seconds") > 0.0);
        assert_eq!(out.metrics.counter("procs"), 2);
        assert!(out.metrics.counter("stage.screen.queries") > 0);
        let hist = out
            .metrics
            .histogram("solver.query_seconds")
            .expect("latency histogram");
        assert_eq!(hist.count(), out.metrics.counter("solver.queries"));
        let json = out.metrics_json(None);
        assert!(json.starts_with("{\"schema\":1,"), "{json}");
    }
}
