//! The four abstract configurations of Figure 4 and analysis options.

use acspec_predabs::mine::Abstraction;
use acspec_predabs::normalize::PruneConfig;
use acspec_vcgen::analyzer::AnalyzerConfig;

/// The named abstract configurations (Figure 4): the product of the
/// *ignore conditionals* and *havoc returns* abstractions. Arrows flow
/// from higher precision to lower: `Conc → A0/A1 → A2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ConfigName {
    /// Neither abstraction: concrete SIBs (§4.4.1).
    Conc,
    /// Havoc returns only (§4.4.3).
    A0,
    /// Ignore conditionals only (§4.4.2).
    A1,
    /// Both abstractions (coarsest).
    A2,
}

impl ConfigName {
    /// The corresponding vocabulary abstraction.
    pub fn abstraction(self) -> Abstraction {
        match self {
            ConfigName::Conc => Abstraction {
                ignore_conditionals: false,
                havoc_returns: false,
            },
            ConfigName::A0 => Abstraction {
                ignore_conditionals: false,
                havoc_returns: true,
            },
            ConfigName::A1 => Abstraction {
                ignore_conditionals: true,
                havoc_returns: false,
            },
            ConfigName::A2 => Abstraction {
                ignore_conditionals: true,
                havoc_returns: true,
            },
        }
    }

    /// True if `self` is at least as precise as `other` in the Figure 4
    /// lattice (fewer abstractions enabled).
    pub fn at_least_as_precise_as(self, other: ConfigName) -> bool {
        let a = self.abstraction();
        let b = other.abstraction();
        (!a.ignore_conditionals || b.ignore_conditionals) && (!a.havoc_returns || b.havoc_returns)
    }

    /// All four configurations, most precise first.
    pub fn all() -> [ConfigName; 4] {
        [
            ConfigName::Conc,
            ConfigName::A0,
            ConfigName::A1,
            ConfigName::A2,
        ]
    }
}

impl std::fmt::Display for ConfigName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigName::Conc => write!(f, "Conc"),
            ConfigName::A0 => write!(f, "A0"),
            ConfigName::A1 => write!(f, "A1"),
            ConfigName::A2 => write!(f, "A2"),
        }
    }
}

/// The metric deciding when a specification is "too strong" (§2.3: the
/// definition of `Dead` is a parameter of the analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeadMetric {
    /// Branch coverage (the paper's default): a specification is too
    /// strong if some tracked location becomes unreachable.
    #[default]
    BranchCoverage,
    /// Path coverage (the paper's named alternative): a specification is
    /// too strong if some *path profile* feasible under `true` becomes
    /// infeasible. Strictly more sensitive than branch coverage. The cap
    /// bounds profile enumeration (exceeding it counts as a timeout).
    PathCoverage {
        /// Maximum number of path profiles to enumerate per query.
        max_profiles: usize,
    },
}

/// Options for a full ACSpec analysis of one procedure.
#[derive(Debug, Clone, Copy)]
pub struct AcspecOptions {
    /// The abstract configuration.
    pub config: ConfigName,
    /// The dead-code metric (§2.3).
    pub dead_metric: DeadMetric,
    /// Clause pruning (§4.3); `PruneConfig::default()` keeps everything.
    pub prune: PruneConfig,
    /// Whether to run `Normalize` before pruning (ablation knob; the
    /// paper always normalizes).
    pub apply_normalize: bool,
    /// Analyzer budget (the 10-second-timeout stand-in).
    pub analyzer: AnalyzerConfig,
    /// Cap on `|Q|`; larger vocabularies time out (ALL-SAT is 2^|Q|).
    pub max_predicates: usize,
    /// Cap on the number of cover clauses enumerated by ALL-SAT.
    pub max_cover_clauses: usize,
    /// Cap on clause subsets visited by Algorithm 2.
    pub max_search_nodes: usize,
    /// Cap on the clause-set size during `Normalize`.
    pub normalize_max_clauses: usize,
}

impl Default for AcspecOptions {
    fn default() -> Self {
        AcspecOptions {
            config: ConfigName::Conc,
            dead_metric: DeadMetric::BranchCoverage,
            prune: PruneConfig::default(),
            apply_normalize: true,
            analyzer: AnalyzerConfig::default(),
            max_predicates: 12,
            max_cover_clauses: 512,
            max_search_nodes: 3_000,
            normalize_max_clauses: 1_024,
        }
    }
}

impl AcspecOptions {
    /// Options for a named configuration with defaults elsewhere.
    pub fn for_config(config: ConfigName) -> AcspecOptions {
        AcspecOptions {
            config,
            ..AcspecOptions::default()
        }
    }

    /// Sets `k`-clause pruning (§4.3, Figure 6's `k = 3, 2, 1` columns).
    #[must_use]
    pub fn with_k_pruning(mut self, k: usize) -> AcspecOptions {
        self.prune.max_literals = Some(k);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_order_matches_figure4() {
        use ConfigName::*;
        assert!(Conc.at_least_as_precise_as(A0));
        assert!(Conc.at_least_as_precise_as(A1));
        assert!(Conc.at_least_as_precise_as(A2));
        assert!(A0.at_least_as_precise_as(A2));
        assert!(A1.at_least_as_precise_as(A2));
        assert!(!A0.at_least_as_precise_as(A1));
        assert!(!A1.at_least_as_precise_as(A0));
        assert!(!A2.at_least_as_precise_as(Conc));
        for c in ConfigName::all() {
            assert!(c.at_least_as_precise_as(c));
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(ConfigName::Conc.to_string(), "Conc");
        assert_eq!(ConfigName::A2.to_string(), "A2");
    }
}
