//! The persistent result store's session-facing layer: cache keys,
//! the payload codec, and the shared [`StoreSession`] handle
//! (DESIGN.md §4.9).
//!
//! [`acspec_store`] knows nothing about reports — it moves validated
//! byte payloads. This module gives those bytes meaning: a payload is a
//! compact JSON document carrying one procedure's `Cons` baseline, the
//! per-config/per-variant report matrix, the certificate fragment (when
//! the run certified), and the dominance-cache antichains for
//! warm-starting future sessions.
//!
//! ## Byte identity
//!
//! A warm hit must re-emit *byte-identical* reports, so the codec never
//! stores anything lossily:
//!
//! * stage seconds are stored as `f64::to_bits()` (the vendored JSON
//!   parser round-trips `u64` exactly; a decimal rendering would not
//!   round-trip the float);
//! * specifications are stored in surface syntax and re-parsed with
//!   [`parse_formula`]; [`encode_analysis`] refuses to cache any
//!   procedure whose rendered specs do not round-trip (so a warm run
//!   can never drift);
//! * certificates are stored as the pre-rendered per-procedure JSON
//!   fragment ([`crate::certs::proc_certs_json`]) and reassembled with
//!   [`crate::certs::certs_json_from_fragments`], identical by
//!   construction;
//! * before saving, [`encode_analysis`] decodes its own output and
//!   verifies the reconstruction renders byte-identically — a payload
//!   that fails the self-check is simply not cached.
//!
//! ## Keys
//!
//! [`entry_key`] mixes the procedure's content fingerprint
//! ([`crate::fingerprint::procedure_fingerprint`]) with an options
//! digest ([`options_digest`]): any change to the analysis template —
//! configuration ladder, prune variants, budgets, chaos seeding,
//! certification — addresses different entries. Thread count is
//! deliberately excluded (output is thread-count-invariant).

use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::sync::Mutex;

use acspec_ir::expr::Formula;
use acspec_ir::parse::parse_formula;
use acspec_ir::stmt::AssertId;
use acspec_predabs::normalize::PruneConfig;
use acspec_smt::{SolverCounters, TermId};
use acspec_store::{sha256_hex, CorruptionKind, LoadResult, ResultStore, StoreStats};
use acspec_vcgen::cache::CacheSnapshot;
use acspec_vcgen::chaos::{ChaosConfig, ChaosStoreStats};
use acspec_vcgen::stage::{Stage, StageTable};
use serde_json::Value;

use crate::certs::esc;
use crate::config::{AcspecOptions, ConfigName};
use crate::report::{
    AnalysisOutcome, Fallback, ProcReport, ProcStats, ReportLabel, SibStatus, Warning, Witness,
    REPORT_SCHEMA_VERSION,
};
use crate::session::ProcAnalysis;

/// Version of the *payload* layout (inside the store's checksummed
/// envelope, whose own version is
/// [`acspec_store::STORE_SCHEMA_VERSION`]). Mixed into [`entry_key`] and
/// stamped into every payload: a layout change makes old entries
/// unaddressable *and* undecodable, so stale stores degrade to misses,
/// never to misreads.
pub const PERSIST_VERSION: u32 = 1;

/// The content-addressed key of one procedure's entry: SHA-256 over the
/// procedure fingerprint and the options digest.
pub fn entry_key(fingerprint: &str, options: &str) -> String {
    sha256_hex(
        format!("acspec-entry v{PERSIST_VERSION}\nfingerprint {fingerprint}\noptions {options}")
            .as_bytes(),
    )
}

/// Digest of everything about the analysis *request* (as opposed to the
/// program) that a stored result depends on. Thread count is excluded:
/// reports are deterministic across `--threads`. The search-worker
/// budget (`--search-threads`) is excluded for the same reason —
/// portfolio races and cube workers merge deterministically, so a warm
/// store recorded under one budget replays under any other. (The
/// `portfolio`/`cube_split`/`restart_base` *analyzer* knobs, by
/// contrast, can change query counts or witness models and are digested
/// via `base.analyzer`'s `Debug` form.)
pub fn options_digest(
    base: &AcspecOptions,
    configs: &[ConfigName],
    prune_variants: &[PruneConfig],
    skip_correct: bool,
    certify: bool,
) -> String {
    let mut text = format!("acspec-options v{PERSIST_VERSION}\n");
    let _ = writeln!(text, "base {base:?}");
    let _ = writeln!(text, "configs {configs:?}");
    let _ = writeln!(text, "prune_variants {prune_variants:?}");
    let _ = writeln!(text, "skip_correct {skip_correct}");
    let _ = writeln!(text, "certify {certify}");
    sha256_hex(text.as_bytes())
}

// ---------------------------------------------------------------------
// Encoding (hand-emitted compact JSON; the vendored serde_json `Value`
// has no serializer, and the repo's certificate sidecars already use
// this idiom — see `certs.rs`).
// ---------------------------------------------------------------------

/// `esc` escapes content only; JSON string literals need the quotes.
fn quoted(s: &str) -> String {
    format!("\"{}\"", esc(s))
}

fn push_witness(out: &mut String, w: &Witness) {
    out.push('{');
    let mut first = true;
    for (name, value) in w.iter() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{}:{}", quoted(name), value);
    }
    out.push('}');
}

fn push_warning(out: &mut String, w: &Warning) {
    let _ = write!(
        out,
        "{{\"assert\":{},\"tag\":{},\"witness\":",
        w.assert.0,
        quoted(&w.tag)
    );
    match &w.witness {
        Some(witness) => push_witness(out, witness),
        None => out.push_str("null"),
    }
    out.push('}');
}

fn push_stats(out: &mut String, s: &ProcStats) {
    let _ = write!(
        out,
        "{{\"n_predicates\":{},\"n_cover_clauses\":{},\"search_nodes\":{},\"solver_queries\":{},\"smt\":[{},{},{},{}],\"stages\":[",
        s.n_predicates,
        s.n_cover_clauses,
        s.search_nodes,
        s.solver_queries,
        s.smt.conflicts,
        s.smt.decisions,
        s.smt.propagations,
        s.smt.theory_conflicts,
    );
    let mut first = true;
    for stage in Stage::ALL {
        if !first {
            out.push(',');
        }
        first = false;
        let m = s.stages.get(stage);
        let _ = write!(out, "[{},{}]", m.seconds.to_bits(), m.queries);
    }
    out.push_str("]}");
}

/// Renders one report. Returns `None` when a specification's surface
/// rendering does not parse back to the same rendering — such a report
/// cannot be reconstructed byte-identically, so it is never cached.
fn push_report(out: &mut String, r: &ProcReport) -> Option<()> {
    let _ = write!(
        out,
        "{{\"config\":{},\"status\":\"{}\"",
        quoted(&r.config.to_string()),
        match r.status {
            SibStatus::Correct => "Correct",
            SibStatus::Sib => "Sib",
            SibStatus::MayBug => "MayBug",
        }
    );
    out.push_str(",\"warnings\":[");
    for (i, w) in r.warnings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_warning(out, w);
    }
    out.push_str("],\"specs\":[");
    for (i, spec) in r.specs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let rendered = spec.to_string();
        let reparsed = parse_formula(&rendered).ok()?;
        if reparsed.to_string() != rendered {
            return None;
        }
        out.push_str(&quoted(&rendered));
    }
    let _ = write!(out, "],\"min_fail\":{},\"stats\":", r.min_fail);
    push_stats(out, &r.stats);
    out.push_str(",\"outcome\":");
    match r.outcome {
        AnalysisOutcome::Ok => out.push_str("[\"ok\"]"),
        AnalysisOutcome::TimedOut => out.push_str("[\"timed_out\"]"),
        AnalysisOutcome::Degraded {
            from_stage,
            fallback,
        } => {
            let _ = write!(
                out,
                "[\"degraded\",\"{}\",\"{}\"]",
                from_stage.name(),
                fallback.name()
            );
        }
    }
    out.push_str(",\"timeout_stage\":");
    match r.timeout_stage {
        Some(stage) => {
            let _ = write!(out, "\"{}\"", stage.name());
        }
        None => out.push_str("null"),
    }
    out.push('}');
    Some(())
}

fn push_snapshot(out: &mut String, snap: &CacheSnapshot) {
    let push_side = |out: &mut String, side: &[Vec<TermId>]| {
        out.push('[');
        for (i, entry) in side.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            for (j, t) in entry.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}", t.0);
            }
            out.push(']');
        }
        out.push(']');
    };
    out.push_str("{\"sat\":");
    push_side(out, &snap.sat);
    out.push_str(",\"unsat\":");
    push_side(out, &snap.unsat);
    out.push('}');
}

/// Serializes everything a warm run needs to re-emit `pa`'s reports
/// byte-identically.
///
/// Returns `None` when the analysis cannot be round-tripped (a spec
/// rendering that does not re-parse, or the decode self-check fails) —
/// the caller simply skips caching. Never returns bytes that would
/// decode to anything but `pa`'s exact reports.
pub fn encode_analysis(pa: &ProcAnalysis) -> Option<Vec<u8>> {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"persist\":{PERSIST_VERSION},\"report_schema\":{REPORT_SCHEMA_VERSION},\"proc_name\":{}",
        quoted(&pa.proc_name)
    );
    out.push_str(",\"cons\":");
    push_report(&mut out, &pa.cons)?;
    out.push_str(",\"reports\":[");
    for (i, per_config) in pa.reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, r) in per_config.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            push_report(&mut out, r)?;
        }
        out.push(']');
    }
    out.push_str("],\"certs\":");
    match &pa.certs_fragment {
        Some(fragment) => out.push_str(&quoted(fragment)),
        None => out.push_str("null"),
    }
    out.push_str(",\"antichains\":");
    match &pa.antichains {
        Some(snap) => push_snapshot(&mut out, snap),
        None => out.push_str("null"),
    }
    out.push('}');

    // Self-check: decode our own bytes and insist the reconstruction
    // renders byte-identically. Anything else is not cached.
    let decoded = decode_analysis(out.as_bytes())?;
    if !round_trips(pa, &decoded) {
        return None;
    }
    Some(out.into_bytes())
}

fn round_trips(cold: &ProcAnalysis, warm: &ProcAnalysis) -> bool {
    cold.proc_name == warm.proc_name
        && cold.cons.to_json() == warm.cons.to_json()
        && cold.reports.len() == warm.reports.len()
        && cold
            .reports
            .iter()
            .flatten()
            .map(ProcReport::to_json)
            .eq(warm.reports.iter().flatten().map(ProcReport::to_json))
        && cold
            .reports
            .iter()
            .map(Vec::len)
            .eq(warm.reports.iter().map(Vec::len))
        && cold.certs_fragment == warm.certs_fragment
        && cold.antichains == warm.antichains
}

// ---------------------------------------------------------------------
// Decoding (via the vendored serde_json parser).
// ---------------------------------------------------------------------

fn get_u64(v: &Value, field: &str) -> Option<u64> {
    v.get(field)?.as_u64()
}

fn stage_from_name(name: &str) -> Option<Stage> {
    Stage::ALL.iter().copied().find(|s| s.name() == name)
}

fn fallback_from_name(name: &str) -> Option<Fallback> {
    [
        Fallback::PartialEvaluation,
        Fallback::BestCandidate,
        Fallback::CappedCover,
        Fallback::ConsScreen,
    ]
    .into_iter()
    .find(|f| f.name() == name)
}

fn label_from_name(name: &str) -> Option<ReportLabel> {
    match name {
        "Cons" => Some(ReportLabel::Cons),
        "Conc" => Some(ReportLabel::Config(ConfigName::Conc)),
        "A0" => Some(ReportLabel::Config(ConfigName::A0)),
        "A1" => Some(ReportLabel::Config(ConfigName::A1)),
        "A2" => Some(ReportLabel::Config(ConfigName::A2)),
        _ => None,
    }
}

fn witness_from(v: &Value) -> Option<Witness> {
    let obj = v.as_object()?;
    let mut values = std::collections::BTreeMap::new();
    for (name, value) in obj {
        values.insert(name.clone(), value.as_i64()?);
    }
    Some(Witness::new(values))
}

fn warning_from(v: &Value) -> Option<Warning> {
    let assert = u32::try_from(get_u64(v, "assert")?).ok()?;
    let tag = v.get("tag")?.as_str()?.to_string();
    let witness = match v.get("witness")? {
        Value::Null => None,
        w => Some(witness_from(w)?),
    };
    Some(Warning {
        assert: AssertId(assert),
        tag,
        witness,
    })
}

fn stats_from(v: &Value) -> Option<ProcStats> {
    let mut smt = SolverCounters::default();
    let smt_v = v.get("smt")?.as_array()?;
    if smt_v.len() != 4 {
        return None;
    }
    smt.conflicts = smt_v[0].as_u64()?;
    smt.decisions = smt_v[1].as_u64()?;
    smt.propagations = smt_v[2].as_u64()?;
    smt.theory_conflicts = smt_v[3].as_u64()?;
    let stages_v = v.get("stages")?.as_array()?;
    if stages_v.len() != Stage::ALL.len() {
        return None;
    }
    let mut stages = StageTable::default();
    for (stage, entry) in Stage::ALL.iter().zip(stages_v) {
        let pair = entry.as_array()?;
        if pair.len() != 2 {
            return None;
        }
        let seconds = f64::from_bits(pair[0].as_u64()?);
        let queries = pair[1].as_u64()?;
        stages.record(*stage, seconds, queries);
    }
    Some(ProcStats {
        n_predicates: usize::try_from(get_u64(v, "n_predicates")?).ok()?,
        n_cover_clauses: usize::try_from(get_u64(v, "n_cover_clauses")?).ok()?,
        search_nodes: usize::try_from(get_u64(v, "search_nodes")?).ok()?,
        solver_queries: get_u64(v, "solver_queries")?,
        stages,
        smt,
    })
}

fn report_from(v: &Value, proc_name: &str) -> Option<ProcReport> {
    let config = label_from_name(v.get("config")?.as_str()?)?;
    let status = match v.get("status")?.as_str()? {
        "Correct" => SibStatus::Correct,
        "Sib" => SibStatus::Sib,
        "MayBug" => SibStatus::MayBug,
        _ => return None,
    };
    let warnings = v
        .get("warnings")?
        .as_array()?
        .iter()
        .map(warning_from)
        .collect::<Option<Vec<_>>>()?;
    let specs = v
        .get("specs")?
        .as_array()?
        .iter()
        .map(|s| parse_formula(s.as_str()?).ok())
        .collect::<Option<Vec<Formula>>>()?;
    let outcome_v = v.get("outcome")?.as_array()?;
    let outcome = match outcome_v.first()?.as_str()? {
        "ok" => AnalysisOutcome::Ok,
        "timed_out" => AnalysisOutcome::TimedOut,
        "degraded" => AnalysisOutcome::Degraded {
            from_stage: stage_from_name(outcome_v.get(1)?.as_str()?)?,
            fallback: fallback_from_name(outcome_v.get(2)?.as_str()?)?,
        },
        _ => return None,
    };
    let timeout_stage = match v.get("timeout_stage")? {
        Value::Null => None,
        s => Some(stage_from_name(s.as_str()?)?),
    };
    Some(ProcReport {
        proc_name: proc_name.to_string(),
        config,
        status,
        warnings,
        specs,
        min_fail: usize::try_from(get_u64(v, "min_fail")?).ok()?,
        stats: stats_from(v.get("stats")?)?,
        outcome,
        timeout_stage,
    })
}

fn snapshot_from(v: &Value) -> Option<CacheSnapshot> {
    let side = |v: &Value| -> Option<Vec<Vec<TermId>>> {
        v.as_array()?
            .iter()
            .map(|entry| {
                entry
                    .as_array()?
                    .iter()
                    .map(|t| Some(TermId(u32::try_from(t.as_u64()?).ok()?)))
                    .collect()
            })
            .collect()
    };
    Some(CacheSnapshot {
        sat: side(v.get("sat")?)?,
        unsat: side(v.get("unsat")?)?,
    })
}

/// Reconstructs a [`ProcAnalysis`] from a validated payload. Returns
/// `None` on any structural surprise (wrong payload version, unknown
/// names, missing fields) — callers treat that as a cache miss and
/// recompute; a `None` can never alter a verdict.
///
/// The reconstruction is marked [`ProcAnalysis::from_store`] and
/// carries empty stage/query event logs: a warm procedure genuinely
/// issued zero solver queries, and stage accounting reflects that.
pub fn decode_analysis(bytes: &[u8]) -> Option<ProcAnalysis> {
    let text = std::str::from_utf8(bytes).ok()?;
    let v: Value = serde_json::from_str(text).ok()?;
    if get_u64(&v, "persist")? != u64::from(PERSIST_VERSION)
        || get_u64(&v, "report_schema")? != u64::from(REPORT_SCHEMA_VERSION)
    {
        return None;
    }
    let proc_name = v.get("proc_name")?.as_str()?.to_string();
    let cons = report_from(v.get("cons")?, &proc_name)?;
    let reports = v
        .get("reports")?
        .as_array()?
        .iter()
        .map(|per_config| {
            per_config
                .as_array()?
                .iter()
                .map(|r| report_from(r, &proc_name))
                .collect()
        })
        .collect::<Option<Vec<Vec<ProcReport>>>>()?;
    let certs_fragment = match v.get("certs")? {
        Value::Null => None,
        s => Some(s.as_str()?.to_string()),
    };
    let antichains = match v.get("antichains")? {
        Value::Null => None,
        s => Some(snapshot_from(s)?),
    };
    Some(ProcAnalysis {
        proc_name,
        cons,
        reports,
        events: Vec::new(),
        queries: Vec::new(),
        certs: None,
        from_store: true,
        incidents: Vec::new(),
        certs_fragment,
        antichains,
    })
}

// ---------------------------------------------------------------------
// The shared session handle.
// ---------------------------------------------------------------------

/// What the store contributed for one procedure's dispatch.
#[derive(Debug)]
pub enum StoreOutcome {
    /// Warm hit: the reconstructed analysis (zero solver queries).
    Hit(Box<ProcAnalysis>),
    /// No usable entry; run cold (an undecodable-but-checksummed payload
    /// also lands here — it will be overwritten by the fresh save).
    Miss,
    /// The entry failed validation and was quarantined; run cold and
    /// surface a `StoreCorruption` incident.
    Corrupt(CorruptionKind),
}

/// A thread-safe [`ResultStore`] handle shared across an analysis
/// fan-out. Store I/O is brief (one read or one write per procedure)
/// relative to analysis, so a single mutex is not a contention point.
#[derive(Debug)]
pub struct StoreSession {
    inner: Mutex<ResultStore>,
}

impl StoreSession {
    /// Opens (creating if needed) the store at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<StoreSession> {
        Ok(StoreSession {
            inner: Mutex::new(ResultStore::open(dir.as_ref())?),
        })
    }

    /// Opens the store with an I/O chaos harness installed (`None`
    /// behaves exactly like [`StoreSession::open`]).
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open_with_chaos(
        dir: impl AsRef<Path>,
        chaos: Option<ChaosConfig>,
    ) -> io::Result<StoreSession> {
        let mut store = ResultStore::open(dir.as_ref())?;
        if let Some(config) = chaos {
            store = store.with_chaos(config);
        }
        Ok(StoreSession {
            inner: Mutex::new(store),
        })
    }

    /// Loads and decodes the entry for `key`, validating it names
    /// `proc_name` (a different name under the same key would mean a
    /// fingerprint collision; the entry is ignored).
    pub fn fetch(&self, key: &str, proc_name: &str) -> StoreOutcome {
        let result = self.inner.lock().expect("store lock").load(key);
        match result {
            LoadResult::Hit(bytes) => match decode_analysis(&bytes) {
                Some(pa) if pa.proc_name == proc_name => StoreOutcome::Hit(Box::new(pa)),
                _ => StoreOutcome::Miss,
            },
            LoadResult::Miss => StoreOutcome::Miss,
            LoadResult::Corrupt { kind, .. } => StoreOutcome::Corrupt(kind),
        }
    }

    /// Encodes and saves `pa` under `key`. Quietly does nothing when the
    /// analysis is not round-trippable; save I/O errors (including
    /// injected `ENOSPC`) are absorbed into
    /// [`StoreStats::save_errors`] — persistence is an optimization,
    /// never a correctness dependency.
    pub fn put(&self, key: &str, pa: &ProcAnalysis) {
        if let Some(bytes) = encode_analysis(pa) {
            let _ = self.inner.lock().expect("store lock").save(key, &bytes);
        }
    }

    /// Counter/histogram snapshot.
    pub fn stats(&self) -> StoreStats {
        self.inner.lock().expect("store lock").stats().clone()
    }

    /// Chaos-injection counters (zero when no harness is installed).
    pub fn chaos_stats(&self) -> ChaosStoreStats {
        self.inner.lock().expect("store lock").chaos_stats()
    }

    /// Number of quarantined entries on disk.
    pub fn quarantine_count(&self) -> usize {
        self.inner.lock().expect("store lock").quarantine_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{NullObserver, ProgramAnalysis};
    use acspec_ir::parse::parse_program;

    fn analyzed(src: &str) -> Vec<ProcAnalysis> {
        let prog = parse_program(src).expect("parses");
        ProgramAnalysis::new(&prog)
            .threads(1)
            .run(&mut NullObserver)
            .into_iter()
            .map(|o| o.into_analysis().expect("no incidents"))
            .collect()
    }

    #[test]
    fn encode_decode_is_byte_stable() {
        let analyses = analyzed(
            "procedure f(x: int) { if (x == 0) { assert x != 0; } }
             procedure ok(x: int) { assume x > 0; assert x > 0; }",
        );
        for pa in &analyses {
            let bytes = encode_analysis(pa).expect("encodable");
            let warm = decode_analysis(&bytes).expect("decodable");
            assert!(warm.from_store);
            assert!(warm.events.is_empty() && warm.queries.is_empty());
            assert_eq!(pa.cons.to_json(), warm.cons.to_json());
            let cold: Vec<String> = pa
                .reports
                .iter()
                .flatten()
                .map(ProcReport::to_json)
                .collect();
            let reheated: Vec<String> = warm
                .reports
                .iter()
                .flatten()
                .map(ProcReport::to_json)
                .collect();
            assert_eq!(cold, reheated);
            // Encoding the reconstruction reproduces the exact bytes.
            assert_eq!(encode_analysis(&warm).expect("encodable"), bytes);
        }
    }

    #[test]
    fn version_skew_and_junk_decode_to_none() {
        let pa = &analyzed("procedure f(x: int) { assert x != 0; }")[0];
        let bytes = encode_analysis(pa).expect("encodable");
        let text = String::from_utf8(bytes).expect("utf8");
        let skewed = text.replace("\"persist\":1", "\"persist\":999");
        assert!(decode_analysis(skewed.as_bytes()).is_none());
        assert!(decode_analysis(b"not json").is_none());
        assert!(decode_analysis(b"{\"persist\":1}").is_none());
    }

    #[test]
    fn options_digest_separates_requests_and_ignores_nothing_relevant() {
        let base = AcspecOptions::default();
        let d1 = options_digest(&base, &[ConfigName::Conc], &[], true, false);
        let d2 = options_digest(&base, &[ConfigName::Conc, ConfigName::A1], &[], true, false);
        let d3 = options_digest(&base, &[ConfigName::Conc], &[], true, true);
        let mut tighter = base;
        tighter.analyzer.conflict_budget = Some(7);
        let d4 = options_digest(&tighter, &[ConfigName::Conc], &[], true, false);
        assert_ne!(d1, d2);
        assert_ne!(d1, d3);
        assert_ne!(d1, d4);
        assert_eq!(
            d1,
            options_digest(&base, &[ConfigName::Conc], &[], true, false)
        );
    }

    #[test]
    fn entry_keys_mix_fingerprint_and_options() {
        let a = entry_key("aa", "oo");
        assert_ne!(a, entry_key("ab", "oo"));
        assert_ne!(a, entry_key("aa", "op"));
        assert_eq!(a.len(), 64);
    }
}
