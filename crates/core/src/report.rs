//! Warning reports produced by the analysis.

use std::collections::BTreeMap;

use acspec_ir::expr::Formula;
use acspec_ir::stmt::AssertId;
use acspec_smt::SolverCounters;
use acspec_vcgen::stage::{Stage, StageTable};
use serde::ser::{SerializeMap, SerializeStruct};
use serde::{Serialize, Serializer};

use crate::config::ConfigName;

/// Schema version stamped into every report JSON document (per-report
/// and program-level). Bump whenever a field is added, removed, or
/// changes meaning, so downstream consumers can detect incompatible
/// producers instead of silently misreading them.
///
/// History: `1` — the implicit pre-versioning schema (no
/// `schema_version` field); `2` — adds `schema_version`, the
/// `Degraded` outcome, and program-level `incidents`; `3` — adds the
/// program-level `certs_ref` sidecar reference (the `--certs-out`
/// certificate document, re-validated by `acspec check`).
pub const REPORT_SCHEMA_VERSION: u32 = 3;

/// The SIB classification of Algorithm 1's `s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SibStatus {
    /// The procedure is correct under the demonic environment: no
    /// assertion can fail at all (the conservative verifier labels it
    /// correct; the paper excludes these from its statistics).
    Correct,
    /// `Dead(β_Q(wp)) ≠ ∅`: an (abstract) semantic inconsistency bug.
    Sib,
    /// No abstract SIB; any warnings are low-confidence (`MAYBUG`).
    MayBug,
}

impl std::fmt::Display for SibStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SibStatus::Correct => write!(f, "CORRECT"),
            SibStatus::Sib => write!(f, "SIB"),
            SibStatus::MayBug => write!(f, "MAYBUG"),
        }
    }
}

impl Serialize for SibStatus {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let name = match self {
            SibStatus::Correct => "Correct",
            SibStatus::Sib => "Sib",
            SibStatus::MayBug => "MayBug",
        };
        serializer.serialize_unit_variant("SibStatus", 0, name)
    }
}

/// What the degradation ladder salvaged when a stage ran out of budget
/// or deadline mid-pipeline, in decreasing order of fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Fallback {
    /// The evaluation stage was interrupted: the warnings already
    /// confirmed under the almost-correct specifications are kept
    /// (a prefix of the full warning set).
    PartialEvaluation,
    /// Algorithm 2's best candidate weakening at the point of
    /// interruption: dead-free clause subsets achieving the best
    /// failure count seen so far.
    BestCandidate,
    /// The partial predicate cover enumerated before the clause cap or
    /// budget hit — a weaker screen than `β_Q(wp)`, reported as the
    /// specification with the demonic warnings.
    CappedCover,
    /// Only the shared demonic screen was available: warnings fall back
    /// to the conservative `Fail(true)` set (no witnesses).
    ConsScreen,
}

impl Fallback {
    /// Stable lowercase name (used in reports and JSON).
    pub fn name(self) -> &'static str {
        match self {
            Fallback::PartialEvaluation => "partial_evaluation",
            Fallback::BestCandidate => "best_candidate",
            Fallback::CappedCover => "capped_cover",
            Fallback::ConsScreen => "cons_screen",
        }
    }
}

impl std::fmt::Display for Fallback {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether the analysis completed within budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalysisOutcome {
    /// Completed.
    Ok,
    /// Budget exhausted with nothing to salvage (counted in the paper's
    /// "TO" columns).
    TimedOut,
    /// Budget or deadline exhausted mid-pipeline, but the degradation
    /// ladder salvaged a best-effort result. Counted as a timeout in
    /// the paper's "TO" columns (the run did not complete), but the
    /// report carries the salvaged warnings instead of nothing.
    Degraded {
        /// The stage that was interrupted.
        from_stage: Stage,
        /// What the report's warnings/specs were salvaged from.
        fallback: Fallback,
    },
}

impl Serialize for AnalysisOutcome {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            AnalysisOutcome::Ok => serializer.serialize_unit_variant("AnalysisOutcome", 0, "Ok"),
            AnalysisOutcome::TimedOut => {
                serializer.serialize_unit_variant("AnalysisOutcome", 1, "TimedOut")
            }
            AnalysisOutcome::Degraded {
                from_stage,
                fallback,
            } => {
                // The vendored serde has no struct-variant support;
                // render the serde-conventional externally-tagged form
                // `{"Degraded": {...}}` as a one-entry map.
                struct Inner {
                    from_stage: Stage,
                    fallback: Fallback,
                }
                impl Serialize for Inner {
                    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                        let mut st = s.serialize_struct("Degraded", 2)?;
                        st.serialize_field("from_stage", self.from_stage.name())?;
                        st.serialize_field("fallback", self.fallback.name())?;
                        st.end()
                    }
                }
                let mut map = serializer.serialize_map(Some(1))?;
                map.serialize_entry(
                    "Degraded",
                    &Inner {
                        from_stage: *from_stage,
                        fallback: *fallback,
                    },
                )?;
                map.end()
            }
        }
    }
}

/// What a report describes: the conservative baseline (`Cons`, the
/// modular verifier of the evaluation's first column) or one of the
/// four abstract configurations. `Cons` is not a [`ConfigName`] — it is
/// not a point of the Figure 4 lattice but the unscreened demonic
/// baseline the configurations are measured against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ReportLabel {
    /// The conservative verifier baseline.
    Cons,
    /// An abstract configuration of Figure 4.
    Config(ConfigName),
}

impl ReportLabel {
    /// The configuration, unless this is the `Cons` baseline.
    pub fn config(self) -> Option<ConfigName> {
        match self {
            ReportLabel::Cons => None,
            ReportLabel::Config(c) => Some(c),
        }
    }

    /// True for the `Cons` baseline.
    pub fn is_cons(self) -> bool {
        self == ReportLabel::Cons
    }
}

impl From<ConfigName> for ReportLabel {
    fn from(c: ConfigName) -> Self {
        ReportLabel::Config(c)
    }
}

impl PartialEq<ConfigName> for ReportLabel {
    fn eq(&self, other: &ConfigName) -> bool {
        self.config() == Some(*other)
    }
}

impl std::fmt::Display for ReportLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportLabel::Cons => write!(f, "Cons"),
            ReportLabel::Config(c) => write!(f, "{c}"),
        }
    }
}

impl Serialize for ReportLabel {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

/// A concrete environment witness: input values (including ν-constants)
/// under which the warned assertion fails within the almost-correct
/// specification. Structured so downstream tooling can read values
/// directly; [`std::fmt::Display`] renders the historical
/// `name = value, …` form.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Witness {
    values: BTreeMap<String, i64>,
}

impl Witness {
    /// Wraps an input-environment assignment.
    pub fn new(values: BTreeMap<String, i64>) -> Witness {
        Witness { values }
    }

    /// The value assigned to `name`, if any.
    pub fn get(&self, name: &str) -> Option<i64> {
        self.values.get(name).copied()
    }

    /// `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, i64)> {
        self.values.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// True when no input values were recovered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl From<BTreeMap<String, i64>> for Witness {
    fn from(values: BTreeMap<String, i64>) -> Self {
        Witness { values }
    }
}

impl std::fmt::Display for Witness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for (name, value) in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{name} = {value}")?;
        }
        Ok(())
    }
}

impl Serialize for Witness {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.values.len()))?;
        for (name, value) in &self.values {
            map.serialize_entry(name, value)?;
        }
        map.end()
    }
}

/// A single reported warning.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Warning {
    /// The failing assertion.
    pub assert: AssertId,
    /// Its provenance tag (e.g. `deref *p@12`).
    pub tag: String,
    /// A concrete environment witness, when available.
    pub witness: Option<Witness>,
}

/// Per-procedure statistics (Figure 9's `P`, `C`, `T` plus extras).
#[derive(Debug, Clone, Copy, Default)]
pub struct ProcStats {
    /// `|Q|` — predicates collected (Figure 9 column `P`).
    pub n_predicates: usize,
    /// Clauses in the predicate cover (Figure 9 column `C`).
    pub n_cover_clauses: usize,
    /// Clause subsets visited by Algorithm 2.
    pub search_nodes: usize,
    /// SMT queries issued.
    pub solver_queries: u64,
    /// Per-stage wall-clock/query breakdown (encode through evaluate).
    pub stages: StageTable,
    /// Aggregate SAT/theory work counters (conflicts, decisions,
    /// propagations, theory conflicts) for this report's queries —
    /// shared stages plus the configuration's delta, like `stages`.
    pub smt: SolverCounters,
}

impl ProcStats {
    /// Total wall-clock seconds across stages (Figure 9 column `T`).
    pub fn seconds(&self) -> f64 {
        self.stages.total_seconds()
    }
}

impl Serialize for ProcStats {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("ProcStats", 7)?;
        st.serialize_field("n_predicates", &self.n_predicates)?;
        st.serialize_field("n_cover_clauses", &self.n_cover_clauses)?;
        st.serialize_field("search_nodes", &self.search_nodes)?;
        st.serialize_field("solver_queries", &self.solver_queries)?;
        st.serialize_field("seconds", &self.seconds())?;
        struct SmtEntry(SolverCounters);
        impl Serialize for SmtEntry {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut st = serializer.serialize_struct("SmtEntry", 4)?;
                st.serialize_field("conflicts", &self.0.conflicts)?;
                st.serialize_field("decisions", &self.0.decisions)?;
                st.serialize_field("propagations", &self.0.propagations)?;
                st.serialize_field("theory_conflicts", &self.0.theory_conflicts)?;
                st.end()
            }
        }
        st.serialize_field("smt", &SmtEntry(self.smt))?;
        struct StageEntry {
            seconds: f64,
            queries: u64,
        }
        impl Serialize for StageEntry {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut st = serializer.serialize_struct("StageEntry", 2)?;
                st.serialize_field("seconds", &self.seconds)?;
                st.serialize_field("queries", &self.queries)?;
                st.end()
            }
        }
        let stages: BTreeMap<&str, StageEntry> = self
            .stages
            .iter()
            .filter(|(_, m)| m.queries > 0 || m.seconds > 0.0)
            .map(|(stage, m)| {
                (
                    stage.name(),
                    StageEntry {
                        seconds: m.seconds,
                        queries: m.queries,
                    },
                )
            })
            .collect();
        st.serialize_field("stages", &stages)?;
        st.end()
    }
}

/// The full analysis report for one procedure under one configuration
/// (or the `Cons` baseline).
#[derive(Debug, Clone)]
pub struct ProcReport {
    /// Procedure name.
    pub proc_name: String,
    /// What was analyzed: `Cons` or an abstract configuration.
    pub config: ReportLabel,
    /// SIB classification.
    pub status: SibStatus,
    /// High-confidence warnings: `E = Fail(Φ)` over the almost-correct
    /// specifications (after `Normalize`/`PruneClauses`).
    pub warnings: Vec<Warning>,
    /// The almost-correct specifications, rendered over `Q`.
    pub specs: Vec<Formula>,
    /// `MinFail` from the search (before pruning-induced weakening).
    pub min_fail: usize,
    /// Statistics.
    pub stats: ProcStats,
    /// Completion status.
    pub outcome: AnalysisOutcome,
    /// The stage whose budget exhaustion caused a timeout, when the
    /// outcome is [`AnalysisOutcome::TimedOut`] or
    /// [`AnalysisOutcome::Degraded`].
    pub timeout_stage: Option<Stage>,
}

impl ProcReport {
    /// True if the analysis did not run to completion — a bare timeout
    /// *or* a degraded (salvaged) result. Both count in the paper's
    /// "TO" columns: degradation changes what the report carries, not
    /// whether the run finished.
    pub fn timed_out(&self) -> bool {
        !matches!(self.outcome, AnalysisOutcome::Ok)
    }

    /// True if the degradation ladder salvaged this report.
    pub fn degraded(&self) -> bool {
        matches!(self.outcome, AnalysisOutcome::Degraded { .. })
    }

    /// Serializes the report as pretty-printed JSON (specifications and
    /// assertion ids are rendered in the surface syntax).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization is infallible")
    }
}

/// What kind of per-procedure failure an [`AnalysisIncident`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncidentKind {
    /// The procedure's session panicked (caught by the worker loop's
    /// `catch_unwind`).
    Panic,
    /// The session returned an [`AcspecError`](crate::AcspecError)
    /// (desugaring or encoding failed).
    Error,
    /// A persistent-store entry for this procedure failed validation
    /// (torn write, bit flip, or schema skew); it was quarantined and
    /// the procedure transparently recomputed. The verdict is unharmed
    /// — this incident exists so operators notice decaying storage.
    StoreCorruption,
}

impl IncidentKind {
    /// Stable lowercase name (used in reports and JSON).
    pub fn name(self) -> &'static str {
        match self {
            IncidentKind::Panic => "panic",
            IncidentKind::Error => "error",
            IncidentKind::StoreCorruption => "store_corruption",
        }
    }
}

impl std::fmt::Display for IncidentKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A per-procedure failure record: one procedure's session panicked or
/// errored, the rest of the program analysis carried on. Embedded in
/// the program report so a triage service can show *which* procedures
/// produced no verdict and why, instead of aborting the whole run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisIncident {
    /// The procedure whose session failed.
    pub proc_name: String,
    /// Panic or error.
    pub kind: IncidentKind,
    /// The pipeline stage active when the failure happened, when known.
    pub stage: Option<Stage>,
    /// The panic payload or error message.
    pub message: String,
}

impl std::fmt::Display for AnalysisIncident {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} in `{}`", self.kind, self.proc_name)?;
        if let Some(stage) = self.stage {
            write!(f, " during {stage}")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl Serialize for AnalysisIncident {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("AnalysisIncident", 4)?;
        st.serialize_field("proc_name", &self.proc_name)?;
        st.serialize_field("kind", self.kind.name())?;
        st.serialize_field("stage", &self.stage.map(Stage::name))?;
        st.serialize_field("message", &self.message)?;
        st.end()
    }
}

/// Assembles the program-level report document: schema version, the
/// per-procedure reports, and the incidents, as pretty-printed JSON.
/// This is the `acspec --format json` payload.
pub fn program_report_json(reports: &[&ProcReport], incidents: &[AnalysisIncident]) -> String {
    program_report_json_with(reports, incidents, None)
}

/// [`program_report_json`] with an optional `certs_ref`: the path of the
/// certificate sidecar (`--certs-out`) this report's verdicts are backed
/// by, stamped into the document so `acspec check` can locate it.
pub fn program_report_json_with(
    reports: &[&ProcReport],
    incidents: &[AnalysisIncident],
    certs_ref: Option<&str>,
) -> String {
    struct Doc<'a> {
        reports: &'a [&'a ProcReport],
        incidents: &'a [AnalysisIncident],
        certs_ref: Option<&'a str>,
    }
    impl Serialize for Doc<'_> {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            let n = 3 + usize::from(self.certs_ref.is_some());
            let mut st = serializer.serialize_struct("ProgramReport", n)?;
            st.serialize_field("schema_version", &REPORT_SCHEMA_VERSION)?;
            if let Some(path) = self.certs_ref {
                st.serialize_field("certs_ref", &path)?;
            }
            st.serialize_field("reports", &self.reports)?;
            st.serialize_field("incidents", &self.incidents)?;
            st.end()
        }
    }
    serde_json::to_string_pretty(&Doc {
        reports,
        incidents,
        certs_ref,
    })
    .expect("report serialization is infallible")
}

impl Serialize for Warning {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("Warning", 3)?;
        st.serialize_field("assert", &self.assert.to_string())?;
        st.serialize_field("tag", &self.tag)?;
        st.serialize_field("witness", &self.witness)?;
        st.end()
    }
}

impl Serialize for ProcReport {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("ProcReport", 10)?;
        st.serialize_field("schema_version", &REPORT_SCHEMA_VERSION)?;
        st.serialize_field("proc_name", &self.proc_name)?;
        st.serialize_field("config", &self.config)?;
        st.serialize_field("status", &self.status)?;
        st.serialize_field("warnings", &self.warnings)?;
        let specs: Vec<String> = self.specs.iter().map(Formula::to_string).collect();
        st.serialize_field("specs", &specs)?;
        st.serialize_field("min_fail", &self.min_fail)?;
        st.serialize_field("stats", &self.stats)?;
        st.serialize_field("outcome", &self.outcome)?;
        st.serialize_field("timeout_stage", &self.timeout_stage.map(Stage::name))?;
        st.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_to_json() {
        let report = ProcReport {
            proc_name: "Foo".into(),
            config: ReportLabel::Config(ConfigName::Conc),
            status: SibStatus::Sib,
            warnings: vec![Warning {
                assert: AssertId(4),
                tag: "pre:free@4".into(),
                witness: Some(Witness::new(BTreeMap::from([("c".to_string(), 1)]))),
            }],
            specs: vec![Formula::ne(
                acspec_ir::expr::Expr::var("c"),
                acspec_ir::expr::Expr::var("buf"),
            )],
            min_fail: 1,
            stats: ProcStats::default(),
            outcome: AnalysisOutcome::Ok,
            timeout_stage: None,
        };
        let json = report.to_json();
        assert!(json.contains("\"proc_name\": \"Foo\""), "{json}");
        assert!(json.contains("\"assert\": \"A5\""), "{json}");
        assert!(json.contains("\"c != buf\""), "{json}");
        assert!(json.contains("\"status\": \"Sib\""), "{json}");
        // Valid JSON round trip through serde_json's Value.
        let value: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(value["warnings"][0]["witness"]["c"], 1);
        // Forward-compat: the schema version is the first thing a
        // consumer can check. Pinned to the literal so a bump forces a
        // deliberate update here (and in the independent checker, whose
        // `SUPPORTED_SCHEMA_VERSION` tracks this constant).
        assert_eq!(value["schema_version"], 3);
        assert_eq!(u64::from(REPORT_SCHEMA_VERSION), 3);
    }

    #[test]
    fn degraded_outcome_serializes_stage_and_fallback() {
        let report = ProcReport {
            proc_name: "Foo".into(),
            config: ReportLabel::Config(ConfigName::A1),
            status: SibStatus::MayBug,
            warnings: vec![],
            specs: vec![],
            min_fail: 0,
            stats: ProcStats::default(),
            outcome: AnalysisOutcome::Degraded {
                from_stage: Stage::Search,
                fallback: Fallback::BestCandidate,
            },
            timeout_stage: Some(Stage::Search),
        };
        assert!(report.timed_out(), "degraded counts as a timeout");
        assert!(report.degraded());
        let value: serde_json::Value = serde_json::from_str(&report.to_json()).expect("valid JSON");
        assert_eq!(value["outcome"]["Degraded"]["from_stage"], "search");
        assert_eq!(value["outcome"]["Degraded"]["fallback"], "best_candidate");
        assert_eq!(value["timeout_stage"], "search");
    }

    #[test]
    fn program_report_carries_schema_version_and_incidents() {
        let incident = AnalysisIncident {
            proc_name: "Bad".into(),
            kind: IncidentKind::Panic,
            stage: Some(Stage::Cover),
            message: "chaos: injected panic before query 3".into(),
        };
        assert_eq!(
            incident.to_string(),
            "panic in `Bad` during cover: chaos: injected panic before query 3"
        );
        let json = program_report_json(&[], &[incident]);
        let value: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(value["schema_version"], 3);
        assert_eq!(value["reports"].as_array().map(Vec::len), Some(0));
        assert_eq!(value["incidents"][0]["kind"], "panic");
        assert_eq!(value["incidents"][0]["stage"], "cover");
        assert_eq!(value["incidents"][0]["proc_name"], "Bad");
    }

    #[test]
    fn labels_distinguish_cons_from_configs() {
        assert_eq!(ReportLabel::Cons.to_string(), "Cons");
        assert_eq!(ReportLabel::Config(ConfigName::Conc).to_string(), "Conc");
        assert_ne!(
            ReportLabel::Cons,
            ReportLabel::Config(ConfigName::Conc),
            "the baseline is not the concrete configuration"
        );
        assert!(ReportLabel::Cons.is_cons());
        assert_eq!(ReportLabel::Config(ConfigName::A1), ConfigName::A1);
        assert_eq!(ReportLabel::Cons.config(), None);
    }

    #[test]
    fn witness_renders_and_exposes_values() {
        let w = Witness::new(BTreeMap::from([
            ("cmd".to_string(), 1),
            ("p".to_string(), 0),
        ]));
        assert_eq!(w.to_string(), "cmd = 1, p = 0");
        assert_eq!(w.get("cmd"), Some(1));
        assert_eq!(w.get("missing"), None);
        assert_eq!(w.iter().count(), 2);
    }

    #[test]
    fn stats_seconds_totals_stages() {
        use acspec_vcgen::stage::Stage;
        let mut stats = ProcStats::default();
        stats.stages.record(Stage::Screen, 0.5, 3);
        stats.stages.record(Stage::Search, 0.25, 2);
        assert!((stats.seconds() - 0.75).abs() < 1e-9);
        assert_eq!(stats.stages.total_queries(), 5);
    }
}
