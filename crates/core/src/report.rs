//! Warning reports produced by the analysis.

use acspec_ir::expr::Formula;
use acspec_ir::stmt::AssertId;
use serde::ser::SerializeStruct;
use serde::{Serialize, Serializer};

use crate::config::ConfigName;

/// The SIB classification of Algorithm 1's `s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SibStatus {
    /// The procedure is correct under the demonic environment: no
    /// assertion can fail at all (the conservative verifier labels it
    /// correct; the paper excludes these from its statistics).
    Correct,
    /// `Dead(β_Q(wp)) ≠ ∅`: an (abstract) semantic inconsistency bug.
    Sib,
    /// No abstract SIB; any warnings are low-confidence (`MAYBUG`).
    MayBug,
}

impl std::fmt::Display for SibStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SibStatus::Correct => write!(f, "CORRECT"),
            SibStatus::Sib => write!(f, "SIB"),
            SibStatus::MayBug => write!(f, "MAYBUG"),
        }
    }
}

/// Whether the analysis completed within budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum AnalysisOutcome {
    /// Completed.
    Ok,
    /// Budget exhausted (counted in the paper's "TO" columns).
    TimedOut,
}

/// A single reported warning.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Warning {
    /// The failing assertion.
    pub assert: AssertId,
    /// Its provenance tag (e.g. `deref *p@12`).
    pub tag: String,
    /// A concrete environment witness (input values under which the
    /// assertion fails within the almost-correct specification), when
    /// available. Rendered as `name = value` pairs.
    pub witness: Option<String>,
}

/// Per-procedure statistics (Figure 9's `P`, `C`, `T` plus extras).
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct ProcStats {
    /// `|Q|` — predicates collected (Figure 9 column `P`).
    pub n_predicates: usize,
    /// Clauses in the predicate cover (Figure 9 column `C`).
    pub n_cover_clauses: usize,
    /// Clause subsets visited by Algorithm 2.
    pub search_nodes: usize,
    /// SMT queries issued.
    pub solver_queries: u64,
    /// Wall-clock seconds (Figure 9 column `T`).
    pub seconds: f64,
}

/// The full analysis report for one procedure under one configuration.
#[derive(Debug, Clone)]
pub struct ProcReport {
    /// Procedure name.
    pub proc_name: String,
    /// The abstract configuration analyzed.
    pub config: ConfigName,
    /// SIB classification.
    pub status: SibStatus,
    /// High-confidence warnings: `E = Fail(Φ)` over the almost-correct
    /// specifications (after `Normalize`/`PruneClauses`).
    pub warnings: Vec<Warning>,
    /// The almost-correct specifications, rendered over `Q`.
    pub specs: Vec<Formula>,
    /// `MinFail` from the search (before pruning-induced weakening).
    pub min_fail: usize,
    /// Statistics.
    pub stats: ProcStats,
    /// Completion status.
    pub outcome: AnalysisOutcome,
}

impl ProcReport {
    /// True if the analysis timed out.
    pub fn timed_out(&self) -> bool {
        self.outcome == AnalysisOutcome::TimedOut
    }

    /// Serializes the report as pretty-printed JSON (specifications and
    /// assertion ids are rendered in the surface syntax).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization is infallible")
    }
}

impl Serialize for Warning {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("Warning", 3)?;
        st.serialize_field("assert", &self.assert.to_string())?;
        st.serialize_field("tag", &self.tag)?;
        st.serialize_field("witness", &self.witness)?;
        st.end()
    }
}

impl Serialize for ProcReport {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("ProcReport", 8)?;
        st.serialize_field("proc_name", &self.proc_name)?;
        st.serialize_field("config", &self.config.to_string())?;
        st.serialize_field("status", &self.status)?;
        st.serialize_field("warnings", &self.warnings)?;
        let specs: Vec<String> = self.specs.iter().map(Formula::to_string).collect();
        st.serialize_field("specs", &specs)?;
        st.serialize_field("min_fail", &self.min_fail)?;
        st.serialize_field("stats", &self.stats)?;
        st.serialize_field("outcome", &self.outcome)?;
        st.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_to_json() {
        let report = ProcReport {
            proc_name: "Foo".into(),
            config: ConfigName::Conc,
            status: SibStatus::Sib,
            warnings: vec![Warning {
                assert: AssertId(4),
                tag: "pre:free@4".into(),
                witness: Some("c = 1".into()),
            }],
            specs: vec![Formula::ne(
                acspec_ir::expr::Expr::var("c"),
                acspec_ir::expr::Expr::var("buf"),
            )],
            min_fail: 1,
            stats: ProcStats::default(),
            outcome: AnalysisOutcome::Ok,
        };
        let json = report.to_json();
        assert!(json.contains("\"proc_name\": \"Foo\""), "{json}");
        assert!(json.contains("\"assert\": \"A5\""), "{json}");
        assert!(json.contains("\"c != buf\""), "{json}");
        assert!(json.contains("\"status\": \"Sib\""), "{json}");
        // Valid JSON round trip through serde_json's Value.
        let value: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(value["warnings"][0]["witness"], "c = 1");
    }
}
