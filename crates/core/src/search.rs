//! `FindAlmostCorrectSpecs` (Algorithm 2): greedy weakening of the
//! predicate cover with pruning on the failure count.

use std::collections::{BTreeSet, HashMap};

use acspec_ir::locs::LocId;
use acspec_smt::TermId;
use acspec_vcgen::analyzer::{ProcAnalyzer, Selector, Timeout};

/// How "creates dead code" is decided during the search (§2.3: the
/// definition of `Dead` is a parameter). Baselines are computed under
/// `true` by the caller so the search only compares against them.
#[derive(Debug, Clone)]
pub enum DeadCheck {
    /// Branch coverage: a tracked location unreachable beyond
    /// `baseline_dead` (= `Dead(true)`, removed from `Locs` per §2.3).
    Branch {
        /// `Dead(true)`.
        baseline_dead: BTreeSet<LocId>,
    },
    /// Path coverage: a path profile feasible under `true` that the
    /// specification makes infeasible.
    Path {
        /// The profiles feasible under `true`.
        baseline_profiles: BTreeSet<Vec<bool>>,
        /// Enumeration cap per query (exceeding counts as a timeout).
        cap: usize,
    },
}

/// Why a clause subset was judged to create dead code — the evidence a
/// weakening-chain certificate grounds each step in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeadEvidence {
    /// The subset's conjunction selects no input states at all (the
    /// paper's `WP ≡ ∅` special case); certified by an Unsat proof of
    /// the subset's selectors.
    Inconsistent,
    /// This tracked location became unreachable; certified by an Unsat
    /// proof of `reach(loc)` under the subset's selectors.
    DeadLoc(LocId),
    /// A baseline-feasible path profile disappeared (path metric). Not
    /// certifiable per location — the chain step is structural only.
    Path,
    /// Superset of a subset already known dead (§2.3 monotonicity via
    /// the dominance lattice). Grounded by the referenced subset's own
    /// direct evidence.
    Dominated(Vec<u32>),
}

/// One step of Algorithm 2's greedy weakening: `subset` was still too
/// strong (see the matching [`DeadEvidence`]) and `removed` was dropped
/// from it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainStep {
    /// The dead subset this step weakened (sorted clause indices).
    pub subset: Vec<u32>,
    /// The clause index removed by this step.
    pub removed: u32,
}

/// Result of the Algorithm 2 search (before `Normalize`/`PruneClauses`).
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Whether the *root* cover created dead code — i.e. the procedure
    /// has an (abstract) SIB (Definition 3).
    pub root_dead: bool,
    /// The minimum failure count over minimal weakenings (`MinFail`).
    pub min_fail: usize,
    /// The output set `U`: clause subsets (indices into the cover) that
    /// kill no code and induce exactly `min_fail` failures.
    pub specs: Vec<BTreeSet<u32>>,
    /// Clause subsets evaluated (statistics).
    pub nodes_visited: usize,
    /// Per-spec weakening chain, parallel to `specs`: the one-clause
    /// removals leading from the full cover down to the spec. Empty for
    /// the `root_dead = false` case (the cover itself is the spec).
    pub chains: Vec<Vec<ChainStep>>,
    /// Dead-verdict evidence for every subset appearing in a chain,
    /// sorted by subset for determinism.
    pub dead_evidence: Vec<(Vec<u32>, DeadEvidence)>,
}

/// Is sorted `a` a subset of sorted `b` (clause-index sets)?
fn ids_subset(a: &[u32], b: &[u32]) -> bool {
    a.len() <= b.len() && {
        let mut bi = b.iter().peekable();
        a.iter().all(|x| {
            while let Some(&&y) = bi.peek() {
                bi.next();
                match y.cmp(x) {
                    std::cmp::Ordering::Less => {}
                    std::cmp::Ordering::Equal => return true,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            false
        })
    }
}

/// Evaluator for clause subsets with memoization and early-exit counting.
///
/// With the analyzer's dominance cache enabled, §2.3 monotonicity is
/// also applied at the subset level (strengthening/weakening in the
/// clause lattice mirrors it): a subset of a dead-free set is dead-free
/// (`Dead(⋀S) = ∅ ∧ S' ⊆ S ⇒ Dead(⋀S') = ∅`), a superset of a dead set
/// is dead (including the inconsistent-spec case), and an early-exited
/// failure count is a lower bound for every subset
/// (`S' ⊆ S ⇒ |Fail(⋀S')| ≥ |Fail(⋀S)|`), tightening the `cap` pruning
/// before any per-location query is issued. Disabled together with the
/// cache so `--no-query-cache` reproduces the uncached query sequence.
struct SubsetEval<'a> {
    az: &'a mut ProcAnalyzer,
    selectors: &'a [Selector],
    dead_check: &'a DeadCheck,
    locs: Vec<LocId>,
    asserts: Vec<acspec_ir::stmt::AssertId>,
    dead_memo: HashMap<Vec<u32>, bool>,
    fail_memo: HashMap<Vec<u32>, usize>,
    use_lattice: bool,
    /// Maximal known dead-free subsets.
    dead_free: Vec<Vec<u32>>,
    /// Minimal known dead subsets.
    deadly: Vec<Vec<u32>>,
    /// `(subset, lower bound on |Fail(⋀subset)|)` from early exits.
    fail_floors: Vec<(Vec<u32>, usize)>,
    /// Why each dead subset was judged dead (first verdict wins; the
    /// memo guarantees one verdict per subset).
    evidence: HashMap<Vec<u32>, DeadEvidence>,
}

impl SubsetEval<'_> {
    fn active(&self, subset: &BTreeSet<u32>) -> Vec<Selector> {
        subset.iter().map(|&i| self.selectors[i as usize]).collect()
    }

    /// `Dead(⋀subset) ≠ ∅` modulo the `true`-baseline (§2.3). An
    /// *unsatisfiable* specification counts as dead: the paper treats
    /// `WP(pr) ≡ ∅` as the special SIB case where `Dead` contains every
    /// statement (§3.1), which matters for straight-line procedures with
    /// no tracked branch locations.
    fn has_dead(&mut self, subset: &BTreeSet<u32>) -> Result<bool, Timeout> {
        let key: Vec<u32> = subset.iter().copied().collect();
        if let Some(&v) = self.dead_memo.get(&key) {
            return Ok(v);
        }
        if self.use_lattice {
            if self.dead_free.iter().any(|s| ids_subset(&key, s)) {
                self.dead_memo.insert(key, false);
                return Ok(false);
            }
            if let Some(base) = self.deadly.iter().find(|s| ids_subset(s, &key)) {
                self.evidence
                    .insert(key.clone(), DeadEvidence::Dominated(base.clone()));
                self.dead_memo.insert(key, true);
                return Ok(true);
            }
        }
        let active = self.active(subset);
        let mut result = !self.az.is_consistent(&active, &[])?;
        if result {
            self.evidence
                .insert(key.clone(), DeadEvidence::Inconsistent);
        } else {
            match self.dead_check {
                DeadCheck::Branch { baseline_dead } => {
                    for &l in &self.locs {
                        if baseline_dead.contains(&l) {
                            continue;
                        }
                        if !self.az.is_reachable(l, &active)? {
                            result = true;
                            self.evidence.insert(key.clone(), DeadEvidence::DeadLoc(l));
                            break;
                        }
                    }
                }
                DeadCheck::Path {
                    baseline_profiles,
                    cap,
                } => {
                    let profiles = self.az.path_profiles(&active, *cap)?;
                    result = baseline_profiles.difference(&profiles).next().is_some();
                    if result {
                        self.evidence.insert(key.clone(), DeadEvidence::Path);
                    }
                }
            }
        }
        if self.use_lattice {
            if result {
                if !self.deadly.iter().any(|s| ids_subset(s, &key)) {
                    self.deadly.retain(|s| !ids_subset(&key, s));
                    self.deadly.push(key.clone());
                }
            } else if !self.dead_free.iter().any(|s| ids_subset(&key, s)) {
                self.dead_free.retain(|s| !ids_subset(s, &key));
                self.dead_free.push(key.clone());
            }
        }
        self.dead_memo.insert(key, result);
        Ok(result)
    }

    /// `|Fail(⋀subset)|`, stopping early once the count exceeds `cap`.
    /// Values above `cap` are reported as `cap + 1` and not memoized
    /// exactly (the partial count becomes a lattice lower bound).
    fn fail_count(&mut self, subset: &BTreeSet<u32>, cap: usize) -> Result<usize, Timeout> {
        let key: Vec<u32> = subset.iter().copied().collect();
        if let Some(&v) = self.fail_memo.get(&key) {
            return Ok(v);
        }
        if self.use_lattice {
            // A floor recorded for a superset bounds this subset from
            // below; past the cap the exact count is irrelevant.
            if self
                .fail_floors
                .iter()
                .any(|(s, f)| *f > cap && ids_subset(&key, s))
            {
                return Ok(cap + 1);
            }
        }
        let active = self.active(subset);
        let mut count = 0;
        for &a in &self.asserts.clone() {
            if self.az.can_fail(a, &active)? {
                count += 1;
                if count > cap {
                    if self.use_lattice {
                        self.fail_floors.push((key, count));
                    }
                    return Ok(count);
                }
            }
        }
        self.fail_memo.insert(key, count);
        Ok(count)
    }
}

/// Runs Algorithm 2 over an installed predicate cover with the
/// branch-coverage dead metric (the paper's default).
///
/// `selectors` are the per-clause selectors (from
/// [`acspec_predabs::Cover::install_selectors`]); `baseline_dead` is
/// `Dead(true)`, removed from the tracked locations per §2.3.
///
/// # Errors
///
/// Returns [`Timeout`] if the analyzer budget or `max_nodes` is
/// exhausted.
pub fn find_almost_correct_specs(
    az: &mut ProcAnalyzer,
    selectors: &[Selector],
    baseline_dead: &BTreeSet<LocId>,
    max_nodes: usize,
) -> Result<SearchOutcome, Timeout> {
    let check = DeadCheck::Branch {
        baseline_dead: baseline_dead.clone(),
    };
    find_almost_correct_specs_with(az, selectors, &check, max_nodes, None)
}

/// Runs Algorithm 2 under an explicit [`DeadCheck`] metric.
///
/// # Errors
///
/// Returns [`Timeout`] if the analyzer budget or `max_nodes` is
/// exhausted.
/// Decides `⋀a ⇒ ⋀b` for clause subsets via the solver, given each
/// clause's body term.
fn subset_implies(
    az: &mut ProcAnalyzer,
    selectors: &[Selector],
    bodies: &[TermId],
    a: &BTreeSet<u32>,
    b: &BTreeSet<u32>,
) -> Result<bool, Timeout> {
    if b.is_subset(a) {
        return Ok(true); // syntactic: more clauses is stronger
    }
    let active: Vec<Selector> = a.iter().map(|&i| selectors[i as usize]).collect();
    let parts: Vec<TermId> = b.iter().map(|&i| bodies[i as usize]).collect();
    let conj = az.ctx.mk_and(parts);
    let neg = az.ctx.mk_not(conj);
    Ok(!az.is_consistent(&active, &[neg])?)
}

/// Runs Algorithm 2 under an explicit [`DeadCheck`] metric.
///
/// When `clause_bodies` is supplied, the output set is filtered to its
/// *strongest* members (Definition 4's minimal-weakening condition): the
/// greedy search can reach a given dead-free subset through different
/// weakening orders, some of which pass through a strictly stronger
/// dead-free subset; those non-minimal weakenings are removed so Theorem
/// 1's `Find ⊆ AlmostCorrectSpecs` inclusion holds. Without bodies the
/// raw listing's output is returned.
///
/// # Errors
///
/// Returns [`Timeout`] if the analyzer budget or `max_nodes` is
/// exhausted.
pub fn find_almost_correct_specs_with(
    az: &mut ProcAnalyzer,
    selectors: &[Selector],
    dead_check: &DeadCheck,
    max_nodes: usize,
    clause_bodies: Option<&[TermId]>,
) -> Result<SearchOutcome, Timeout> {
    find_almost_correct_specs_salvaging(
        az,
        selectors,
        dead_check,
        max_nodes,
        clause_bodies,
        &mut None,
    )
}

/// Like [`find_almost_correct_specs_with`], but on `Err` deposits the
/// best candidate weakening found so far into `salvage`: the dead-free
/// subsets achieving the lowest failure count seen before the budget,
/// deadline, or node cap hit. These are genuine (if possibly
/// non-minimal) candidate weakenings — every salvaged subset killed no
/// code and failed exactly the salvaged `min_fail` assertions — so a
/// degradation ladder can evaluate them instead of reporting nothing.
/// `salvage` stays `None` when the search had found no dead-free subset
/// yet.
///
/// # Errors
///
/// Returns [`Timeout`] if the analyzer budget, deadline, or `max_nodes`
/// is exhausted.
pub fn find_almost_correct_specs_salvaging(
    az: &mut ProcAnalyzer,
    selectors: &[Selector],
    dead_check: &DeadCheck,
    max_nodes: usize,
    clause_bodies: Option<&[TermId]>,
    salvage: &mut Option<SearchOutcome>,
) -> Result<SearchOutcome, Timeout> {
    let locs = az.locations();
    let asserts = az.assertions();
    let n_asserts = asserts.len();
    let use_lattice = az.cache_enabled();
    let mut eval = SubsetEval {
        az,
        selectors,
        dead_check,
        locs,
        asserts,
        dead_memo: HashMap::new(),
        fail_memo: HashMap::new(),
        use_lattice,
        dead_free: Vec::new(),
        deadly: Vec::new(),
        fail_floors: Vec::new(),
        evidence: HashMap::new(),
    };

    let full: BTreeSet<u32> = (0..selectors.len() as u32).collect();
    let mut nodes_visited = 1;

    // Lines 2–4: no dead code under the cover → the cover itself is the
    // almost-correct specification (k = 0).
    if !eval.has_dead(&full)? {
        return Ok(SearchOutcome {
            root_dead: false,
            min_fail: 0,
            specs: vec![full],
            nodes_visited,
            chains: vec![Vec::new()],
            dead_evidence: Vec::new(),
        });
    }

    // Lines 5–32: greedy weakening.
    let mut frontier: Vec<BTreeSet<u32>> = vec![full];
    let mut visited: BTreeSet<BTreeSet<u32>> = BTreeSet::new();
    let mut output: Vec<BTreeSet<u32>> = Vec::new();
    let mut min_fail = n_asserts;
    // First-discovered parent of each visited subset: which frontier
    // member it was weakened from and the clause removed. Walked
    // backwards to reconstruct each spec's weakening chain.
    let mut parents: HashMap<Vec<u32>, (Vec<u32>, u32)> = HashMap::new();

    // On any abort below, snapshot the best-so-far output into the
    // caller's salvage slot and propagate the timeout.
    macro_rules! abort_salvaging {
        ($t:expr, $output:expr, $min_fail:expr, $nodes:expr) => {{
            let mut best: Vec<BTreeSet<u32>> = $output.clone();
            best.sort();
            best.dedup();
            if !best.is_empty() {
                let chains: Vec<Vec<ChainStep>> = best
                    .iter()
                    .map(|s| build_chain(&parents, &eval.evidence, s))
                    .collect();
                let dead_evidence = collect_evidence(&chains, &eval.evidence);
                *salvage = Some(SearchOutcome {
                    root_dead: true,
                    min_fail: $min_fail,
                    specs: best,
                    nodes_visited: $nodes,
                    chains,
                    dead_evidence,
                });
            }
            return Err($t);
        }};
    }

    while let Some(c1) = frontier.pop() {
        for c in c1.iter().copied().collect::<Vec<_>>() {
            let mut c2 = c1.clone();
            c2.remove(&c);
            if !visited.insert(c2.clone()) {
                continue; // line 13–15: already visited
            }
            parents.insert(
                c2.iter().copied().collect(),
                (c1.iter().copied().collect(), c),
            );
            nodes_visited += 1;
            if nodes_visited > max_nodes {
                eval.az.note_cap_fault();
                abort_salvaging!(Timeout, output, min_fail, nodes_visited);
            }
            // Lines 17–19: MinFail can only decrease.
            let fail = match eval.fail_count(&c2, min_fail) {
                Ok(fail) => fail,
                Err(t) => abort_salvaging!(t, output, min_fail, nodes_visited),
            };
            if fail > min_fail {
                continue;
            }
            let dead = match eval.has_dead(&c2) {
                Ok(dead) => dead,
                Err(t) => abort_salvaging!(t, output, min_fail, nodes_visited),
            };
            if dead {
                frontier.push(c2); // line 20–21: still too strong
            } else if fail == 0 {
                // Line 22–23 (semantically unreachable for strict
                // weakenings of the cover — kept for fidelity to the
                // paper's listing).
                frontier.push(c2);
            } else if fail == min_fail {
                output.push(c2); // line 24–25
            } else {
                // Lines 27–29: strictly better; flush the output set.
                min_fail = fail;
                output = vec![c2];
            }
        }
    }

    output.sort();
    output.dedup();
    // Minimality filter (Definition 4, condition 4): drop members
    // strictly implied by another member.
    if let Some(bodies) = clause_bodies {
        let mut keep = vec![true; output.len()];
        for i in 0..output.len() {
            if !keep[i] {
                continue;
            }
            for j in 0..output.len() {
                if i == j || !keep[j] {
                    continue;
                }
                // Drop output[i] when output[j] is strictly stronger.
                // A timeout here salvages the unfiltered output: its
                // members are dead-free and achieve `min_fail`, just
                // possibly not all minimal.
                let j_implies_i =
                    match subset_implies(eval.az, selectors, bodies, &output[j], &output[i]) {
                        Ok(v) => v,
                        Err(t) => abort_salvaging!(t, output, min_fail, nodes_visited),
                    };
                if !j_implies_i {
                    continue;
                }
                let i_implies_j =
                    match subset_implies(eval.az, selectors, bodies, &output[i], &output[j]) {
                        Ok(v) => v,
                        Err(t) => abort_salvaging!(t, output, min_fail, nodes_visited),
                    };
                if !i_implies_j {
                    keep[i] = false;
                    break;
                }
            }
        }
        output = output
            .into_iter()
            .zip(keep)
            .filter_map(|(s, k)| k.then_some(s))
            .collect();
    }
    // `min_fail` may still be the |Asserts| sentinel if no weakening
    // reached Dead = ∅ within the lattice (only possible when the output
    // is empty, e.g. every subset keeps dead code until `true`, which
    // fails everything and is recorded like any other subset).
    let chains: Vec<Vec<ChainStep>> = output
        .iter()
        .map(|s| build_chain(&parents, &eval.evidence, s))
        .collect();
    let dead_evidence = collect_evidence(&chains, &eval.evidence);
    Ok(SearchOutcome {
        root_dead: true,
        min_fail,
        specs: output,
        nodes_visited,
        chains,
        dead_evidence,
    })
}

/// Reconstructs the weakening chain for `spec` by walking the parent
/// map up to the full cover, in root-to-spec order. A chain is only
/// emitted when *every* intermediate subset has a dead verdict on
/// record — a parent pushed by the `fail == 0` fidelity branch of the
/// paper's listing is not dead, so its chain is ungrounded and an empty
/// chain is returned instead (the certificate layer skips it).
fn build_chain(
    parents: &HashMap<Vec<u32>, (Vec<u32>, u32)>,
    evidence: &HashMap<Vec<u32>, DeadEvidence>,
    spec: &BTreeSet<u32>,
) -> Vec<ChainStep> {
    let mut steps = Vec::new();
    let mut cur: Vec<u32> = spec.iter().copied().collect();
    while let Some((parent, removed)) = parents.get(&cur) {
        if !evidence.contains_key(parent) {
            return Vec::new();
        }
        steps.push(ChainStep {
            subset: parent.clone(),
            removed: *removed,
        });
        cur = parent.clone();
    }
    steps.reverse();
    steps
}

/// Gathers the dead verdict for every subset referenced by some chain,
/// sorted by subset for deterministic output.
fn collect_evidence(
    chains: &[Vec<ChainStep>],
    evidence: &HashMap<Vec<u32>, DeadEvidence>,
) -> Vec<(Vec<u32>, DeadEvidence)> {
    let mut subsets: BTreeSet<&Vec<u32>> = BTreeSet::new();
    for chain in chains {
        for step in chain {
            subsets.insert(&step.subset);
        }
        for step in chain {
            if let Some(DeadEvidence::Dominated(base)) = evidence.get(&step.subset) {
                subsets.insert(base);
            }
        }
    }
    subsets
        .into_iter()
        .map(|s| (s.clone(), evidence[s].clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acspec_ir::parse::parse_program;
    use acspec_ir::{desugar_procedure, DesugarOptions};
    use acspec_predabs::cover::predicate_cover;
    use acspec_predabs::mine::{mine_predicates, Abstraction};
    use acspec_vcgen::analyzer::AnalyzerConfig;

    fn run(src: &str) -> (SearchOutcome, Vec<String>) {
        let prog = parse_program(src).expect("parses");
        let proc = prog.procedures.last().expect("proc").clone();
        let d = desugar_procedure(&prog, &proc, DesugarOptions::default()).expect("desugars");
        let mut az = ProcAnalyzer::new(&d, AnalyzerConfig::default()).expect("encodes");
        let baseline = az.dead_set(&[]).expect("in budget");
        let q = mine_predicates(&d, Abstraction::concrete());
        let cover = predicate_cover(&mut az, &q).expect("in budget");
        let sels = cover.install_selectors(&mut az);
        let out = find_almost_correct_specs(&mut az, &sels, &baseline, 10_000).expect("in budget");
        // Render output specs for inspection.
        let rendered: Vec<String> = out
            .specs
            .iter()
            .map(|subset| {
                let clauses: Vec<acspec_predabs::QClause> = subset
                    .iter()
                    .map(|&i| cover.clauses[i as usize].clone())
                    .collect();
                let normalized = acspec_predabs::normalize(&clauses, 1000);
                acspec_predabs::clauses_to_formula(&normalized, &cover.preds).to_string()
            })
            .collect();
        (out, rendered)
    }

    #[test]
    fn no_sib_returns_cover_with_zero_failures() {
        let (out, rendered) = run("procedure f(x: int) { assert x != 0; }");
        assert!(!out.root_dead);
        assert_eq!(out.min_fail, 0);
        assert_eq!(rendered, vec!["x != 0"]);
    }

    #[test]
    fn figure1_search_finds_the_double_free() {
        let src = "
            global Freed: map;
            procedure Foo(c: int, buf: int, cmd: int) {
              if (*) {
                assert Freed[c] == 0;   Freed[c] := 1;
                assert Freed[buf] == 0; Freed[buf] := 1;
              } else {
                if (cmd == 1) {
                  if (*) {
                    assert Freed[c] == 0;   Freed[c] := 1;
                    assert Freed[buf] == 0; Freed[buf] := 1;
                  }
                }
                assert Freed[c] == 0;   Freed[c] := 1;
                assert Freed[buf] == 0; Freed[buf] := 1;
              }
            }";
        let (out, rendered) = run(src);
        assert!(out.root_dead, "Figure 1 has a concrete SIB");
        assert_eq!(out.min_fail, 1, "exactly A5 fails (§1.1.1)");
        // The syntactically normalized spec still mentions the Freed and
        // aliasing vocabulary but not cmd (the cmd clauses were dropped by
        // the weakening). The paper's unit-clause form is recovered by the
        // driver's *semantic* normalization (tested in the driver tests).
        assert!(
            rendered.iter().any(|s| {
                s.contains("Freed[c]") && s.contains("Freed[buf]") && !s.contains("cmd")
            }),
            "expected a cmd-free Freed spec among: {rendered:?}"
        );
    }

    #[test]
    fn always_failing_assert_is_total_sib() {
        // Every input fails: WP = false, Dead(WP) = everything (§3.1's
        // special case). The search weakens until code is live again and
        // reports the failure.
        let (out, _) = run("procedure f(x: int) {
               if (*) { skip; } else { skip; }
               assert x != x;
             }");
        assert!(out.root_dead);
        assert_eq!(out.min_fail, 1);
    }
}
