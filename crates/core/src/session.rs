//! Staged analysis sessions: one desugar, one encode, many
//! configurations.
//!
//! The historical drivers ([`crate::analyze_procedure`],
//! [`crate::analyze_procedure_multi`], [`crate::cons_baseline`]) each
//! desugared and re-encoded the procedure into a fresh solver, so
//! evaluating the `Cons` baseline plus the configuration ladder paid for
//! five encodings and five demonic screens per procedure. A
//! [`ProcSession`] owns the desugared body and a single incremental
//! [`ProcAnalyzer`], and exposes the pipeline as explicit stages:
//!
//! ```text
//!   new ──► encode (once)
//!             │
//!   screen ──► Dead(true) baseline + demonic Fail(true)   (shared, cached)
//!             │
//!   per configuration (budget refilled each time):
//!     mine ──► cover ──► search ──► evaluate(prune…)      (per-config)
//! ```
//!
//! The `Cons` baseline is the demonic half of the shared screen, so a
//! session serving `Cons` plus all four configurations issues the screen
//! queries once instead of five times.
//!
//! ## Budgets
//!
//! The analyzer's conflict [`Budget`](acspec_vcgen::Budget) is refilled
//! at the start of [`ProcSession::cons`] and each
//! [`ProcSession::run_config`], so every configuration gets the same
//! pool the old one-analyzer-per-config drivers granted. Because the
//! shared screen is only *paid for* by whichever caller runs first,
//! later configurations have strictly more budget available than before
//! the refactor — timeouts can only decrease. Budget exhaustion
//! surfaces as a [`StageError`] naming the stage it happened in;
//! drivers fold it into [`ProcReport::outcome`] and
//! [`ProcReport::timeout_stage`].
//!
//! ## Observers
//!
//! Every completed stage appends a [`StageEvent`] (stage, configuration
//! label, wall-clock seconds, query count) to the session's event log.
//! [`ProgramAnalysis`] replays the logs to a [`SessionObserver`] in
//! procedure order after its parallel fan-out, so observer output is
//! deterministic regardless of thread count.

use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::time::Instant;

use acspec_ir::arena::TermStats;
use acspec_ir::desugar::{desugar_procedure, DesugarOptions, DesugaredProc};
use acspec_ir::expr::{Atom, Formula};
use acspec_ir::program::{Procedure, Program};
use acspec_ir::stmt::{AssertId, Stmt};
use acspec_predabs::clause::{clauses_to_formula, QClause};
use acspec_predabs::cover::{predicate_cover_salvaging, Cover};
use acspec_predabs::mine::mine_predicates_interned;
use acspec_predabs::normalize::{normalize, prune_clauses, PruneConfig};
use acspec_smt::SearchPool;
use acspec_smt::{SearchSummary, SolverCounters, TermId};
use acspec_vcgen::analyzer::{AnalyzerConfig, ParallelStats, ProcAnalyzer, QueryOutcome, Selector};
use acspec_vcgen::cache::CacheStats;
use acspec_vcgen::chaos::ChaosStats;
use acspec_vcgen::stage::{FaultReason, Stage, StageError, StageMetrics, StageTable};

use crate::certs::{
    proc_certs_json, ChainRecord, ChainStepRecord, Claim, ClaimKind, ProcCerts, StepEvidence,
};
use crate::config::{AcspecOptions, ConfigName, DeadMetric};
use crate::driver::AcspecError;
use crate::fingerprint::procedure_fingerprint;
use crate::persist::{entry_key, options_digest, StoreOutcome, StoreSession};
use crate::report::{
    AnalysisIncident, AnalysisOutcome, Fallback, IncidentKind, ProcReport, ProcStats, ReportLabel,
    SibStatus, Warning, Witness,
};
use crate::search::{find_almost_correct_specs_salvaging, DeadCheck, DeadEvidence, SearchOutcome};

thread_local! {
    /// The pipeline stage the current worker thread is executing, for
    /// attributing panics and errors caught by the isolation layer.
    /// Set by [`ProcSession::new`] (encode) and every
    /// [`ProcSession::staged`] call; cleared when isolation wraps a new
    /// procedure.
    static CURRENT_STAGE: Cell<Option<Stage>> = const { Cell::new(None) };

    /// The procedure the current worker thread is dispatching. Unlike
    /// `CURRENT_STAGE` (set lazily by the first stage), this is set at
    /// dispatch time — *before* any session machinery runs — so
    /// incidents built early (a panic before encode, a store-corruption
    /// record during the warm-load probe) are always attributable to a
    /// procedure instead of surfacing with an empty name.
    static CURRENT_PROC: std::cell::RefCell<Option<String>> =
        const { std::cell::RefCell::new(None) };
}

/// The dispatch-time procedure name, falling back to `fallback` when
/// called outside a dispatch (e.g. from a directly driven session).
fn current_proc_or(fallback: &str) -> String {
    CURRENT_PROC
        .with(|c| c.borrow().clone())
        .unwrap_or_else(|| fallback.to_string())
}

/// The shared screen: the `Dead(true)` baseline (per the session's dead
/// metric) and the demonic failure set `Fail(true)`.
#[derive(Debug, Clone)]
pub struct Screening {
    /// The dead-code baseline, removed before the search (§2.3).
    pub dead_check: DeadCheck,
    /// `Fail(true)`: every assertion failable under the demonic
    /// environment — the `Cons` baseline's warning set.
    pub demonic_fail: BTreeSet<AssertId>,
}

/// One completed stage of a session, for [`SessionObserver`]s.
#[derive(Debug, Clone)]
pub struct StageEvent {
    /// The procedure being analyzed.
    pub proc_name: String,
    /// The configuration the stage ran for; `None` for shared stages
    /// (encode, screen) that every configuration reuses.
    pub label: Option<ReportLabel>,
    /// The completed stage.
    pub stage: Stage,
    /// Index of this stage run within its session (0 = encode). A
    /// session can run the same stage several times (e.g. `Evaluate`
    /// once per prune variant); the sequence number identifies each run
    /// so query events can name their enclosing one.
    pub seq: u32,
    /// Wall-clock seconds and query count of this stage run.
    pub metrics: StageMetrics,
    /// Dominance-cache counter deltas for this stage run (all zero when
    /// the query cache is disabled). Kept out of [`StageMetrics`] — and
    /// hence out of report stats — because cache activity is telemetry,
    /// not part of the byte-stable report payload.
    pub cache: CacheStats,
    /// Fault-injection counter deltas for this stage run (all zero when
    /// no [`ChaosConfig`](acspec_vcgen::chaos::ChaosConfig) is
    /// installed). Telemetry only, like `cache`.
    pub chaos: ChaosStats,
    /// Term-arena counter deltas for this stage run (interned nodes,
    /// intern hits, memo hits per transformer; all zero for stages that
    /// never touch the arena). Telemetry only, like `cache`.
    pub terms: TermStats,
    /// Parallel-search counter deltas for this stage run (portfolio
    /// races, cube sessions; all zero when both are off). Telemetry
    /// only, like `cache`.
    pub parallel: ParallelStats,
}

/// One completed solver query, for [`SessionObserver`]s that opt in via
/// [`SessionObserver::wants_queries`]. This is the session-level view
/// of the analyzer's per-`check()` hook
/// ([`QueryRecord`](acspec_vcgen::analyzer::QueryRecord)), tagged with
/// the procedure, configuration, and enclosing stage run.
#[derive(Debug, Clone)]
pub struct QueryEvent {
    /// The procedure being analyzed.
    pub proc_name: String,
    /// The configuration the query ran for (`None` = shared stages).
    pub label: Option<ReportLabel>,
    /// The stage charged for the query.
    pub stage: Stage,
    /// [`StageEvent::seq`] of the stage run this query belongs to.
    pub stage_seq: u32,
    /// Query index within the session (0-based, issue order).
    pub seq: u32,
    /// How the query ended.
    pub outcome: QueryOutcome,
    /// Wall-clock seconds inside the solver.
    pub seconds: f64,
    /// SAT/theory work-counter deltas for this query alone.
    pub counters: SolverCounters,
    /// CDCL search summary for this query alone. `Some` only when an
    /// observer opted in via [`SessionObserver::wants_search`] (and the
    /// solver was actually consulted — fault-injected queries carry
    /// `None`).
    pub search: Option<SearchSummary>,
}

/// Receives stage completions (and procedure completions) from an
/// analysis. [`ProgramAnalysis::run`] replays events in deterministic
/// procedure order; a [`ProcSession`] used directly reports through
/// [`ProcSession::take_events`].
pub trait SessionObserver {
    /// A pipeline stage finished.
    fn stage_completed(&mut self, event: &StageEvent);
    /// All work for a procedure finished.
    fn proc_completed(&mut self, _proc_name: &str) {}
    /// A solver query finished. Only delivered when
    /// [`SessionObserver::wants_queries`] returns `true`; queries are
    /// replayed *before* the [`StageEvent`] whose run issued them.
    fn query_completed(&mut self, _event: &QueryEvent) {}
    /// Whether this observer wants per-query events. Recording is a
    /// per-`check()` cost, so sessions only enable it when asked
    /// (default `false`).
    fn wants_queries(&self) -> bool {
        false
    }
    /// Whether this observer additionally wants CDCL search summaries
    /// on its query events (restarts, LBD histograms, decision depth).
    /// Implies the cost of [`SessionObserver::wants_queries`] plus
    /// per-conflict LBD computation in the SAT core, so it is a
    /// separate opt-in (default `false`). Only meaningful when
    /// `wants_queries` is also `true`.
    fn wants_search(&self) -> bool {
        false
    }
    /// A procedure's analysis was aborted by a panic or error; the
    /// isolation layer turned it into an incident instead of crashing
    /// the run.
    fn incident_recorded(&mut self, _incident: &AnalysisIncident) {}
    /// A report fell down the degradation ladder: the pipeline faulted
    /// at `from_stage` and the session salvaged `fallback` instead of
    /// reporting nothing. Called once per degraded report.
    fn degradation_recorded(&mut self, _proc_name: &str, _from: Stage, _fallback: Fallback) {}
}

/// Fans events out to two observers (e.g. [`StageTotals`] plus a
/// telemetry sink) in one [`ProgramAnalysis::run`].
#[derive(Debug)]
pub struct TeeObserver<'a, A: ?Sized, B: ?Sized> {
    /// First receiver.
    pub first: &'a mut A,
    /// Second receiver.
    pub second: &'a mut B,
}

impl<'a, A: ?Sized, B: ?Sized> TeeObserver<'a, A, B> {
    /// Tees events to `first` then `second`.
    pub fn new(first: &'a mut A, second: &'a mut B) -> Self {
        TeeObserver { first, second }
    }
}

impl<A, B> SessionObserver for TeeObserver<'_, A, B>
where
    A: SessionObserver + ?Sized,
    B: SessionObserver + ?Sized,
{
    fn stage_completed(&mut self, event: &StageEvent) {
        self.first.stage_completed(event);
        self.second.stage_completed(event);
    }

    fn proc_completed(&mut self, proc_name: &str) {
        self.first.proc_completed(proc_name);
        self.second.proc_completed(proc_name);
    }

    fn query_completed(&mut self, event: &QueryEvent) {
        self.first.query_completed(event);
        self.second.query_completed(event);
    }

    fn wants_queries(&self) -> bool {
        self.first.wants_queries() || self.second.wants_queries()
    }

    fn wants_search(&self) -> bool {
        self.first.wants_search() || self.second.wants_search()
    }

    fn incident_recorded(&mut self, incident: &AnalysisIncident) {
        self.first.incident_recorded(incident);
        self.second.incident_recorded(incident);
    }

    fn degradation_recorded(&mut self, proc_name: &str, from: Stage, fallback: Fallback) {
        self.first.degradation_recorded(proc_name, from, fallback);
        self.second.degradation_recorded(proc_name, from, fallback);
    }
}

/// An observer that discards everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl SessionObserver for NullObserver {
    fn stage_completed(&mut self, _event: &StageEvent) {}
}

/// An observer accumulating per-label, per-stage totals — the data
/// behind `repro fig9`'s stage columns.
#[derive(Debug, Clone, Default)]
pub struct StageTotals {
    totals: BTreeMap<Option<ReportLabel>, StageTable>,
    procs: usize,
}

impl StageTotals {
    /// Accumulated metrics for a label (`None` = shared encode/screen).
    pub fn table(&self, label: Option<ReportLabel>) -> StageTable {
        self.totals.get(&label).copied().unwrap_or_default()
    }

    /// Number of completed procedures.
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// `(label, table)` pairs, shared stages first.
    pub fn iter(&self) -> impl Iterator<Item = (Option<ReportLabel>, &StageTable)> {
        self.totals.iter().map(|(l, t)| (*l, t))
    }

    /// Folds another accumulator into this one.
    pub fn absorb(&mut self, other: &StageTotals) {
        for (label, table) in &other.totals {
            self.totals.entry(*label).or_default().merge(table);
        }
        self.procs += other.procs;
    }
}

impl SessionObserver for StageTotals {
    fn stage_completed(&mut self, event: &StageEvent) {
        self.totals.entry(event.label).or_default().record(
            event.stage,
            event.metrics.seconds,
            event.metrics.queries,
        );
    }

    fn proc_completed(&mut self, _proc_name: &str) {
        self.procs += 1;
    }
}

/// Per-variant output of the evaluate stage.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The pruned almost-correct specifications, deduplicated.
    pub specs: Vec<Formula>,
    /// High-confidence warnings `E = Fail(Φ)` with witnesses.
    pub warnings: Vec<Warning>,
    /// Set if the budget ran out mid-evaluation (partial results kept,
    /// as the paper's driver did).
    pub timeout: Option<StageError>,
}

/// A staged per-procedure analysis session: one desugar, one encode,
/// one incremental solver, shared across the `Cons` baseline and any
/// number of configuration/prune runs.
#[derive(Debug)]
pub struct ProcSession {
    proc_name: String,
    desugared: DesugaredProc,
    az: ProcAnalyzer,
    demonic_fail: Option<BTreeSet<AssertId>>,
    dead_baseline: Option<(DeadMetric, DeadCheck)>,
    /// Snapshot of the shared stages (encode + screen) included in every
    /// report's stage table.
    shared: StageTable,
    /// Solver-counter deltas of the shared stages, mirroring `shared`.
    shared_smt: SolverCounters,
    events: Vec<StageEvent>,
    /// Next [`StageEvent::seq`] (0 was the encode event).
    stage_seq: u32,
    query_events: Vec<QueryEvent>,
    /// Partial cover salvaged from the last failed `Cover` stage, for
    /// the degradation ladder.
    cover_salvage: Option<Cover>,
    /// Best candidate salvaged from the last failed `Search` stage.
    search_salvage: Option<SearchOutcome>,
    /// Whether verdicts are certified (off by default; certification
    /// happens *outside* [`ProcSession::staged`] closures so replay wall
    /// time never pollutes stage tables or report stats).
    certify: bool,
    /// Certified report-level claims, in recording order.
    claims: Vec<Claim>,
    /// Certified weakening chains.
    chains: Vec<ChainRecord>,
    /// `(label, spec)` pairs already certified, so prune variants that
    /// collapse to the same specification share one claim set.
    cert_seen: HashSet<(String, String)>,
}

impl ProcSession {
    /// Desugars and encodes the procedure (the one-time `Encode` stage).
    ///
    /// # Errors
    ///
    /// Returns [`AcspecError`] for malformed inputs; budget exhaustion
    /// is impossible here (encoding issues no queries).
    pub fn new(
        program: &Program,
        proc: &Procedure,
        analyzer: AnalyzerConfig,
    ) -> Result<ProcSession, AcspecError> {
        CURRENT_STAGE.with(|c| c.set(Some(Stage::Encode)));
        // Mix the procedure name into the chaos seed so each session
        // draws an independent injection stream regardless of thread
        // scheduling (determinism across `--threads`).
        let mut analyzer = analyzer;
        if let Some(chaos) = analyzer.chaos {
            analyzer.chaos = Some(chaos.for_proc(&proc.name));
        }
        let desugar_start = Instant::now();
        let desugared = desugar_procedure(program, proc, DesugarOptions::default())?;
        let desugar_seconds = desugar_start.elapsed().as_secs_f64();
        let mut az = ProcAnalyzer::new(&desugared, analyzer)?;
        az.record_external(Stage::Encode, desugar_seconds);

        let encode = az.stage_stats().get(Stage::Encode);
        let mut shared = StageTable::default();
        shared.record(Stage::Encode, encode.seconds, encode.queries);
        let events = vec![StageEvent {
            proc_name: proc.name.clone(),
            label: None,
            stage: Stage::Encode,
            seq: 0,
            metrics: encode,
            cache: CacheStats::default(),
            chaos: ChaosStats::default(),
            terms: az.term_stats(),
            parallel: ParallelStats::default(),
        }];
        Ok(ProcSession {
            proc_name: proc.name.clone(),
            desugared,
            az,
            demonic_fail: None,
            dead_baseline: None,
            shared,
            shared_smt: SolverCounters::default(),
            events,
            stage_seq: 1,
            query_events: Vec::new(),
            cover_salvage: None,
            search_salvage: None,
            certify: false,
            claims: Vec::new(),
            chains: Vec::new(),
            cert_seen: HashSet::new(),
        })
    }

    /// Enables verdict certification: every claim a report surfaces is
    /// backed by a fresh-solver-replay certificate in the session's
    /// [`CertStore`](acspec_vcgen::CertStore). Certification runs off
    /// the query path (no budget, no chaos, no counters), so reports are
    /// byte-identical with it on.
    pub fn enable_certs(&mut self) {
        self.certify = true;
        self.az.enable_certs();
    }

    /// Whether [`ProcSession::enable_certs`] was called.
    pub fn certs_enabled(&self) -> bool {
        self.certify
    }

    /// Drains everything the session certified (store, claims, chains).
    /// `None` unless [`ProcSession::enable_certs`] was called.
    pub fn take_certs(&mut self) -> Option<ProcCerts> {
        if !self.certify {
            return None;
        }
        Some(ProcCerts {
            proc_name: self.proc_name.clone(),
            store: self.az.take_cert_store().unwrap_or_default(),
            claims: std::mem::take(&mut self.claims),
            chains: std::mem::take(&mut self.chains),
        })
    }

    /// Enables (or disables) per-query recording on the underlying
    /// analyzer. Off by default; [`ProgramAnalysis::run`] turns it on
    /// when the observer [`wants_queries`](SessionObserver::wants_queries).
    pub fn set_query_recording(&mut self, on: bool) {
        self.az.set_query_recording(on);
    }

    /// Enables (or disables) CDCL search-summary recording on the
    /// underlying analyzer. Off by default; [`ProgramAnalysis::run`]
    /// turns it on when the observer
    /// [`wants_search`](SessionObserver::wants_search).
    pub fn set_search_recording(&mut self, on: bool) {
        self.az.set_search_recording(on);
    }

    /// The procedure's name.
    pub fn proc_name(&self) -> &str {
        &self.proc_name
    }

    /// The desugared body the session encodes.
    pub fn desugared(&self) -> &DesugaredProc {
        &self.desugared
    }

    /// The shared analyzer (for staged callers building custom queries).
    pub fn analyzer_mut(&mut self) -> &mut ProcAnalyzer {
        &mut self.az
    }

    /// Installs the shared worker-permit pool on the analyzer, so this
    /// session's portfolio races and cube workers draw spare threads
    /// from the same budget as every other session's
    /// ([`ProgramAnalysis::search_threads`]).
    pub fn set_pool(&mut self, pool: std::sync::Arc<SearchPool>) {
        self.az.set_pool(pool);
    }

    /// Drains the event log (stage completions in execution order).
    pub fn take_events(&mut self) -> Vec<StageEvent> {
        std::mem::take(&mut self.events)
    }

    /// Drains the query log (empty unless
    /// [`ProcSession::set_query_recording`] was turned on). Queries
    /// appear grouped by their enclosing stage run, in stage completion
    /// order — i.e. sorted by [`QueryEvent::stage_seq`] matching
    /// [`StageEvent::seq`] order in [`ProcSession::take_events`].
    pub fn take_query_events(&mut self) -> Vec<QueryEvent> {
        std::mem::take(&mut self.query_events)
    }

    /// Runs `f` attributed to `stage`: solver time/queries are recorded
    /// by the analyzer, and the wall-clock remainder (mining, clause
    /// bookkeeping) is added via
    /// [`ProcAnalyzer::record_external`], so stage tables reflect real
    /// elapsed time. Appends a [`StageEvent`] and returns `f`'s result
    /// with the stage's delta.
    fn staged<T>(
        &mut self,
        stage: Stage,
        label: Option<ReportLabel>,
        f: impl FnOnce(&mut ProcSession) -> T,
    ) -> (T, StageMetrics) {
        CURRENT_STAGE.with(|c| c.set(Some(stage)));
        self.az.set_stage(stage);
        let wall = Instant::now();
        let before = self.az.stage_stats().get(stage);
        let smt_before = self.az.solver_counters();
        let cache_before = self.az.cache_stats();
        let chaos_before = self.az.chaos_stats();
        let terms_before = self.az.term_stats();
        let parallel_before = self.az.parallel_stats();
        let out = f(self);
        let query_seconds = self.az.stage_stats().get(stage).seconds - before.seconds;
        let external = (wall.elapsed().as_secs_f64() - query_seconds).max(0.0);
        self.az.record_external(stage, external);
        let after = self.az.stage_stats().get(stage);
        let metrics = StageMetrics {
            seconds: after.seconds - before.seconds,
            queries: after.queries - before.queries,
        };
        let seq = self.stage_seq;
        self.stage_seq += 1;
        if label.is_none() {
            // Shared stages contribute their whole counter delta to the
            // shared-SMT snapshot (mirroring `self.shared`), whether or
            // not per-query records are being kept.
            let delta = self.az.solver_counters().since(&smt_before);
            self.shared_smt.add(&delta);
        }
        if self.az.query_recording() {
            for q in self.az.take_query_records() {
                self.query_events.push(QueryEvent {
                    proc_name: self.proc_name.clone(),
                    label,
                    stage: q.stage,
                    stage_seq: seq,
                    seq: q.seq,
                    outcome: q.outcome,
                    seconds: q.seconds,
                    counters: q.counters,
                    search: q.search,
                });
            }
        }
        self.events.push(StageEvent {
            proc_name: self.proc_name.clone(),
            label,
            stage,
            seq,
            metrics,
            cache: self.az.cache_stats().since(&cache_before),
            chaos: self.az.chaos_stats().since(&chaos_before),
            terms: self.az.term_stats().since(&terms_before),
            parallel: self.az.parallel_stats().since(&parallel_before),
        });
        (out, metrics)
    }

    fn ensure_dead_baseline(&mut self, metric: DeadMetric) -> Result<(), StageError> {
        if matches!(&self.dead_baseline, Some((m, _)) if *m == metric) {
            return Ok(());
        }
        let (result, metrics) = self.staged(Stage::Screen, None, |s| match metric {
            DeadMetric::BranchCoverage => {
                s.az.dead_set(&[])
                    .map(|baseline_dead| DeadCheck::Branch { baseline_dead })
            }
            DeadMetric::PathCoverage { max_profiles } => {
                s.az.path_profiles(&[], max_profiles)
                    .map(|baseline_profiles| DeadCheck::Path {
                        baseline_profiles,
                        cap: max_profiles,
                    })
            }
        });
        self.shared
            .record(Stage::Screen, metrics.seconds, metrics.queries);
        let check = match result {
            Ok(c) => c,
            Err(_) => return Err(self.az.stage_error(Stage::Screen)),
        };
        if self.certify {
            if let DeadCheck::Branch { baseline_dead } = &check {
                let locs: Vec<_> = baseline_dead.iter().copied().collect();
                for loc in locs {
                    if let Some(cert) = self.az.certify_reachable(loc, &[]) {
                        self.claims.push(Claim {
                            label: "shared".into(),
                            kind: ClaimKind::BaselineDead { loc },
                            cert,
                        });
                    }
                }
            }
        }
        self.dead_baseline = Some((metric, check));
        Ok(())
    }

    fn ensure_demonic_fail(&mut self) -> Result<(), StageError> {
        if self.demonic_fail.is_some() {
            return Ok(());
        }
        let (result, metrics) = self.staged(Stage::Screen, None, |s| s.az.fail_set(&[]));
        self.shared
            .record(Stage::Screen, metrics.seconds, metrics.queries);
        self.demonic_fail = Some(match result {
            Ok(fails) => fails,
            Err(_) => return Err(self.az.stage_error(Stage::Screen)),
        });
        Ok(())
    }

    /// The shared screen: computes (once) and returns the `Dead(true)`
    /// baseline under `metric` plus the demonic failure set. The dead
    /// baseline is computed first, mirroring the historical driver's
    /// query order.
    ///
    /// # Errors
    ///
    /// Returns a [`StageError`] at [`Stage::Screen`] on budget
    /// exhaustion; completed halves stay cached, so a retry under a
    /// refilled budget resumes where it stopped.
    pub fn screen(&mut self, metric: DeadMetric) -> Result<Screening, StageError> {
        self.ensure_dead_baseline(metric)?;
        self.ensure_demonic_fail()?;
        Ok(Screening {
            dead_check: self
                .dead_baseline
                .as_ref()
                .map(|(_, c)| c.clone())
                .expect("just ensured"),
            demonic_fail: self.demonic_fail.clone().expect("just ensured"),
        })
    }

    /// The provenance tag of an assertion.
    fn tag_of(&self, id: AssertId) -> String {
        self.desugared
            .asserts
            .get(id.0 as usize)
            .map(|m| m.tag.clone())
            .unwrap_or_default()
    }

    /// A fresh report skeleton (empty warnings/specs — no heap clones).
    fn blank_report(&self, label: ReportLabel, seed: &ReportSeed) -> ProcReport {
        ProcReport {
            proc_name: self.proc_name.clone(),
            config: label,
            status: seed.status,
            warnings: Vec::new(),
            specs: Vec::new(),
            min_fail: seed.min_fail,
            stats: ProcStats {
                n_predicates: seed.n_predicates,
                n_cover_clauses: seed.n_cover_clauses,
                search_nodes: seed.search_nodes,
                solver_queries: 0,
                stages: StageTable::default(),
                smt: SolverCounters::default(),
            },
            outcome: seed.outcome,
            timeout_stage: seed.timeout_stage,
        }
    }

    /// Stamps a report's stage table, query count, and SMT work
    /// counters: the shared encode/screen snapshot plus this
    /// configuration's delta since the run baselines.
    fn stamp_stats(
        &self,
        report: &mut ProcReport,
        run_baseline: &StageTable,
        smt_baseline: &SolverCounters,
    ) {
        let mut stages = self.shared;
        stages.merge(&self.az.stage_stats().since(run_baseline));
        report.stats.solver_queries = stages.total_queries();
        report.stats.stages = stages;
        let mut smt = self.shared_smt;
        smt.add(&self.az.solver_counters().since(smt_baseline));
        report.stats.smt = smt;
    }

    /// The `Cons` baseline: the demonic half of the shared screen,
    /// labeled [`ReportLabel::Cons`]. Refills the budget first; reuses
    /// the cached screen when a configuration already ran (zero new
    /// queries).
    pub fn cons(&mut self) -> ProcReport {
        self.az.refill_budget();
        let run_baseline = self.az.stage_stats();
        let smt_baseline = self.az.solver_counters();
        let mut seed = ReportSeed::default();
        let mut warnings = Vec::new();
        match self.ensure_demonic_fail() {
            Ok(()) => {
                let fails = self.demonic_fail.as_ref().expect("just ensured").clone();
                if fails.is_empty() {
                    seed.status = SibStatus::Correct;
                }
                if self.certify {
                    self.certify_cons(&fails);
                }
                warnings = fails
                    .into_iter()
                    .map(|id| Warning {
                        assert: id,
                        tag: self.tag_of(id),
                        witness: None,
                    })
                    .collect();
            }
            Err(e) => {
                seed.outcome = AnalysisOutcome::TimedOut;
                seed.timeout_stage = Some(e.stage);
            }
        }
        let mut report = self.blank_report(ReportLabel::Cons, &seed);
        report.warnings = warnings;
        self.stamp_stats(&mut report, &run_baseline, &smt_baseline);
        report
    }

    /// The `Mine` stage: collects the predicate vocabulary `Q` under the
    /// configuration's abstraction (§4.4). Purely syntactic — no
    /// queries; the stage records its wall-clock time. The caller (or
    /// [`ProcSession::run_config`]) enforces `max_predicates`.
    pub fn mine(&mut self, opts: &AcspecOptions) -> Vec<Atom> {
        let label = Some(ReportLabel::Config(opts.config));
        let abstraction = opts.config.abstraction();
        self.staged(Stage::Mine, label, |s| {
            // Mine through the session's term arena: the four
            // configurations share most of their (atom, assignment)
            // pairs, so later configs replay the substitution/atom
            // memos instead of recomputing.
            let ProcSession { az, desugared, .. } = s;
            mine_predicates_interned(az.arena_mut(), desugared, abstraction)
        })
        .0
    }

    /// The `Cover` stage: the predicate cover `β_Q(wp)` via ALL-SAT
    /// (§4.1), capped at `opts.max_cover_clauses`.
    ///
    /// # Errors
    ///
    /// Returns a [`StageError`] at [`Stage::Cover`] on budget or cap
    /// exhaustion.
    pub fn cover(&mut self, opts: &AcspecOptions, q: &[Atom]) -> Result<Cover, StageError> {
        let label = Some(ReportLabel::Config(opts.config));
        let cap = opts.max_cover_clauses;
        self.cover_salvage = None;
        self.staged(Stage::Cover, label, |s| {
            let mut salvage = None;
            let out = predicate_cover_salvaging(&mut s.az, q, cap, &mut salvage);
            s.cover_salvage = salvage;
            out
        })
        .0
        .map_err(|_| self.az.stage_error(Stage::Cover))
    }

    /// The `Search` stage: Algorithm 2's greedy weakening over the
    /// installed cover, under the session's cached dead baseline for
    /// `opts.dead_metric`.
    ///
    /// # Errors
    ///
    /// Returns a [`StageError`] at [`Stage::Search`] on budget or node
    /// exhaustion (at [`Stage::Screen`] if the dead baseline itself is
    /// missing and times out).
    pub fn search(
        &mut self,
        opts: &AcspecOptions,
        cover: &Cover,
    ) -> Result<SearchOutcome, StageError> {
        self.ensure_dead_baseline(opts.dead_metric)?;
        let dead_check = self
            .dead_baseline
            .as_ref()
            .map(|(_, c)| c.clone())
            .expect("just ensured");
        let label = Some(ReportLabel::Config(opts.config));
        let max_nodes = opts.max_search_nodes;
        self.search_salvage = None;
        self.staged(Stage::Search, label, |s| {
            let handles = cover.install_handles(&mut s.az);
            let selectors: Vec<Selector> = handles.iter().map(|&(sel, _)| sel).collect();
            let bodies: Vec<TermId> = handles.iter().map(|&(_, b)| b).collect();
            let mut salvage = None;
            let out = find_almost_correct_specs_salvaging(
                &mut s.az,
                &selectors,
                &dead_check,
                max_nodes,
                Some(&bodies),
                &mut salvage,
            );
            s.search_salvage = salvage;
            out
        })
        .0
        .map_err(|_| self.az.stage_error(Stage::Search))
    }

    /// Normalizes each output specification of the search once
    /// (semantic normal form when `|Q|` permits, else syntactic), as the
    /// first half of the `Evaluate` stage. Skipped (returns the raw
    /// clauses) when `opts.apply_normalize` is off.
    pub fn normal_form(
        &mut self,
        opts: &AcspecOptions,
        cover: &Cover,
        search: &SearchOutcome,
    ) -> Vec<Vec<QClause>> {
        let label = Some(ReportLabel::Config(opts.config));
        let apply = opts.apply_normalize;
        let cap = opts.normalize_max_clauses;
        self.staged(Stage::Evaluate, label, |s| {
            search
                .specs
                .iter()
                .map(|subset| {
                    let clauses: Vec<QClause> = subset
                        .iter()
                        .map(|&i| cover.clauses[i as usize].clone())
                        .collect();
                    if apply {
                        semantic_normal_form(&mut s.az, cover, &clauses, cap)
                            .unwrap_or_else(|| normalize(&clauses, cap))
                    } else {
                        clauses
                    }
                })
                .collect()
        })
        .0
    }

    /// The `Evaluate` stage for one prune variant: prunes each
    /// normalized specification (§4.3), collects the induced failures
    /// `E = Fail(Φ)` and a concrete witness per warned assertion.
    /// Budget exhaustion mid-way keeps the partial warning set and is
    /// reported in [`Evaluation::timeout`].
    pub fn evaluate(
        &mut self,
        opts: &AcspecOptions,
        cover: &Cover,
        normalized: &[Vec<QClause>],
        prune: PruneConfig,
    ) -> Evaluation {
        let label = Some(ReportLabel::Config(opts.config));
        // Pruned clause sets whose `Fail(Φ)` query completed, with their
        // failure sets — certified after the staged closure returns so
        // replay wall time stays out of the stage table.
        let mut completed: Vec<(Vec<QClause>, Formula, BTreeSet<AssertId>)> = Vec::new();
        let evaluation = self
            .staged(Stage::Evaluate, label, |s| {
                let call_sites_of_pred = |p: usize| -> Vec<u32> {
                    cover.preds[p]
                        .nu_consts()
                        .into_iter()
                        .map(|nu| nu.site)
                        .collect()
                };
                let mut warned: BTreeSet<AssertId> = BTreeSet::new();
                let mut witnesses: BTreeMap<AssertId, Witness> = BTreeMap::new();
                let mut specs: Vec<Formula> = Vec::new();
                let mut timeout = None;
                for clauses in normalized {
                    let pruned = prune_clauses(clauses, prune, &call_sites_of_pred);
                    let spec_formula = clauses_to_formula(&pruned, &cover.preds);
                    if !specs.contains(&spec_formula) {
                        specs.push(spec_formula.clone());
                    }
                    let sel = install_clause_set_selector(&mut s.az, cover, &pruned);
                    match s.az.fail_set(&[sel]) {
                        Ok(fails) => {
                            for id in &fails {
                                if !witnesses.contains_key(id) {
                                    if let Ok(Some(w)) = s.az.failure_witness(*id, &[sel]) {
                                        if !w.is_empty() {
                                            witnesses.insert(*id, Witness::from(w));
                                        }
                                    }
                                }
                            }
                            completed.push((pruned, spec_formula, fails.clone()));
                            warned.extend(fails);
                        }
                        Err(_) => {
                            timeout = Some(s.az.stage_error(Stage::Evaluate));
                            break;
                        }
                    }
                }
                let warnings = warned
                    .into_iter()
                    .map(|id| Warning {
                        assert: id,
                        tag: s.tag_of(id),
                        witness: witnesses.remove(&id),
                    })
                    .collect();
                Evaluation {
                    specs,
                    warnings,
                    timeout,
                }
            })
            .0;
        if self.certify {
            self.certify_specs(ReportLabel::Config(opts.config), cover, &completed);
        }
        evaluation
    }

    /// Runs the full pipeline (`FindAbstractSIBs`, Algorithm 1) for one
    /// configuration, evaluating every prune variant against a single
    /// mine/cover/search run. Returns one report per variant, in order
    /// (`prune_variants` empty ⇒ one report for `opts.prune`). Budget
    /// exhaustion is folded into the reports (`outcome`/`timeout_stage`),
    /// never an error — encoding already succeeded at
    /// [`ProcSession::new`].
    pub fn run_config(
        &mut self,
        opts: &AcspecOptions,
        prune_variants: &[PruneConfig],
    ) -> Vec<ProcReport> {
        let label = ReportLabel::Config(opts.config);
        let variants: Vec<PruneConfig> = if prune_variants.is_empty() {
            vec![opts.prune]
        } else {
            prune_variants.to_vec()
        };
        let n = variants.len();
        self.az.refill_budget();
        let mut seed = ReportSeed::default();

        // Shared screen (cached after the first configuration): dead
        // baseline first, then the demonic failure set — the historical
        // driver's query order.
        let screening = match self.screen(opts.dead_metric) {
            Ok(s) => s,
            Err(e) => return self.degrade_reports(label, seed, e, n),
        };
        let run_baseline = self.az.stage_stats();
        let smt_baseline = self.az.solver_counters();

        // The conservative screen: no demonic failures ⇒ correct; the
        // paper excludes such procedures from all statistics.
        if screening.demonic_fail.is_empty() {
            seed.status = SibStatus::Correct;
            return self.finish_reports(label, seed, n, &run_baseline, &smt_baseline);
        }

        // Mine Q; oversized vocabularies time out (ALL-SAT is 2^|Q|).
        let q = self.mine(opts);
        seed.n_predicates = q.len();
        if q.len() > opts.max_predicates {
            self.az.note_cap_fault();
            let e = StageError {
                stage: Stage::Mine,
                reason: FaultReason::Cap,
            };
            return self.degrade_reports(label, seed, e, n);
        }

        let cover = match self.cover(opts, &q) {
            Ok(c) => c,
            Err(e) => {
                // Second rung: a non-empty partial cover is a weaker (but
                // sound) screen than β_Q(wp) — evaluate it directly.
                if let Some(partial) = self.cover_salvage.take() {
                    if !partial.clauses.is_empty() {
                        return self.degraded_cover_reports(label, seed, e, n, opts, &partial);
                    }
                }
                return self.degrade_reports(label, seed, e, n);
            }
        };
        seed.n_cover_clauses = cover.clauses.len();
        if self.certify {
            self.certify_cover(label, &cover, true);
        }

        // Top rung: a failed search still yields Algorithm 2's best
        // candidate so far; the rest of the pipeline runs on it.
        let (search, degraded_search) = match self.search(opts, &cover) {
            Ok(s) => (s, None),
            Err(e) => match self.search_salvage.take() {
                Some(best) => (best, Some(e.stage)),
                None => return self.degrade_reports(label, seed, e, n),
            },
        };
        seed.search_nodes = search.nodes_visited;
        seed.status = if search.root_dead {
            SibStatus::Sib
        } else {
            SibStatus::MayBug
        };
        seed.min_fail = search.min_fail;
        if let Some(stage) = degraded_search {
            seed.outcome = AnalysisOutcome::Degraded {
                from_stage: stage,
                fallback: Fallback::BestCandidate,
            };
            seed.timeout_stage = Some(stage);
        }
        if self.certify {
            // Works for salvaged outcomes too: the abort path logs the
            // same chains/evidence, so a degraded run stays auditable.
            self.certify_search(label, &cover, &search);
        }

        let normalized = self.normal_form(opts, &cover, &search);
        let mut out = Vec::with_capacity(n);
        for prune in variants {
            let evaluation = self.evaluate(opts, &cover, &normalized, prune);
            let mut r = self.blank_report(label, &seed);
            r.specs = evaluation.specs;
            r.warnings = evaluation.warnings;
            if let Some(e) = evaluation.timeout {
                if degraded_search.is_none() {
                    // Bottom rung: the evaluation was interrupted but its
                    // partial warning set is kept (as the paper's driver
                    // did) — now labeled as such instead of a bare
                    // timeout.
                    r.outcome = AnalysisOutcome::Degraded {
                        from_stage: e.stage,
                        fallback: Fallback::PartialEvaluation,
                    };
                    r.timeout_stage = Some(e.stage);
                }
            }
            self.stamp_stats(&mut r, &run_baseline, &smt_baseline);
            out.push(r);
        }
        out
    }

    /// One report per variant for a run that faulted at `error`: falls
    /// back to the shared `Cons` screen when the demonic failure set is
    /// available (`Degraded`/`ConsScreen` with the demonic warnings), or
    /// to a plain `TimedOut` when the fault hit before the screen
    /// finished and there is nothing to salvage.
    fn degrade_reports(
        &mut self,
        label: ReportLabel,
        mut seed: ReportSeed,
        error: StageError,
        n: usize,
    ) -> Vec<ProcReport> {
        seed.timeout_stage = Some(error.stage);
        let baseline = self.az.stage_stats();
        let smt_baseline = self.az.solver_counters();
        match self.demonic_fail.clone() {
            Some(fails) if !fails.is_empty() => {
                seed.outcome = AnalysisOutcome::Degraded {
                    from_stage: error.stage,
                    fallback: Fallback::ConsScreen,
                };
                let warnings: Vec<Warning> = fails
                    .into_iter()
                    .map(|id| Warning {
                        assert: id,
                        tag: self.tag_of(id),
                        witness: None,
                    })
                    .collect();
                (0..n)
                    .map(|_| {
                        let mut r = self.blank_report(label, &seed);
                        r.warnings = warnings.clone();
                        self.stamp_stats(&mut r, &baseline, &smt_baseline);
                        r
                    })
                    .collect()
            }
            _ => {
                seed.outcome = AnalysisOutcome::TimedOut;
                self.finish_reports(label, seed, n, &baseline, &smt_baseline)
            }
        }
    }

    /// One report per variant evaluating a salvaged partial cover: its
    /// clause conjunction is the specification, and the warnings are the
    /// demonic screen's (the partial cover is weaker than `β_Q(wp)`, so
    /// the demonic set over-approximates its failures soundly).
    fn degraded_cover_reports(
        &mut self,
        label: ReportLabel,
        mut seed: ReportSeed,
        error: StageError,
        n: usize,
        opts: &AcspecOptions,
        partial: &Cover,
    ) -> Vec<ProcReport> {
        seed.n_cover_clauses = partial.clauses.len();
        seed.timeout_stage = Some(error.stage);
        seed.outcome = AnalysisOutcome::Degraded {
            from_stage: error.stage,
            fallback: Fallback::CappedCover,
        };
        if self.certify {
            // A salvaged cover is partial: its cubes are still certified
            // feasible, but no exhaustion claim is made.
            self.certify_cover(label, partial, false);
        }
        let baseline = self.az.stage_stats();
        let smt_baseline = self.az.solver_counters();
        let spec = clauses_to_formula(
            &normalize(&partial.clauses, opts.normalize_max_clauses),
            &partial.preds,
        );
        let warnings: Vec<Warning> = self
            .demonic_fail
            .clone()
            .unwrap_or_default()
            .into_iter()
            .map(|id| Warning {
                assert: id,
                tag: self.tag_of(id),
                witness: None,
            })
            .collect();
        (0..n)
            .map(|_| {
                let mut r = self.blank_report(label, &seed);
                r.specs = vec![spec.clone()];
                r.warnings = warnings.clone();
                self.stamp_stats(&mut r, &baseline, &smt_baseline);
                r
            })
            .collect()
    }

    /// One identical report per variant, built fresh instead of cloning
    /// a populated report `n` times.
    fn finish_reports(
        &self,
        label: ReportLabel,
        seed: ReportSeed,
        n: usize,
        run_baseline: &StageTable,
        smt_baseline: &SolverCounters,
    ) -> Vec<ProcReport> {
        (0..n)
            .map(|_| {
                let mut r = self.blank_report(label, &seed);
                self.stamp_stats(&mut r, run_baseline, smt_baseline);
                r
            })
            .collect()
    }

    // -----------------------------------------------------------------
    // Certification (all off the query path: fresh-solver replays that
    // charge no budget, draw no chaos, and bump no counters; and all
    // called *outside* `staged` closures so replay wall time never
    // reaches the stage tables).
    // -----------------------------------------------------------------

    /// Certifies the `Cons` screen: one claim per assertion — `can_fail`
    /// (Sat, with a failure model) for demonic warnings, `cannot_fail`
    /// (Unsat, with a proof) for the rest.
    fn certify_cons(&mut self, fails: &BTreeSet<AssertId>) {
        for a in self.az.assertions() {
            let tag = self.tag_of(a);
            let kind = if fails.contains(&a) {
                ClaimKind::CanFail { assert: a, tag }
            } else {
                ClaimKind::CannotFail { assert: a, tag }
            };
            if let Some(cert) = self.az.certify_can_fail(a, &[]) {
                self.claims.push(Claim {
                    label: "Cons".into(),
                    kind,
                    cert,
                });
            }
        }
    }

    /// Certifies a predicate cover: each clause's originating ALL-SAT
    /// cube is feasible (Sat), and — for complete covers — the blocking
    /// clauses exhaust the failure space (Unsat).
    fn certify_cover(&mut self, label: ReportLabel, cover: &Cover, complete: bool) {
        let label_s = label.to_string();
        let mut blocking: Vec<Vec<TermId>> = Vec::with_capacity(cover.clauses.len());
        for (i, clause) in cover.clauses.iter().enumerate() {
            // The cover clause is the negation of the discovered cube: a
            // positive clause literal means the cube assigned the
            // predicate false.
            let mut cube_terms: Vec<TermId> = Vec::with_capacity(clause.lits().len());
            let mut lits: Vec<i64> = Vec::with_capacity(clause.lits().len());
            let mut block: Vec<TermId> = Vec::with_capacity(clause.lits().len());
            for l in clause.lits() {
                let ind = cover.indicators[l.pred];
                if l.positive {
                    cube_terms.push(self.az.ctx.mk_not(ind));
                    lits.push(-i64::from(ind.0));
                    block.push(ind);
                } else {
                    cube_terms.push(ind);
                    lits.push(i64::from(ind.0));
                    block.push(self.az.ctx.mk_not(ind));
                }
            }
            blocking.push(block);
            if let Some(cert) = self.az.certify_any_failure(&[], &cube_terms, &[]) {
                self.claims.push(Claim {
                    label: label_s.clone(),
                    kind: ClaimKind::CubeFeasible { cube: i, lits },
                    cert,
                });
            }
        }
        if complete {
            if let Some(cert) = self.az.certify_any_failure(&[], &[], &blocking) {
                self.claims.push(Claim {
                    label: label_s,
                    kind: ClaimKind::CoverExhausted,
                    cert,
                });
            }
        }
    }

    /// Certifies the search's weakening chains: every dead verdict along
    /// a chain gets evidence — an inconsistency or unreachability proof
    /// for direct verdicts, a reference to the dominating subset's own
    /// proof for lattice hits (never a fabricated one).
    fn certify_search(&mut self, label: ReportLabel, cover: &Cover, search: &SearchOutcome) {
        let label_s = label.to_string();
        let handles = cover.install_handles(&mut self.az);
        let selectors: Vec<Selector> = handles.iter().map(|&(sel, _)| sel).collect();
        // Direct evidence first; dominated subsets reference it.
        let mut direct: HashMap<Vec<u32>, StepEvidence> = HashMap::new();
        for (subset, ev) in &search.dead_evidence {
            let active: Vec<Selector> = subset.iter().map(|&i| selectors[i as usize]).collect();
            match ev {
                DeadEvidence::Inconsistent => {
                    if let Some(cert) = self.az.certify_consistent(&active, &[]) {
                        direct.insert(subset.clone(), StepEvidence::Inconsistent { cert });
                    }
                }
                DeadEvidence::DeadLoc(loc) => {
                    if let Some(cert) = self.az.certify_reachable(*loc, &active) {
                        direct.insert(subset.clone(), StepEvidence::DeadLoc { loc: *loc, cert });
                    }
                }
                DeadEvidence::Path => {
                    direct.insert(subset.clone(), StepEvidence::Path);
                }
                DeadEvidence::Dominated(_) => {}
            }
        }
        let mut full = direct.clone();
        for (subset, ev) in &search.dead_evidence {
            if let DeadEvidence::Dominated(base) = ev {
                if let Some(base_ev) = direct.get(base) {
                    full.insert(
                        subset.clone(),
                        StepEvidence::Dominated {
                            base: base.clone(),
                            evidence: Box::new(base_ev.clone()),
                        },
                    );
                }
            }
        }
        for (i, steps) in search.chains.iter().enumerate() {
            let spec: Vec<u32> = search
                .specs
                .get(i)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default();
            let mut recs = Vec::with_capacity(steps.len());
            let mut grounded = true;
            for st in steps {
                match full.get(&st.subset) {
                    Some(ev) => recs.push(ChainStepRecord {
                        subset: st.subset.clone(),
                        removed: st.removed,
                        evidence: ev.clone(),
                    }),
                    None => {
                        grounded = false;
                        break;
                    }
                }
            }
            if grounded {
                self.chains.push(ChainRecord {
                    label: label_s.clone(),
                    spec,
                    steps: recs,
                });
            }
        }
    }

    /// Certifies the evaluated specifications: per spec × screened
    /// assertion, `spec_fails` (Sat: the warning's failure model) or
    /// `spec_holds` (Unsat: the suppression is proved). Restricted to
    /// the demonic failure set — assertions that cannot fail demonically
    /// cannot fail under any specification (§2.3 monotonicity) and are
    /// already covered by the `Cons` claims.
    fn certify_specs(
        &mut self,
        label: ReportLabel,
        cover: &Cover,
        completed: &[(Vec<QClause>, Formula, BTreeSet<AssertId>)],
    ) {
        let label_s = label.to_string();
        let demonic: Vec<AssertId> = self
            .demonic_fail
            .clone()
            .unwrap_or_default()
            .into_iter()
            .collect();
        for (pruned, formula, fails) in completed {
            let spec_s = formula.to_string();
            if !self.cert_seen.insert((label_s.clone(), spec_s.clone())) {
                continue;
            }
            let sel = install_clause_set_selector(&mut self.az, cover, pruned);
            for &a in &demonic {
                let tag = self.tag_of(a);
                let kind = if fails.contains(&a) {
                    ClaimKind::SpecFails {
                        spec: spec_s.clone(),
                        assert: a,
                        tag,
                    }
                } else {
                    ClaimKind::SpecHolds {
                        spec: spec_s.clone(),
                        assert: a,
                        tag,
                    }
                };
                if let Some(cert) = self.az.certify_can_fail(a, &[sel]) {
                    self.claims.push(Claim {
                        label: label_s.clone(),
                        kind,
                        cert,
                    });
                }
            }
        }
    }
}

/// Scalar fields shared by every variant's report.
#[derive(Debug, Clone, Copy)]
struct ReportSeed {
    status: SibStatus,
    min_fail: usize,
    n_predicates: usize,
    n_cover_clauses: usize,
    search_nodes: usize,
    outcome: AnalysisOutcome,
    timeout_stage: Option<Stage>,
}

impl Default for ReportSeed {
    fn default() -> Self {
        ReportSeed {
            status: SibStatus::MayBug,
            min_fail: 0,
            n_predicates: 0,
            n_cover_clauses: 0,
            search_nodes: 0,
            outcome: AnalysisOutcome::Ok,
            timeout_stage: None,
        }
    }
}

/// Installs a selector for an arbitrary clause set over the cover's
/// indicator terms.
fn install_clause_set_selector(
    az: &mut ProcAnalyzer,
    cover: &Cover,
    clauses: &[QClause],
) -> Selector {
    let mut conj: Vec<TermId> = Vec::with_capacity(clauses.len());
    for c in clauses {
        let parts: Vec<TermId> = c
            .lits()
            .iter()
            .map(|l| {
                let b = cover.indicators[l.pred];
                if l.positive {
                    b
                } else {
                    az.ctx.mk_not(b)
                }
            })
            .collect();
        conj.push(az.ctx.mk_or(parts));
    }
    let body = az.ctx.mk_and(conj);
    az.add_selector_term(body)
}

/// Computes the *strongest* clause set with the same consistent input
/// states as `clauses` by enumerating the specification's
/// theory-satisfiable cubes and negating the complement, then Boolean
/// normalizing.
///
/// The maximal-clause cover omits clauses for theory-inconsistent cubes
/// (ALL-SAT never produces them), which leaves weaker-looking Boolean
/// forms than the paper's displayed specifications (e.g. Figure 1's
/// `!Freed[c] && !Freed[buf] && c != buf`); this pass recovers the
/// paper's form. Returns `None` (caller falls back to syntactic
/// normalization) when `|Q|` is too large for cube enumeration.
fn semantic_normal_form(
    az: &mut ProcAnalyzer,
    cover: &Cover,
    clauses: &[QClause],
    normalize_cap: usize,
) -> Option<Vec<QClause>> {
    use acspec_predabs::clause::QLit;
    let nq = cover.preds.len();
    if nq == 0 || nq > 10 {
        return None;
    }
    let sel = install_clause_set_selector(az, cover, clauses);
    let session = az.ctx.fresh_bool_var("semnf");
    let not_session = az.ctx.mk_not(session);
    let mut models: std::collections::HashSet<u32> = std::collections::HashSet::new();
    loop {
        match az.is_consistent(&[sel], &[session]) {
            Ok(true) => {}
            Ok(false) => break,
            Err(_) => return None,
        }
        let mut mask = 0u32;
        let mut blocking: Vec<TermId> = vec![not_session];
        for (i, &b) in cover.indicators.iter().enumerate() {
            let v = az.model_bool(b).unwrap_or(false);
            if v {
                mask |= 1 << i;
            }
            blocking.push(if v { az.ctx.mk_not(b) } else { b });
        }
        az.add_clause(&blocking);
        models.insert(mask);
        if models.len() > 256 {
            return None;
        }
    }
    // Strongest equivalent: forbid every cube that is not a consistent
    // model of the specification.
    let mut out = Vec::new();
    for mask in 0..(1u32 << nq) {
        if models.contains(&mask) {
            continue;
        }
        let lits: Vec<QLit> = (0..nq)
            .map(|i| QLit {
                pred: i,
                positive: mask & (1 << i) == 0,
            })
            .collect();
        out.push(QClause::new(lits));
    }
    Some(normalize(&out, normalize_cap))
}

/// Program-level orchestration: a session per defined procedure, fanned
/// out over a scoped worker pool, with deterministic ordering and
/// observer replay.
#[derive(Debug, Clone)]
pub struct ProgramAnalysis<'p> {
    program: &'p Program,
    base: AcspecOptions,
    configs: Vec<ConfigName>,
    prune_variants: Vec<PruneConfig>,
    threads: usize,
    /// Unified search-worker budget (`0` = same as `threads`): the
    /// total thread count shared between procedure-level fan-out and
    /// query-level parallelism (portfolio races, cube workers).
    search_threads: usize,
    skip_correct: bool,
    certify: bool,
    store: Option<&'p StoreSession>,
}

/// Everything one session produced for one procedure.
#[derive(Debug, Clone)]
pub struct ProcAnalysis {
    /// Procedure name.
    pub proc_name: String,
    /// The `Cons` baseline report.
    pub cons: ProcReport,
    /// `reports[config][variant]`, parallel to the requested configs and
    /// prune variants. Empty when the procedure was screened correct and
    /// correct procedures are skipped.
    pub reports: Vec<Vec<ProcReport>>,
    /// The session's stage events, in execution order.
    pub events: Vec<StageEvent>,
    /// The session's query events (empty unless the observer opted in
    /// via [`SessionObserver::wants_queries`]), grouped by enclosing
    /// stage run in stage completion order.
    pub queries: Vec<QueryEvent>,
    /// The session's certificates (claims, chains, shared store). `None`
    /// unless [`ProgramAnalysis::certify`] was enabled — and always
    /// `None` for warm store hits, whose certificate document comes from
    /// [`ProcAnalysis::certs_fragment`] instead.
    pub certs: Option<ProcCerts>,
    /// True when this analysis was reconstructed from the persistent
    /// result store (zero solver queries ran; `events`/`queries` are
    /// empty).
    pub from_store: bool,
    /// Non-fatal incidents attached to this (completed) analysis —
    /// currently store-corruption records: the entry was quarantined and
    /// the procedure recomputed, so the verdict is intact but the
    /// operator should know the storage decayed.
    pub incidents: Vec<AnalysisIncident>,
    /// The pre-rendered certificate fragment
    /// ([`crate::certs::proc_certs_json`]) backing this analysis, when
    /// certification ran (cold) or was stored (warm). Reassembling
    /// fragments with [`crate::certs::certs_json_from_fragments`] yields
    /// a byte-identical sidecar either way.
    pub certs_fragment: Option<String>,
    /// The dominance-cache antichains at session end (cold, when the
    /// query cache was on) or as stored (warm) — seed material for
    /// [`ProcAnalyzer::seed_cache`] when re-analyzing related bodies.
    pub antichains: Option<acspec_vcgen::cache::CacheSnapshot>,
}

impl ProcAnalysis {
    /// True if the baseline or any configuration variant timed out.
    pub fn timed_out(&self) -> bool {
        self.cons.timed_out() || self.reports.iter().flatten().any(ProcReport::timed_out)
    }
}

/// What the isolation layer produced for one procedure: either the
/// completed analysis, or the incident (panic or error) that aborted it.
/// Every defined procedure yields exactly one `ProcOutcome` — one bad
/// procedure never takes down the run.
#[derive(Debug)]
pub enum ProcOutcome {
    /// The session ran to completion (its reports may still be
    /// `TimedOut` or `Degraded`).
    Analyzed(Box<ProcAnalysis>),
    /// The session panicked or errored; the isolation layer caught it.
    Faulted(AnalysisIncident),
}

impl ProcOutcome {
    /// The procedure's name, whichever way it went.
    pub fn proc_name(&self) -> &str {
        match self {
            ProcOutcome::Analyzed(pa) => &pa.proc_name,
            ProcOutcome::Faulted(i) => &i.proc_name,
        }
    }

    /// The completed analysis, if any.
    pub fn analysis(&self) -> Option<&ProcAnalysis> {
        match self {
            ProcOutcome::Analyzed(pa) => Some(pa),
            ProcOutcome::Faulted(_) => None,
        }
    }

    /// The incident, if the procedure faulted.
    pub fn incident(&self) -> Option<&AnalysisIncident> {
        match self {
            ProcOutcome::Analyzed(_) => None,
            ProcOutcome::Faulted(i) => Some(i),
        }
    }

    /// Consumes the outcome, keeping only a completed analysis.
    pub fn into_analysis(self) -> Option<ProcAnalysis> {
        match self {
            ProcOutcome::Analyzed(pa) => Some(*pa),
            ProcOutcome::Faulted(_) => None,
        }
    }
}

/// Renders a caught panic payload (almost always a `&str` or `String`).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

impl<'p> ProgramAnalysis<'p> {
    /// An analysis of `program` under the evaluation's default ladder
    /// (`Conc`, `A1`, `A2`), no pruning, default options, all cores.
    pub fn new(program: &'p Program) -> ProgramAnalysis<'p> {
        ProgramAnalysis {
            program,
            base: AcspecOptions::default(),
            configs: vec![ConfigName::Conc, ConfigName::A1, ConfigName::A2],
            prune_variants: Vec::new(),
            threads: 0,
            search_threads: 0,
            skip_correct: true,
            certify: false,
            store: None,
        }
    }

    /// Sets the option template (per-config runs override `config`).
    #[must_use]
    pub fn options(mut self, base: AcspecOptions) -> Self {
        self.base = base;
        self
    }

    /// Sets the analyzer budget.
    #[must_use]
    pub fn analyzer(mut self, analyzer: AnalyzerConfig) -> Self {
        self.base.analyzer = analyzer;
        self
    }

    /// Sets the configurations to run, in order.
    #[must_use]
    pub fn configs(mut self, configs: &[ConfigName]) -> Self {
        self.configs = configs.to_vec();
        self
    }

    /// Sets the prune variants each configuration evaluates (empty =
    /// just the template's `prune`).
    #[must_use]
    pub fn prune_variants(mut self, variants: &[PruneConfig]) -> Self {
        self.prune_variants = variants.to_vec();
        self
    }

    /// Sets the worker-thread count (`0` = available parallelism).
    /// Output is deterministic regardless of this setting.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the unified search-worker budget: the total thread count
    /// shared — via one [`SearchPool`] — between procedure-level
    /// fan-out and query-level parallelism (portfolio races, cube
    /// workers). `0` (the default) tracks [`ProgramAnalysis::threads`].
    /// Procedure fan-out claims `min(threads, search_threads)` workers;
    /// the remainder becomes spare permits sessions race on. Output is
    /// deterministic regardless of this setting, which is why it stays
    /// out of the store's options digest (like `threads`).
    #[must_use]
    pub fn search_threads(mut self, search_threads: usize) -> Self {
        self.search_threads = search_threads;
        self
    }

    /// Whether to skip the configuration ladder for procedures the
    /// conservative screen proves correct (default `true`, as the
    /// paper's evaluation does).
    #[must_use]
    pub fn skip_correct(mut self, skip: bool) -> Self {
        self.skip_correct = skip;
        self
    }

    /// Whether every session certifies its verdicts (default `false`).
    /// Certification replays queries against fresh solvers off the
    /// budget/chaos/counter paths, so reports are byte-identical either
    /// way; each [`ProcAnalysis::certs`] then carries the evidence.
    #[must_use]
    pub fn certify(mut self, certify: bool) -> Self {
        self.certify = certify;
        self
    }

    /// Attaches a persistent result store: procedures whose fingerprint
    /// and options match a stored entry are re-emitted byte-identically
    /// with zero solver queries; misses are computed and saved. Ignored
    /// when a wall-clock deadline is configured (deadline runs are
    /// nondeterministic, so their results are not cacheable).
    #[must_use]
    pub fn store(mut self, store: Option<&'p StoreSession>) -> Self {
        self.store = store;
        self
    }

    /// The store key for `proc` under this analysis's exact request, or
    /// `None` when the store is off, a deadline makes results
    /// uncacheable, or the procedure does not desugar (the cold path
    /// will report the real error).
    fn store_key(&self, proc: &Procedure) -> Option<String> {
        self.store?;
        if self.base.analyzer.deadline.is_some() {
            return None;
        }
        let fp = procedure_fingerprint(self.program, proc).ok()?;
        Some(entry_key(
            &fp,
            &options_digest(
                &self.base,
                &self.configs,
                &self.prune_variants,
                self.skip_correct,
                self.certify,
            ),
        ))
    }

    fn analyze_one(
        &self,
        proc: &Procedure,
        record_queries: bool,
        record_search: bool,
        pool: &std::sync::Arc<SearchPool>,
    ) -> Result<ProcAnalysis, AcspecError> {
        let mut incidents = Vec::new();
        let store_key = self.store_key(proc);
        if let (Some(store), Some(key)) = (self.store, store_key.as_deref()) {
            match store.fetch(key, &proc.name) {
                StoreOutcome::Hit(pa) => return Ok(*pa),
                StoreOutcome::Miss => {}
                StoreOutcome::Corrupt(kind) => incidents.push(AnalysisIncident {
                    proc_name: current_proc_or(&proc.name),
                    kind: IncidentKind::StoreCorruption,
                    stage: None,
                    message: format!(
                        "store entry {key} failed validation ({kind}); quarantined and recomputed"
                    ),
                }),
            }
        }
        let mut session = ProcSession::new(self.program, proc, self.base.analyzer)?;
        session.set_pool(pool.clone());
        session.set_query_recording(record_queries);
        session.set_search_recording(record_search);
        if self.certify {
            session.enable_certs();
        }
        let cons = session.cons();
        let reports = if self.skip_correct && cons.status == SibStatus::Correct {
            Vec::new()
        } else {
            self.configs
                .iter()
                .map(|&config| {
                    let mut opts = self.base;
                    opts.config = config;
                    session.run_config(&opts, &self.prune_variants)
                })
                .collect()
        };
        let antichains = session.analyzer_mut().cache_snapshot();
        let certs = session.take_certs();
        let certs_fragment = certs.as_ref().map(proc_certs_json);
        let pa = ProcAnalysis {
            proc_name: proc.name.clone(),
            cons,
            reports,
            events: session.take_events(),
            queries: session.take_query_events(),
            certs,
            from_store: false,
            incidents,
            certs_fragment,
            antichains,
        };
        if let (Some(store), Some(key)) = (self.store, store_key.as_deref()) {
            store.put(key, &pa);
        }
        Ok(pa)
    }

    /// Analyzes one procedure behind a panic/error barrier: anything a
    /// session throws — an [`AcspecError`] or a panic (the solver's, or
    /// an injected chaos panic) — becomes an [`AnalysisIncident`]
    /// attributed to the stage that was executing.
    fn analyze_one_isolated(
        &self,
        proc: &Procedure,
        record_queries: bool,
        record_search: bool,
        pool: &std::sync::Arc<SearchPool>,
    ) -> ProcOutcome {
        CURRENT_STAGE.with(|c| c.set(None));
        CURRENT_PROC.with(|c| *c.borrow_mut() = Some(proc.name.clone()));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.analyze_one(proc, record_queries, record_search, pool)
        }));
        match result {
            Ok(Ok(pa)) => ProcOutcome::Analyzed(Box::new(pa)),
            Ok(Err(e)) => ProcOutcome::Faulted(AnalysisIncident {
                proc_name: current_proc_or(&proc.name),
                kind: IncidentKind::Error,
                stage: CURRENT_STAGE.with(std::cell::Cell::get),
                message: e.to_string(),
            }),
            Err(payload) => ProcOutcome::Faulted(AnalysisIncident {
                proc_name: current_proc_or(&proc.name),
                kind: IncidentKind::Panic,
                stage: CURRENT_STAGE.with(std::cell::Cell::get),
                message: panic_message(payload.as_ref()),
            }),
        }
    }

    /// Analyzes every defined procedure, fanning sessions out over the
    /// worker pool, then replays stage events to `observer` in procedure
    /// order (so observer output is deterministic). Infallible: panics
    /// and errors are isolated per procedure and returned as
    /// [`ProcOutcome::Faulted`] incidents.
    pub fn run(&self, observer: &mut dyn SessionObserver) -> Vec<ProcOutcome> {
        let defined: Vec<&Procedure> = self
            .program
            .procedures
            .iter()
            .filter(|p| p.body.is_some())
            .collect();
        let threads = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.threads
        }
        .min(defined.len().max(1));
        // One worker budget for the whole run: procedure fan-out claims
        // up to `search_threads` workers; whatever is left over becomes
        // spare permits that sessions' portfolio races and cube workers
        // draw from. Results never depend on permit availability.
        let search_budget = if self.search_threads == 0 {
            threads
        } else {
            self.search_threads
        };
        let threads = threads.min(search_budget).max(1);
        let pool = std::sync::Arc::new(SearchPool::new(search_budget.saturating_sub(threads)));
        let record_queries = observer.wants_queries();
        let record_search = observer.wants_search();

        let results: Vec<ProcOutcome> = if threads <= 1 {
            defined
                .iter()
                .map(|p| self.analyze_one_isolated(p, record_queries, record_search, &pool))
                .collect()
        } else {
            // Longest procedures first, so the heaviest one (e.g. Drv7)
            // never lands on a worker last and dominates tail latency.
            // Results land in per-procedure-index slots regardless of
            // service order, so output is byte-identical to sequential.
            let order = schedule_longest_first(&defined);
            let next = std::sync::atomic::AtomicUsize::new(0);
            let slots: Vec<std::sync::Mutex<Option<ProcOutcome>>> = (0..defined.len())
                .map(|_| std::sync::Mutex::new(None))
                .collect();
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| loop {
                        let k = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if k >= order.len() {
                            break;
                        }
                        let i = order[k];
                        let result = self.analyze_one_isolated(
                            defined[i],
                            record_queries,
                            record_search,
                            &pool,
                        );
                        *slots[i].lock().expect("no poisoning") = Some(result);
                    });
                }
            });
            slots
                .into_iter()
                .map(|s| {
                    s.into_inner()
                        .expect("no poisoning")
                        .expect("worker filled slot")
                })
                .collect()
        };

        let mut out = Vec::with_capacity(results.len());
        for outcome in results {
            match &outcome {
                ProcOutcome::Analyzed(pa) => {
                    // Queries are grouped by stage run in stage
                    // completion order, so a single cursor delivers each
                    // stage's queries just before its `stage_completed`.
                    let mut cursor = 0;
                    for event in &pa.events {
                        while cursor < pa.queries.len() && pa.queries[cursor].stage_seq == event.seq
                        {
                            observer.query_completed(&pa.queries[cursor]);
                            cursor += 1;
                        }
                        observer.stage_completed(event);
                    }
                    for query in &pa.queries[cursor..] {
                        observer.query_completed(query);
                    }
                    for r in std::iter::once(&pa.cons).chain(pa.reports.iter().flatten()) {
                        if let AnalysisOutcome::Degraded {
                            from_stage,
                            fallback,
                        } = r.outcome
                        {
                            observer.degradation_recorded(&pa.proc_name, from_stage, fallback);
                        }
                    }
                    for incident in &pa.incidents {
                        observer.incident_recorded(incident);
                    }
                    observer.proc_completed(&pa.proc_name);
                }
                ProcOutcome::Faulted(incident) => {
                    observer.incident_recorded(incident);
                    observer.proc_completed(&incident.proc_name);
                }
            }
            out.push(outcome);
        }
        out
    }
}

/// Dispatch order for the work queue: procedure indices sorted by
/// descending statement count (index as the tie-break, so the order is
/// total and deterministic). Workers pull from this order; results are
/// still keyed by procedure index.
fn schedule_longest_first(defined: &[&Procedure]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..defined.len()).collect();
    order.sort_by_key(|&i| {
        let cost = defined[i].body.as_ref().map_or(0, Stmt::simple_stmt_count);
        (std::cmp::Reverse(cost), i)
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use acspec_ir::parse::parse_program;

    const FIGURE1: &str = "
        global Freed: map;
        procedure Foo(c: int, buf: int, cmd: int) {
          if (*) {
            assert Freed[c] == 0;   Freed[c] := 1;
            assert Freed[buf] == 0; Freed[buf] := 1;
          } else {
            if (cmd == 1) {
              if (*) {
                assert Freed[c] == 0;   Freed[c] := 1;
                assert Freed[buf] == 0; Freed[buf] := 1;
              }
            }
            assert Freed[c] == 0;   Freed[c] := 1;
            assert Freed[buf] == 0; Freed[buf] := 1;
          }
        }";

    /// The acceptance criterion of the session refactor: one encode
    /// serves `Cons` plus every configuration and prune variant.
    #[test]
    fn one_encode_serves_cons_and_all_configs() {
        let prog = parse_program(FIGURE1).expect("parses");
        let proc = prog.procedures[0].clone();
        let mut session =
            ProcSession::new(&prog, &proc, AnalyzerConfig::default()).expect("encodes");
        let cons = session.cons();
        assert_eq!(cons.config, ReportLabel::Cons);
        assert!(!cons.warnings.is_empty());
        let variants = [
            PruneConfig::default(),
            PruneConfig {
                max_literals: Some(1),
                no_cross_call_correlations: false,
            },
        ];
        for config in ConfigName::all() {
            let opts = AcspecOptions::for_config(config);
            let reports = session.run_config(&opts, &variants);
            assert_eq!(reports.len(), variants.len());
            for r in &reports {
                assert_eq!(r.config, config);
                assert!(!r.timed_out(), "{config} timed out");
            }
        }
        let events = session.take_events();
        let encodes = events.iter().filter(|e| e.stage == Stage::Encode).count();
        assert_eq!(encodes, 1, "exactly one encode across Cons + 4 configs");
        let screens: u64 = events
            .iter()
            .filter(|e| e.stage == Stage::Screen)
            .map(|e| e.metrics.queries)
            .sum();
        // Screen = dead baseline + |asserts| demonic fail checks, issued
        // once, not once per configuration.
        assert!(screens > 0);
        let per_config_screens = events
            .iter()
            .filter(|e| e.stage == Stage::Screen && e.label.is_some())
            .count();
        assert_eq!(
            per_config_screens, 0,
            "screen events are shared (unlabeled)"
        );
    }

    #[test]
    fn session_reports_carry_stage_breakdowns() {
        let prog = parse_program(FIGURE1).expect("parses");
        let proc = prog.procedures[0].clone();
        let mut session =
            ProcSession::new(&prog, &proc, AnalyzerConfig::default()).expect("encodes");
        let opts = AcspecOptions::for_config(ConfigName::Conc);
        let r = &session.run_config(&opts, &[])[0];
        assert!(r.stats.solver_queries > 0);
        assert_eq!(r.stats.solver_queries, r.stats.stages.total_queries());
        assert!(r.stats.stages.get(Stage::Screen).queries > 0);
        assert!(r.stats.stages.get(Stage::Cover).queries > 0);
        assert!(r.stats.stages.get(Stage::Search).queries > 0);
        assert!(r.stats.stages.get(Stage::Evaluate).queries > 0);
        assert!(r.stats.seconds() > 0.0);
        assert_eq!(r.timeout_stage, None);
    }

    #[test]
    fn budget_exhaustion_names_the_stage() {
        let prog = parse_program(FIGURE1).expect("parses");
        let proc = prog.procedures[0].clone();
        let mut session = ProcSession::new(
            &prog,
            &proc,
            AnalyzerConfig {
                conflict_budget: Some(1),
                ..AnalyzerConfig::default()
            },
        )
        .expect("encodes");
        let opts = AcspecOptions::for_config(ConfigName::Conc);
        let r = &session.run_config(&opts, &[])[0];
        assert!(r.timed_out());
        assert_eq!(r.timeout_stage, Some(Stage::Screen));
    }

    #[test]
    fn program_analysis_is_deterministic_across_thread_counts() {
        let prog = parse_program(
            "procedure f(x: int) { if (x == 0) { assert x != 0; } }
             procedure g(p: int) { assert p != 0; }
             procedure ok(x: int) { assume x > 0; assert x > 0; }",
        )
        .expect("parses");
        let run = |threads: usize| {
            let mut totals = StageTotals::default();
            let results: Vec<ProcAnalysis> = ProgramAnalysis::new(&prog)
                .threads(threads)
                .run(&mut totals)
                .into_iter()
                .map(|o| o.into_analysis().expect("no incidents"))
                .collect();
            (results, totals)
        };
        let (serial, t1) = run(1);
        let (parallel, t4) = run(4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.proc_name, b.proc_name);
            assert_eq!(a.cons.warnings, b.cons.warnings);
            assert_eq!(a.reports.len(), b.reports.len());
            for (ra, rb) in a.reports.iter().flatten().zip(b.reports.iter().flatten()) {
                assert_eq!(ra.config, rb.config);
                assert_eq!(ra.status, rb.status);
                assert_eq!(ra.warnings, rb.warnings);
            }
        }
        assert_eq!(t1.procs(), t4.procs());
        // Query counts are solver-deterministic; only seconds may differ.
        for (label, table) in t1.iter() {
            assert_eq!(
                table.total_queries(),
                t4.table(label).total_queries(),
                "queries differ for {label:?}"
            );
        }
        // `ok` is screened correct: cons present, ladder skipped.
        let ok = serial.iter().find(|p| p.proc_name == "ok").expect("ok");
        assert_eq!(ok.cons.status, SibStatus::Correct);
        assert!(ok.reports.is_empty());
    }

    #[test]
    fn parallel_search_matrix_is_byte_identical() {
        // Every point of the worker-budget × portfolio × cube matrix
        // must reproduce the sequential run exactly: same reports, same
        // warning set (including witnesses), and — whenever the cover
        // stage runs on the incremental solver (cube off) — byte-
        // identical certificate fragments. Cube-split runs enumerate on
        // fresh per-cube solvers instead of the parent context, so their
        // fresh-variable suffixes (and hence certificate bytes) shift;
        // those certificates are held to the independent checker
        // instead. Permits decide *when* work runs, never *what* is
        // computed.
        let prog = parse_program(
            "procedure f(x: int) { if (x == 0) { assert x != 0; } }
             procedure g(p: int, q: int) {
               if (p == 0) { assert q != 0; } else { assert p != 1; }
             }
             procedure ok(x: int) { assume x > 0; assert x > 0; }",
        )
        .expect("parses");
        let run = |threads: usize, portfolio: bool, cube_split: u32| {
            let opts = AcspecOptions {
                analyzer: AnalyzerConfig {
                    portfolio,
                    cube_split,
                    ..AnalyzerConfig::default()
                },
                ..AcspecOptions::default()
            };
            let mut totals = StageTotals::default();
            let results: Vec<ProcAnalysis> = ProgramAnalysis::new(&prog)
                .options(opts)
                .threads(threads)
                .search_threads(threads)
                .certify(true)
                .run(&mut totals)
                .into_iter()
                .map(|o| o.into_analysis().expect("no incidents"))
                .collect();
            let reports: Vec<String> = results
                .iter()
                .map(|pa| {
                    format!(
                        "{} {:?} {:?}",
                        pa.proc_name,
                        pa.cons.warnings,
                        pa.reports
                            .iter()
                            .flatten()
                            .map(|r| (&r.config, &r.status, &r.warnings))
                            .collect::<Vec<_>>(),
                    )
                })
                .collect();
            let certs: Vec<String> = results
                .iter()
                .filter_map(|pa| pa.certs_fragment.clone())
                .collect();
            (reports, certs)
        };
        let (base_reports, base_certs) = run(1, false, 0);
        for threads in [1usize, 2, 8] {
            for portfolio in [false, true] {
                for cube_split in [0u32, 2] {
                    let (reports, certs) = run(threads, portfolio, cube_split);
                    assert_eq!(
                        reports, base_reports,
                        "threads={threads} portfolio={portfolio} \
                         cube_split={cube_split} diverged from sequential"
                    );
                    if cube_split == 0 {
                        assert_eq!(
                            certs, base_certs,
                            "threads={threads} portfolio={portfolio}: \
                             certificates not byte-identical"
                        );
                    } else {
                        let doc = crate::certs_json_from_fragments(&certs);
                        let summary = acspec_check::check_document(&doc);
                        assert!(
                            summary.ok(),
                            "threads={threads} portfolio={portfolio} \
                             cube_split={cube_split}: certificates failed \
                             the checker: {:?}",
                            summary.errors.first()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn work_queue_dispatches_longest_procedures_first() {
        let prog = parse_program(
            "procedure tiny(x: int) { assert x != 0; }
             procedure big(x: int) {
               if (x == 0) { assert x != 1; } else { assert x != 2; }
               assert x != 3; assert x != 4; assert x != 5;
             }
             procedure ext(x: int) returns (r: int);
             procedure mid(x: int) { assert x != 0; assert x != 1; }",
        )
        .expect("parses");
        let defined: Vec<&Procedure> = prog
            .procedures
            .iter()
            .filter(|p| p.body.is_some())
            .collect();
        assert_eq!(defined.len(), 3, "bodyless `ext` is not scheduled");
        // Indices within `defined`: 0 = tiny, 1 = big, 2 = mid.
        assert_eq!(schedule_longest_first(&defined), vec![1, 2, 0]);
        // Equal costs fall back to index order (total, deterministic).
        let ties: Vec<&Procedure> = prog
            .procedures
            .iter()
            .filter(|p| p.name == "tiny")
            .chain(prog.procedures.iter().filter(|p| p.name == "tiny"))
            .collect();
        assert_eq!(schedule_longest_first(&ties), vec![0, 1]);
    }

    #[test]
    fn mine_stage_reports_term_activity() {
        let prog = parse_program(FIGURE1).expect("parses");
        let proc = prog.procedures[0].clone();
        let mut session =
            ProcSession::new(&prog, &proc, AnalyzerConfig::default()).expect("encodes");
        for config in ConfigName::all() {
            let opts = AcspecOptions::for_config(config);
            let q = session.mine(&opts);
            assert!(!q.is_empty());
        }
        let events = session.take_events();
        let mine_events: Vec<&StageEvent> =
            events.iter().filter(|e| e.stage == Stage::Mine).collect();
        assert_eq!(mine_events.len(), ConfigName::all().len());
        assert!(
            mine_events.iter().all(|e| e.terms.any()),
            "every mine stage interns into the session arena"
        );
        assert!(
            mine_events[1..].iter().any(|e| e.terms.memo_hits() > 0),
            "later configurations reuse memoized transforms"
        );
        // Stages that never touch the arena report a zero delta.
        assert!(events
            .iter()
            .filter(|e| e.stage == Stage::Encode)
            .all(|e| !e.terms.any()));
    }
}
