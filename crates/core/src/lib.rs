#![warn(missing_docs)]

//! ACSpec — *Almost-Correct Specifications* (the paper's core
//! contribution).
//!
//! Given a procedure and a predicate vocabulary abstraction, the pipeline
//!
//! 1. desugars and encodes the procedure ([`acspec_vcgen`]),
//! 2. mines the predicate set `Q` (§4.4) under one of the four
//!    configurations `Conc`/`A0`/`A1`/`A2` (Figure 4),
//! 3. computes the predicate cover `β_Q(wp(pr, true))` (§4.1),
//! 4. detects (abstract) semantic inconsistency bugs (Definition 3) and
//!    searches for almost-correct specifications (Definition 4,
//!    Algorithm 2),
//! 5. simplifies/prunes the specifications (§4.3) and reports the induced
//!    failures as high-confidence warnings (Algorithm 1).
//!
//! The [`driver::cons_baseline`] function is the conservative modular
//! verifier (`Cons` in the evaluation): all demonic-environment failures.
//!
//! # Example
//!
//! ```
//! use acspec_core::{analyze_procedure, AcspecOptions, ConfigName, SibStatus};
//! use acspec_ir::parse::parse_program;
//!
//! let prog = parse_program(
//!     "global Freed: map;
//!      procedure f(p: int) {
//!        assert Freed[p] == 0; Freed[p] := 1;  // free(p)
//!        assert Freed[p] == 0; Freed[p] := 1;  // free(p) again: always fails
//!      }",
//! ).expect("parses");
//! let proc = prog.procedures[0].clone();
//! let report = analyze_procedure(&prog, &proc, &AcspecOptions::for_config(ConfigName::Conc))
//!     .expect("analyzes");
//! // WP(f) = ∅: the paper's special SIB case (§3.1). Both minimal
//! // weakenings (`Freed[p] == 0` failing the second free, `Freed[p] != 0`
//! // failing the first) induce one failure each.
//! assert_eq!(report.status, SibStatus::Sib);
//! assert_eq!(report.min_fail, 1);
//! assert_eq!(report.warnings.len(), 2);
//! ```

pub mod certs;
pub mod config;
pub mod driver;
pub mod fingerprint;
pub mod interproc;
pub mod persist;
pub mod report;
pub mod search;
pub mod session;
pub mod telemetry;
pub mod triage;

pub use certs::{
    certs_json, certs_json_from_fragments, proc_certs_json, ChainRecord, ChainStepRecord, Claim,
    ClaimKind, ProcCerts, StepEvidence,
};
pub use config::{AcspecOptions, ConfigName, DeadMetric};
pub use driver::{analyze_procedure, analyze_procedure_multi, cons_baseline, AcspecError};
pub use fingerprint::{fingerprint_text, procedure_fingerprint};
pub use interproc::{infer_preconditions, InferredContracts};
pub use persist::{decode_analysis, options_digest, StoreOutcome, StoreSession};
pub use report::{
    program_report_json, program_report_json_with, AnalysisIncident, AnalysisOutcome, Fallback,
    IncidentKind, ProcReport, ProcStats, ReportLabel, SibStatus, Warning, Witness,
    REPORT_SCHEMA_VERSION,
};
pub use search::{
    find_almost_correct_specs, find_almost_correct_specs_salvaging, find_almost_correct_specs_with,
    DeadCheck, SearchOutcome,
};
pub use session::{
    NullObserver, ProcAnalysis, ProcOutcome, ProcSession, ProgramAnalysis, QueryEvent, Screening,
    SessionObserver, StageEvent, StageTotals, TeeObserver,
};
pub use telemetry::{TelemetryObserver, TelemetryOutput};
pub use triage::{triage_procedure, triage_program, Confidence, RankedWarning};
