//! Consistency of the staged session layer with its one-shot shims:
//!
//! * `analyze_procedure_multi(p, proc, opts, &[k])` produces the same
//!   report as `analyze_procedure` with `opts.prune = k` (property test
//!   over random driver programs and every prune level);
//! * a single shared [`ProcSession`] running `Cons` plus every
//!   configuration and prune variant agrees with fresh per-config shim
//!   calls on the paper's example programs — sharing one encode and one
//!   incremental solver does not change any verdict.

use proptest::prelude::*;

use acspec_core::session::ProcSession;
use acspec_core::{
    analyze_procedure, analyze_procedure_multi, cons_baseline, AcspecOptions, ConfigName,
    ProcReport, ReportLabel,
};
use acspec_predabs::normalize::PruneConfig;
use acspec_vcgen::analyzer::AnalyzerConfig;

fn prune_levels() -> Vec<PruneConfig> {
    [None, Some(3), Some(2), Some(1)]
        .iter()
        .map(|k| PruneConfig {
            max_literals: *k,
            no_cross_call_correlations: false,
        })
        .collect()
}

/// (label, status, warnings as (assert, tag), specs, min_fail, timed_out).
type SemanticView = (
    ReportLabel,
    String,
    Vec<(String, String)>,
    Vec<String>,
    usize,
    bool,
);

/// The semantically meaningful fields of a report (timings excluded).
fn semantic_view(r: &ProcReport) -> SemanticView {
    (
        r.config,
        r.status.to_string(),
        r.warnings
            .iter()
            .map(|w| (w.assert.to_string(), w.tag.clone()))
            .collect(),
        r.specs.iter().map(ToString::to_string).collect(),
        r.min_fail,
        r.timed_out(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn multi_with_one_variant_equals_single(seed in 0u64..10_000) {
        let bm = acspec_benchgen::drivers::generate(
            "consistency", seed, 3, acspec_benchgen::drivers::PatternMix::default(),
        );
        for proc in &bm.program.procedures {
            if proc.body.is_none() {
                continue;
            }
            for prune in prune_levels() {
                let mut opts = AcspecOptions::for_config(ConfigName::Conc);
                opts.prune = prune;
                let single = analyze_procedure(&bm.program, proc, &opts).expect("analyzes");
                let multi = analyze_procedure_multi(&bm.program, proc, &opts, &[prune])
                    .expect("analyzes");
                prop_assert_eq!(multi.len(), 1);
                prop_assert_eq!(
                    semantic_view(&single),
                    semantic_view(&multi[0])
                );
                // The single-variant paths issue the same query sequence,
                // so even witnesses must agree exactly.
                prop_assert_eq!(&single.warnings, &multi[0].warnings);
            }
        }
    }
}

// The paper's worked examples, shared with the scenario corpus
// (`acspec_corpus::fixtures`).
use acspec_corpus::fixtures::{DOUBLE_FREE, FIGURE1_INLINED, FIGURE2};

#[test]
fn shared_session_matches_fresh_shims_on_paper_examples() {
    let variants = prune_levels();
    for src in [FIGURE1_INLINED, FIGURE2, DOUBLE_FREE] {
        let prog = acspec_ir::parse::parse_program(src).expect("parses");
        let proc = prog
            .procedures
            .iter()
            .find(|p| p.body.is_some())
            .expect("defined procedure")
            .clone();

        // One session: encode once, screen once, run everything.
        let mut session =
            ProcSession::new(&prog, &proc, AnalyzerConfig::default()).expect("encodes");
        let shared_cons = session.cons();
        let shared: Vec<Vec<ProcReport>> = ConfigName::all()
            .into_iter()
            .map(|config| session.run_config(&AcspecOptions::for_config(config), &variants))
            .collect();

        // Fresh shims: a new session (new encode, new solver) per call.
        let fresh_cons = cons_baseline(&prog, &proc, AnalyzerConfig::default()).expect("analyzes");
        assert_eq!(semantic_view(&shared_cons), semantic_view(&fresh_cons));

        for (ci, config) in ConfigName::all().into_iter().enumerate() {
            let opts = AcspecOptions::for_config(config);
            let fresh = analyze_procedure_multi(&prog, &proc, &opts, &variants).expect("analyzes");
            assert_eq!(fresh.len(), shared[ci].len());
            for (f, s) in fresh.iter().zip(&shared[ci]) {
                assert_eq!(
                    semantic_view(f),
                    semantic_view(s),
                    "shared-session report diverged for {config}"
                );
            }
        }
    }
}
