//! Brute-force validation of Theorem 1 on small programs:
//!
//! 1. `FindAlmostCorrectSpecs(pr, Q) ⊆ AlmostCorrectSpecs(Q)`;
//! 2. for each `f ∈ AlmostCorrectSpecs(Q)` there is a returned `ψ` with
//!    `f ⇒ ψ`.
//!
//! `AlmostCorrectSpecs(Q)` is computed by exhaustive enumeration of all
//! clause subsets of the predicate cover, checking Definition 4's four
//! conditions directly (minimality quantifies over the clause lattice,
//! which by the paper's canonicity argument — dropping a maximal clause
//! weakens by exactly one cube — captures all `Formula_Q` weakenings).

use std::collections::BTreeSet;

use acspec_core::{find_almost_correct_specs_with, DeadCheck};
use acspec_ir::parse::parse_program;
use acspec_ir::{desugar_procedure, DesugarOptions};
use acspec_predabs::clause::QClause;
use acspec_predabs::cover::predicate_cover;
use acspec_predabs::mine::{mine_predicates, Abstraction};
use acspec_smt::{Ctx, SmtResult, Solver};
use acspec_vcgen::analyzer::{AnalyzerConfig, ProcAnalyzer};
use acspec_vcgen::translate::{formula_to_term, Env};

/// Semantic implication between clause-set specs over the input
/// vocabulary, decided by a standalone solver: `a ⇒ b` iff `a ∧ ¬b`
/// unsat.
fn implies(
    preds: &[acspec_ir::Atom],
    a: &[QClause],
    b: &[QClause],
    inputs: &acspec_ir::DesugaredProc,
) -> bool {
    let mut ctx = Ctx::new();
    let mut solver = Solver::new();
    let mut env = Env::default();
    for (name, sort) in &inputs.vars {
        let t = match sort {
            acspec_ir::Sort::Int => ctx.mk_int_var(format!("{name}!0")),
            acspec_ir::Sort::Map => ctx.mk_map_var(format!("{name}!0")),
        };
        env.vars.insert(name.clone(), t);
    }
    for (nu, sort) in &inputs.nus {
        let t = match sort {
            acspec_ir::Sort::Int => ctx.mk_int_var(format!("{nu}")),
            acspec_ir::Sort::Map => ctx.mk_map_var(format!("{nu}")),
        };
        env.nus.insert(nu.clone(), t);
    }
    let fa = acspec_predabs::clauses_to_formula(a, preds);
    let fb = acspec_predabs::clauses_to_formula(b, preds);
    let ta = formula_to_term(&mut ctx, &env, &fa).expect("inputs");
    let tb = formula_to_term(&mut ctx, &env, &fb).expect("inputs");
    let ntb = ctx.mk_not(tb);
    solver.assert_term(&mut ctx, ta);
    solver.assert_term(&mut ctx, ntb);
    solver.check(&mut ctx, &[]) == SmtResult::Unsat
}

/// Checks Theorem 1 on one procedure under the concrete configuration.
fn check_theorem1(src: &str) {
    let prog = parse_program(src).expect("parses");
    let proc = prog.procedures.last().expect("proc").clone();
    let d = desugar_procedure(&prog, &proc, DesugarOptions::default()).expect("desugars");
    let mut az = ProcAnalyzer::new(&d, AnalyzerConfig::default()).expect("encodes");
    let baseline_dead = az.dead_set(&[]).expect("ok");
    let q = mine_predicates(&d, Abstraction::concrete());
    assert!(
        q.len() <= 4,
        "test programs must have tiny Q, got {}",
        q.len()
    );
    let cover = predicate_cover(&mut az, &q).expect("ok");
    let n = cover.clauses.len();
    assert!(n <= 8, "cover too large for brute force: {n}");
    let handles = cover.install_handles(&mut az);
    let selectors: Vec<_> = handles.iter().map(|&(s, _)| s).collect();
    let bodies: Vec<_> = handles.iter().map(|&(_, b)| b).collect();

    // Evaluate every subset.
    let locs = az.locations();
    let asserts = az.assertions();
    let subsets: Vec<BTreeSet<u32>> = (0..(1u32 << n))
        .map(|mask| (0..n as u32).filter(|i| mask & (1 << i) != 0).collect())
        .collect();
    let mut dead_of = Vec::with_capacity(subsets.len());
    let mut fail_of = Vec::with_capacity(subsets.len());
    for subset in &subsets {
        let active: Vec<_> = subset.iter().map(|&i| selectors[i as usize]).collect();
        let consistent = az.is_consistent(&active, &[]).expect("ok");
        let mut dead = !consistent;
        if !dead {
            for &l in &locs {
                if baseline_dead.contains(&l) {
                    continue;
                }
                if !az.is_reachable(l, &active).expect("ok") {
                    dead = true;
                    break;
                }
            }
        }
        let mut fails = 0usize;
        for &a in &asserts {
            if az.can_fail(a, &active).expect("ok") {
                fails += 1;
            }
        }
        dead_of.push(dead);
        fail_of.push(fails);
    }

    let as_clauses = |subset: &BTreeSet<u32>| -> Vec<QClause> {
        subset
            .iter()
            .map(|&i| cover.clauses[i as usize].clone())
            .collect()
    };

    // Brute-force AlmostCorrectSpecs: Definition 4 over the lattice.
    let full: BTreeSet<u32> = (0..n as u32).collect();
    let full_idx = subsets.iter().position(|s| *s == full).expect("present");
    let candidates: Vec<usize> = (0..subsets.len())
        .filter(|&i| {
            if dead_of[i] {
                return false;
            }
            // Condition 1: β ⇒ f holds for every subset of the cover.
            // Condition 4 (minimality over the lattice): every strict
            // superset either is equivalent or has dead code.
            for (j, sj) in subsets.iter().enumerate() {
                if sj.len() > subsets[i].len() && subsets[i].is_subset(sj) && !dead_of[j] {
                    let equivalent =
                        implies(&cover.preds, &as_clauses(&subsets[i]), &as_clauses(sj), &d);
                    if !equivalent {
                        return false;
                    }
                }
            }
            true
        })
        .collect();
    let min_k = candidates.iter().map(|&i| fail_of[i]).min();
    let acs: Vec<usize> = match min_k {
        None => vec![],
        Some(k) => candidates
            .into_iter()
            .filter(|&i| fail_of[i] == k)
            .collect(),
    };

    // The algorithm under test (with the Definition 4 minimality filter).
    let out = find_almost_correct_specs_with(
        &mut az,
        &selectors,
        &DeadCheck::Branch {
            baseline_dead: baseline_dead.clone(),
        },
        100_000,
        Some(&bodies),
    )
    .expect("within budget");

    if dead_of[full_idx] {
        // Part 1: every returned spec is in AlmostCorrectSpecs.
        let min_k = min_k.expect("some weakening kills no code (true at worst)");
        assert_eq!(out.min_fail, min_k, "MinFail matches brute force");
        for s in &out.specs {
            let i = subsets.iter().position(|x| x == s).expect("subset");
            assert!(!dead_of[i], "returned spec kills code");
            assert_eq!(fail_of[i], min_k, "returned spec not minimal-failure");
            assert!(
                acs.iter().any(|&j| {
                    implies(&cover.preds, &as_clauses(&subsets[j]), &as_clauses(s), &d)
                        && implies(&cover.preds, &as_clauses(s), &as_clauses(&subsets[j]), &d)
                }),
                "returned spec {s:?} is not equivalent to any brute-force ACS"
            );
        }
        // Part 2: every brute-force ACS is implied by some returned spec.
        for &j in &acs {
            assert!(
                out.specs.iter().any(|s| implies(
                    &cover.preds,
                    &as_clauses(&subsets[j]),
                    &as_clauses(s),
                    &d
                )),
                "ACS {:?} not covered by any returned spec",
                subsets[j]
            );
        }
    } else {
        assert!(!out.root_dead);
        assert_eq!(out.min_fail, 0);
    }
}

#[test]
fn theorem1_on_doomed_branch() {
    check_theorem1(
        "procedure f(x: int) {
           if (x == 0) { assert x != 0; }
         }",
    );
}

#[test]
fn theorem1_on_mini_double_free() {
    check_theorem1(
        "global Freed: map;
         procedure f(c: int, b: int, cmd: int) {
           if (cmd == 1) {
             if (*) {
               assert Freed[c] == 0; Freed[c] := 1;
             }
           }
           assert Freed[c] == 0; Freed[c] := 1;
         }",
    );
}

#[test]
fn theorem1_on_no_sib_program() {
    check_theorem1(
        "procedure f(x: int) {
           if (*) { assert x != 0; }
         }",
    );
}

#[test]
fn theorem1_on_contradictory_asserts() {
    check_theorem1(
        "procedure f(e: int) {
           if (*) { assert e == 0; } else { assert e != 0; }
         }",
    );
}

#[test]
fn theorem1_on_correlated_guards() {
    check_theorem1(
        "procedure f(x: int, c2: int) {
           if (c2 == 1) {
             assert x != 0;
           }
           if (x == 0) { skip; } else { skip; }
         }",
    );
}
