//! Random IR-level program fuzzing of the full pipeline: generated
//! programs with maps, calls, loops, and non-determinism must analyze
//! without panics under every configuration, and the structural
//! invariants must hold.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use acspec_core::{
    analyze_procedure, cons_baseline, AcspecOptions, ConfigName, ProcReport, ProcStats, SibStatus,
};
use acspec_ir::expr::{Expr, Formula, RelOp};
use acspec_ir::program::{Contract, Procedure, Program};
use acspec_ir::stmt::{BranchCond, Stmt};
use acspec_ir::Sort;
use acspec_vcgen::analyzer::AnalyzerConfig;

const INT_VARS: [&str; 3] = ["x", "y", "z"];

fn random_expr(rng: &mut StdRng, depth: u32) -> Expr {
    if depth == 0 || rng.gen_bool(0.5) {
        return if rng.gen_bool(0.5) {
            Expr::var(INT_VARS[rng.gen_range(0..3)])
        } else {
            Expr::Int(rng.gen_range(-3..4))
        };
    }
    match rng.gen_range(0..4) {
        0 => Expr::Add(
            Box::new(random_expr(rng, depth - 1)),
            Box::new(random_expr(rng, depth - 1)),
        ),
        1 => Expr::Sub(
            Box::new(random_expr(rng, depth - 1)),
            Box::new(random_expr(rng, depth - 1)),
        ),
        2 => Expr::read_var("M", random_expr(rng, depth - 1)),
        _ => Expr::Neg(Box::new(random_expr(rng, depth - 1))),
    }
}

fn random_formula(rng: &mut StdRng) -> Formula {
    let op = [RelOp::Eq, RelOp::Ne, RelOp::Lt, RelOp::Le][rng.gen_range(0..4)];
    Formula::Rel(op, random_expr(rng, 2), random_expr(rng, 2))
}

fn random_stmt(rng: &mut StdRng, depth: u32) -> Stmt {
    if depth == 0 {
        return Stmt::Skip;
    }
    match rng.gen_range(0..9) {
        0 => Stmt::assert(random_formula(rng), "fuzz"),
        1 => Stmt::Assume(random_formula(rng)),
        2 => Stmt::Assign(
            INT_VARS[rng.gen_range(0..3)].to_string(),
            random_expr(rng, 2),
        ),
        3 => Stmt::Assign(
            "M".to_string(),
            Expr::Write(
                Box::new(Expr::var("M")),
                Box::new(random_expr(rng, 1)),
                Box::new(random_expr(rng, 1)),
            ),
        ),
        4 => Stmt::Havoc(INT_VARS[rng.gen_range(0..3)].to_string()),
        5 => Stmt::If {
            cond: if rng.gen_bool(0.3) {
                BranchCond::NonDet
            } else {
                BranchCond::Det(random_formula(rng))
            },
            then_branch: Box::new(random_stmt(rng, depth - 1)),
            else_branch: Box::new(random_stmt(rng, depth - 1)),
        },
        6 => Stmt::While {
            cond: BranchCond::Det(random_formula(rng)),
            body: Box::new(random_stmt(rng, depth - 1)),
        },
        7 => Stmt::Call {
            site: 0,
            lhs: vec![INT_VARS[rng.gen_range(0..3)].to_string()],
            callee: "ext".into(),
            args: vec![random_expr(rng, 1)],
        },
        _ => Stmt::seq(vec![
            random_stmt(rng, depth - 1),
            random_stmt(rng, depth - 1),
        ]),
    }
}

fn random_program(seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut prog = Program::new();
    prog.add_global("M", Sort::Map);
    prog.procedures.push(Procedure {
        name: "ext".into(),
        params: vec!["a".into()],
        returns: vec!["r".into()],
        locals: vec![],
        var_sorts: [("a".to_string(), Sort::Int), ("r".to_string(), Sort::Int)]
            .into_iter()
            .collect(),
        contract: Contract::unconstrained(),
        body: None,
    });
    let body = Stmt::seq(
        (0..rng.gen_range(2..5))
            .map(|_| random_stmt(&mut rng, 3))
            .collect(),
    );
    prog.procedures
        .push(Procedure::new_simple("fuzzed", &["x", "y", "z"], body));
    prog
}

/// Report JSON with the runtime statistics zeroed. Query counts, stage
/// wall-times, and solver work counters differ cache-on vs cache-off by
/// design; every semantic field must be byte-identical.
fn canonical_json(r: &ProcReport) -> String {
    let mut r = r.clone();
    r.stats = ProcStats::default();
    r.to_json()
}

#[test]
fn cache_on_and_off_reports_are_byte_identical() {
    for seed in 0..25u64 {
        let prog = random_program(seed);
        let proc = prog.procedure("fuzzed").expect("exists").clone();
        for config in [ConfigName::Conc, ConfigName::A1, ConfigName::A2] {
            let mut on = AcspecOptions::for_config(config);
            on.analyzer.query_cache = true;
            let mut off = on;
            off.analyzer.query_cache = false;
            let r_on = analyze_procedure(&prog, &proc, &on)
                .unwrap_or_else(|e| panic!("seed {seed} {config} on: {e}"));
            let r_off = analyze_procedure(&prog, &proc, &off)
                .unwrap_or_else(|e| panic!("seed {seed} {config} off: {e}"));
            assert_eq!(
                canonical_json(&r_on),
                canonical_json(&r_off),
                "seed {seed} {config}: cache changed the report"
            );
        }
    }
}

#[test]
fn random_programs_analyze_without_panics() {
    let mut interesting = 0;
    for seed in 0..60u64 {
        let prog = random_program(seed);
        acspec_ir::typecheck::check_program(&prog)
            .unwrap_or_else(|e| panic!("seed {seed}: ill-sorted generator: {e}"));
        let proc = prog.procedure("fuzzed").expect("exists").clone();
        let cons = cons_baseline(&prog, &proc, AnalyzerConfig::default())
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        if cons.status == SibStatus::Correct {
            continue;
        }
        interesting += 1;
        let cons_ids: std::collections::BTreeSet<_> =
            cons.warnings.iter().map(|w| w.assert).collect();
        let mut prev = None;
        for config in [ConfigName::Conc, ConfigName::A1, ConfigName::A2] {
            let r = analyze_procedure(&prog, &proc, &AcspecOptions::for_config(config))
                .unwrap_or_else(|e| panic!("seed {seed} {config}: {e}"));
            if r.timed_out() {
                prev = None;
                continue;
            }
            // Every warning is a Cons warning.
            for w in &r.warnings {
                assert!(
                    cons_ids.contains(&w.assert),
                    "seed {seed} {config}: {w:?} not in Cons set"
                );
            }
            // Monotone up the lattice (when the previous config finished).
            if let Some(p) = prev {
                assert!(
                    p <= r.warnings.len(),
                    "seed {seed} {config}: lattice monotonicity violated"
                );
            }
            prev = Some(r.warnings.len());
        }
    }
    assert!(
        interesting > 10,
        "generator health: {interesting} interesting programs"
    );
}
