//! The persistent result store's end-to-end contract (DESIGN.md §4.9):
//!
//! * **Warm replay is byte-identical**: a second run against the same
//!   store performs zero solver queries and re-emits the cold run's
//!   reports and certificate document byte for byte (stage seconds
//!   round-trip through `f64::to_bits`).
//! * **Corruption is survivable and attributable**: a single bit flip
//!   or mid-write truncation of any entry is quarantined, surfaced as
//!   an `AnalysisIncident` naming the procedure, and transparently
//!   recomputed — verdicts never change, nothing panics.
//! * **I/O chaos at rate 0 is a no-op**: a store with the fault
//!   harness installed at rate 0 behaves byte-identically to no store
//!   at all (modulo wall clock); at high rates, verdicts still match.

use std::fs;
use std::path::{Path, PathBuf};

use acspec_core::{
    certs_json_from_fragments, program_report_json_with, AnalysisIncident, ConfigName,
    IncidentKind, ProcReport, ProcStats, ProgramAnalysis, StageTotals, StoreSession,
};
use acspec_ir::parse::parse_program;
use acspec_ir::Program;
use acspec_vcgen::chaos::ChaosConfig;

const CONFIGS: &[ConfigName] = &[ConfigName::Conc, ConfigName::A1];

fn program() -> Program {
    parse_program(
        "global Freed: map;
         procedure ok(x: int) { assert x == x; }
         procedure double_free(p: int) {
           assert Freed[p] == 0; Freed[p] := 1;
           assert Freed[p] == 0; Freed[p] := 1;
         }
         procedure guarded(q: int) requires q > 0; { assert q > 0; }
         procedure caller(r: int) { call guarded(r); }",
    )
    .expect("parses")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "acspec-store-roundtrip-{name}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

struct RunOut {
    /// Owned reports in outcome order: per-config reports then cons,
    /// per procedure.
    reports: Vec<ProcReport>,
    incidents: Vec<AnalysisIncident>,
    cert_fragments: Vec<String>,
    from_store: Vec<bool>,
    queries: u64,
}

impl RunOut {
    /// The exact report document (timings included).
    fn report_json(&self) -> String {
        let refs: Vec<&ProcReport> = self.reports.iter().collect();
        program_report_json_with(&refs, &self.incidents, None)
    }

    /// The report document with wall-clock-bearing stats zeroed — the
    /// "verdict view" for comparing two *computed* (not replayed) runs.
    fn verdict_json(&self) -> String {
        let mut normalized = RunOut {
            reports: self.reports.clone(),
            incidents: Vec::new(),
            cert_fragments: Vec::new(),
            from_store: Vec::new(),
            queries: 0,
        };
        for r in &mut normalized.reports {
            r.stats = ProcStats::default();
        }
        normalized.report_json()
    }

    fn certs_doc(&self) -> String {
        certs_json_from_fragments(&self.cert_fragments)
    }
}

fn run(program: &Program, store: Option<&StoreSession>) -> RunOut {
    let mut totals = StageTotals::default();
    let outcomes = ProgramAnalysis::new(program)
        .configs(CONFIGS)
        .certify(true)
        .store(store)
        .run(&mut totals);
    let mut out = RunOut {
        reports: Vec::new(),
        incidents: Vec::new(),
        cert_fragments: Vec::new(),
        from_store: Vec::new(),
        queries: totals.iter().map(|(_, t)| t.total_queries()).sum(),
    };
    for o in outcomes {
        match o.incident() {
            Some(i) => out.incidents.push(i.clone()),
            None => {
                let pa = o.into_analysis().expect("analyzed");
                out.from_store.push(pa.from_store);
                out.incidents.extend(pa.incidents);
                out.reports.extend(pa.reports.into_iter().flatten());
                out.reports.push(pa.cons);
                if let Some(f) = pa.certs_fragment {
                    out.cert_fragments.push(f);
                }
            }
        }
    }
    out
}

/// Entry files of a store directory, sorted (deterministic corruption
/// targets).
fn entry_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .expect("store dir exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "acse"))
        .collect();
    files.sort();
    files
}

#[test]
fn warm_rerun_is_byte_identical_with_zero_queries() {
    let dir = tmpdir("warm");
    let store = StoreSession::open(&dir).expect("opens");
    let p = program();

    let cold = run(&p, Some(&store));
    assert!(cold.queries > 0, "cold run must actually solve");
    assert!(cold.from_store.iter().all(|&b| !b));
    assert!(cold.incidents.is_empty());
    assert!(!cold.cert_fragments.is_empty(), "certify(true) emits certs");

    let warm = run(&p, Some(&store));
    assert!(
        warm.from_store.iter().all(|&b| b),
        "every procedure must replay from the store"
    );
    assert_eq!(warm.queries, 0, "warm replay performed solver queries");
    assert!(warm.incidents.is_empty());
    assert_eq!(cold.report_json(), warm.report_json(), "report drifted");
    assert_eq!(cold.certs_doc(), warm.certs_doc(), "certificates drifted");

    let stats = store.stats();
    assert_eq!(stats.hits as usize, warm.from_store.len());
    assert_eq!(stats.corrupt, 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn warm_replay_hits_across_search_thread_budgets() {
    // The search-worker budget (`--search-threads`) is excluded from
    // the options digest, like `--threads`: entries recorded under one
    // budget replay warm under any other, with portfolio racing and
    // cube splitting enabled, because parallel search merges
    // deterministically.
    let dir = tmpdir("search-threads");
    let p = program();
    let analyzer = acspec_vcgen::analyzer::AnalyzerConfig {
        portfolio: true,
        cube_split: 2,
        ..acspec_vcgen::analyzer::AnalyzerConfig::default()
    };
    let run_with = |search_threads: usize, store: &StoreSession| {
        let mut totals = StageTotals::default();
        let outcomes = ProgramAnalysis::new(&p)
            .configs(CONFIGS)
            .analyzer(analyzer)
            .certify(true)
            .threads(1)
            .search_threads(search_threads)
            .store(Some(store))
            .run(&mut totals);
        let queries: u64 = totals.iter().map(|(_, t)| t.total_queries()).sum();
        let mut reports = Vec::new();
        let mut from_store = Vec::new();
        for o in outcomes {
            let pa = o.into_analysis().expect("analyzed");
            from_store.push(pa.from_store);
            reports.extend(pa.reports.into_iter().flatten());
            reports.push(pa.cons);
        }
        let refs: Vec<&ProcReport> = reports.iter().collect();
        (
            program_report_json_with(&refs, &[], None),
            from_store,
            queries,
        )
    };
    let store = StoreSession::open(&dir).expect("opens");
    let (cold_json, cold_from, cold_queries) = run_with(4, &store);
    assert!(cold_queries > 0, "cold run must actually solve");
    assert!(cold_from.iter().all(|&b| !b));
    let (warm_json, warm_from, warm_queries) = run_with(1, &store);
    assert!(
        warm_from.iter().all(|&b| b),
        "a different --search-threads budget missed the store"
    );
    assert_eq!(warm_queries, 0, "warm replay performed solver queries");
    assert_eq!(cold_json, warm_json, "report drifted across budgets");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bit_flip_is_quarantined_attributed_and_recomputed() {
    let dir = tmpdir("bitflip");
    let p = program();
    let cold = {
        let store = StoreSession::open(&dir).expect("opens");
        run(&p, Some(&store))
    };

    // Flip one payload bit in the first (sorted) entry.
    let target = entry_files(&dir).into_iter().next().expect("entries exist");
    let mut bytes = fs::read(&target).expect("reads entry");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    fs::write(&target, &bytes).expect("writes damaged entry");

    let store = StoreSession::open(&dir).expect("reopens");
    let warm = run(&p, Some(&store));

    // Exactly one slot recomputed, the rest replayed warm.
    let recomputed = warm.from_store.iter().filter(|&&b| !b).count();
    assert_eq!(recomputed, 1, "exactly one entry was damaged");
    assert_eq!(store.quarantine_count(), 1);
    assert_eq!(store.stats().corrupt, 1);

    // The incident is attributable: kind, stage, and a procedure of
    // this program.
    let incident = warm
        .incidents
        .iter()
        .find(|i| i.kind == IncidentKind::StoreCorruption)
        .expect("a StoreCorruption incident is surfaced");
    assert_eq!(incident.stage, None);
    assert!(
        p.procedures.iter().any(|q| q.name == incident.proc_name),
        "incident names an unknown procedure: {}",
        incident.proc_name
    );
    assert!(incident.message.contains("quarantined and recomputed"));

    // Verdicts never change (timings may: one procedure re-ran).
    assert_eq!(
        cold.verdict_json(),
        warm.verdict_json(),
        "a verdict changed"
    );
    assert_eq!(cold.certs_doc(), warm.certs_doc(), "certificates drifted");

    // The recompute re-saved the entry: the next run is fully warm with
    // byte-identical reports — and no replayed incident, because a
    // healed store must not keep confessing to old corruption.
    let third = run(&p, Some(&store));
    assert!(third.from_store.iter().all(|&b| b));
    assert_eq!(third.queries, 0);
    assert!(third.incidents.is_empty());
    let healed = RunOut {
        incidents: Vec::new(),
        ..warm
    };
    assert_eq!(healed.report_json(), third.report_json());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn midwrite_truncation_is_survivable() {
    let dir = tmpdir("truncate");
    let p = program();
    let cold = {
        let store = StoreSession::open(&dir).expect("opens");
        run(&p, Some(&store))
    };

    // Truncate the *last* (sorted) entry mid-"write".
    let target = entry_files(&dir).into_iter().last().expect("entries exist");
    let bytes = fs::read(&target).expect("reads entry");
    fs::write(&target, &bytes[..bytes.len() / 3]).expect("truncates entry");

    let store = StoreSession::open(&dir).expect("reopens");
    let warm = run(&p, Some(&store));
    assert_eq!(warm.from_store.iter().filter(|&&b| !b).count(), 1);
    assert_eq!(store.quarantine_count(), 1);
    assert!(warm
        .incidents
        .iter()
        .any(|i| i.kind == IncidentKind::StoreCorruption));
    assert_eq!(
        cold.verdict_json(),
        warm.verdict_json(),
        "a verdict changed"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn store_chaos_at_rate_zero_matches_no_store() {
    let p = program();
    let plain = run(&p, None);
    for seed in [0u64, 42, u64::MAX] {
        let dir = tmpdir(&format!("chaos0-{seed}"));
        let store =
            StoreSession::open_with_chaos(&dir, Some(ChaosConfig::new(seed, 0.0))).expect("opens");
        let chaotic = run(&p, Some(&store));
        assert_eq!(
            plain.verdict_json(),
            chaotic.verdict_json(),
            "rate-0 store chaos changed a verdict (seed {seed})"
        );
        assert_eq!(
            plain.certs_doc(),
            chaotic.certs_doc(),
            "rate-0 store chaos changed certificates (seed {seed})"
        );
        let cs = store.chaos_stats();
        assert_eq!(
            (cs.torn_writes, cs.bit_flips, cs.enospcs, cs.read_errors),
            (0, 0, 0, 0),
            "rate 0 must inject nothing (seed {seed})"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn store_chaos_at_high_rate_never_alters_a_verdict() {
    let p = program();
    let plain = run(&p, None);
    for seed in [7u64, 1234] {
        let dir = tmpdir(&format!("chaos-high-{seed}"));
        let store =
            StoreSession::open_with_chaos(&dir, Some(ChaosConfig::new(seed, 0.9))).expect("opens");
        // Three consecutive runs: whatever mix of torn writes, bit
        // flips, ENOSPC, and transient read errors the harness deals,
        // every run must land on the same verdicts as no store at all.
        for round in 0..3 {
            let chaotic = run(&p, Some(&store));
            assert_eq!(
                plain.verdict_json(),
                chaotic.verdict_json(),
                "store chaos altered a verdict (seed {seed}, round {round})"
            );
            assert_eq!(
                plain.certs_doc(),
                chaotic.certs_doc(),
                "store chaos altered certificates (seed {seed}, round {round})"
            );
        }
        assert!(
            store.chaos_stats().draws > 0,
            "harness never drew (seed {seed})"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
