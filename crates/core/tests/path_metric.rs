//! Tests of the alternative path-coverage dead metric (§2.3: "we could
//! have defined Dead(f) … in terms of path coverage rather than in terms
//! of branch coverage").

use acspec_core::{analyze_procedure, AcspecOptions, ConfigName, DeadMetric, SibStatus};
use acspec_ir::parse::parse_program;

fn analyze(src: &str, metric: DeadMetric) -> acspec_core::ProcReport {
    let prog = parse_program(src).expect("parses");
    let proc = prog.procedures.last().expect("proc").clone();
    let mut opts = AcspecOptions::for_config(ConfigName::Conc);
    opts.dead_metric = metric;
    analyze_procedure(&prog, &proc, &opts).expect("analyzes")
}

const PATH_METRIC: DeadMetric = DeadMetric::PathCoverage { max_profiles: 64 };

/// A specification can kill a *path* without killing any single branch:
/// `wp = ¬(x = 0 ∧ y = 0)` leaves all four branch arms reachable but
/// makes the (then, then) path combination infeasible.
const CROSS_BRANCH: &str = "
    procedure f(x: int, y: int) {
      var t: int;
      if (x == 0) { t := 1; } else { t := 2; }
      if (y == 0) { t := 3; } else { t := 4; }
      assert x != 0 || y != 0;
    }";

#[test]
fn branch_metric_misses_the_cross_branch_sib() {
    let r = analyze(CROSS_BRANCH, DeadMetric::BranchCoverage);
    assert_eq!(r.status, SibStatus::MayBug, "no single branch dies");
    assert!(r.warnings.is_empty());
}

#[test]
fn path_metric_reveals_the_cross_branch_sib() {
    let r = analyze(CROSS_BRANCH, PATH_METRIC);
    assert_eq!(r.status, SibStatus::Sib, "the (then,then) path dies");
    assert_eq!(r.warnings.len(), 1, "got {:?}", r.warnings);
}

/// On programs where the branch metric already finds the SIB, the path
/// metric agrees (it is a refinement).
#[test]
fn path_metric_agrees_on_branch_sibs() {
    let src = "
        procedure f(x: int) {
          if (x == 0) { assert x != 0; }
        }";
    let branch = analyze(src, DeadMetric::BranchCoverage);
    let path = analyze(src, PATH_METRIC);
    assert_eq!(branch.status, SibStatus::Sib);
    assert_eq!(path.status, SibStatus::Sib);
    assert_eq!(branch.warnings.len(), path.warnings.len());
}

/// Correct procedures stay correct under either metric.
#[test]
fn path_metric_keeps_correct_procedures_quiet() {
    let src = "
        procedure f(x: int) {
          if (x != 0) { assert x != 0; }
          if (x == 1) { assert x != 2; }
        }";
    for metric in [DeadMetric::BranchCoverage, PATH_METRIC] {
        let r = analyze(src, metric);
        assert!(r.warnings.is_empty(), "{metric:?}: {:?}", r.warnings);
    }
}

/// The path metric can only find more SIBs than the branch metric, never
/// fewer, across a small program zoo.
#[test]
fn path_metric_is_a_refinement() {
    let zoo = [
        "procedure f(x: int) { assert x != 0; }",
        "procedure f(x: int) { if (*) { assert x != 0; } }",
        "procedure f(x: int, y: int) {
           if (x < y) { assert x != 0; } else { assert y != 0; }
         }",
        "procedure f(x: int) {
           assume x > 0;
           if (x > 0) { skip; }
           assert x != 5;
         }",
        CROSS_BRANCH,
    ];
    for src in zoo {
        let branch = analyze(src, DeadMetric::BranchCoverage);
        let path = analyze(src, PATH_METRIC);
        if branch.status == SibStatus::Sib {
            assert_eq!(
                path.status,
                SibStatus::Sib,
                "path metric lost a branch SIB on {src}"
            );
        }
    }
}
