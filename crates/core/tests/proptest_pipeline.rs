//! Property-based tests of pipeline-level theorems on randomly generated
//! programs:
//!
//! * **Proposition 2** (abstraction lattice): an abstract SIB under a
//!   finer vocabulary is an abstract SIB under every coarser one;
//! * unpruned warning counts are monotone up the lattice
//!   (`Conc ≤ A1/A0 ≤ A2`);
//! * clause pruning is monotone in warnings per configuration;
//! * `Cons` dominates every configuration's warning set.

use proptest::prelude::*;

use acspec_benchgen::drivers::{generate, PatternMix};
use acspec_core::{analyze_procedure_multi, cons_baseline, AcspecOptions, ConfigName, SibStatus};
use acspec_predabs::normalize::PruneConfig;
use acspec_vcgen::analyzer::AnalyzerConfig;

/// Report JSON with runtime statistics zeroed (query counts and
/// wall-times legitimately differ cache-on vs cache-off).
fn canonical_json(r: &acspec_core::ProcReport) -> String {
    let mut r = r.clone();
    r.stats = acspec_core::ProcStats::default();
    r.to_json()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn query_cache_is_invisible_in_reports(seed in 0u64..10_000) {
        let bm = generate("cache-eq", seed, 3, PatternMix::default());
        let prune_levels: Vec<PruneConfig> = [None, Some(2)]
            .iter()
            .map(|k| PruneConfig { max_literals: *k, no_cross_call_correlations: false })
            .collect();
        for proc in &bm.program.procedures {
            if proc.body.is_none() {
                continue;
            }
            for config in [ConfigName::Conc, ConfigName::A2] {
                let mut on = AcspecOptions::for_config(config);
                on.analyzer.query_cache = true;
                let mut off = on;
                off.analyzer.query_cache = false;
                let r_on = analyze_procedure_multi(&bm.program, proc, &on, &prune_levels)
                    .expect("analyzes");
                let r_off = analyze_procedure_multi(&bm.program, proc, &off, &prune_levels)
                    .expect("analyzes");
                prop_assert_eq!(r_on.len(), r_off.len());
                for (a, b) in r_on.iter().zip(&r_off) {
                    prop_assert_eq!(
                        canonical_json(a),
                        canonical_json(b),
                        "cache changed the report for {} under {}",
                        proc.name,
                        config
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn pipeline_theorems_on_random_driver_programs(seed in 0u64..10_000) {
        let bm = generate("prop", seed, 3, PatternMix::default());
        let prune_levels: Vec<PruneConfig> = [None, Some(3), Some(2), Some(1)]
            .iter()
            .map(|k| PruneConfig { max_literals: *k, no_cross_call_correlations: false })
            .collect();
        for proc in &bm.program.procedures {
            if proc.body.is_none() {
                continue;
            }
            let cons = cons_baseline(&bm.program, proc, AnalyzerConfig::default())
                .expect("analyzes");
            if cons.status == SibStatus::Correct {
                continue;
            }
            let mut by_config = Vec::new();
            let mut timed_out = false;
            for config in ConfigName::all() {
                let opts = AcspecOptions::for_config(config);
                let reports =
                    analyze_procedure_multi(&bm.program, proc, &opts, &prune_levels)
                        .expect("analyzes");
                timed_out |= reports.iter().any(|r| r.timed_out());
                by_config.push(reports);
            }
            if timed_out || cons.timed_out() {
                continue;
            }
            // Pruning monotone within each configuration.
            for reports in &by_config {
                for w in reports.windows(2) {
                    prop_assert!(
                        w[0].warnings.len() <= w[1].warnings.len(),
                        "pruning removed warnings in {}",
                        proc.name
                    );
                }
            }
            // Proposition 2 + warning monotonicity across the lattice,
            // unpruned. by_config order: Conc, A0, A1, A2.
            let conc = &by_config[0][0];
            let a0 = &by_config[1][0];
            let a1 = &by_config[2][0];
            let a2 = &by_config[3][0];
            let sib = |r: &acspec_core::ProcReport| r.status == SibStatus::Sib;
            if sib(conc) {
                prop_assert!(sib(a0), "SIB(Conc) ⇒ SIB(A0) in {}", proc.name);
                prop_assert!(sib(a1), "SIB(Conc) ⇒ SIB(A1) in {}", proc.name);
            }
            if sib(a0) || sib(a1) {
                prop_assert!(sib(a2), "SIB(A0/A1) ⇒ SIB(A2) in {}", proc.name);
            }
            prop_assert!(
                conc.warnings.len() <= a1.warnings.len(),
                "Conc ≤ A1 in {}", proc.name
            );
            prop_assert!(
                conc.warnings.len() <= a0.warnings.len(),
                "Conc ≤ A0 in {}", proc.name
            );
            prop_assert!(
                a1.warnings.len() <= a2.warnings.len(),
                "A1 ≤ A2 in {}", proc.name
            );
            prop_assert!(
                a0.warnings.len() <= a2.warnings.len(),
                "A0 ≤ A2 in {}", proc.name
            );
            // Cons dominates: every reported warning is a Cons warning.
            let cons_tags: std::collections::BTreeSet<&str> =
                cons.warnings.iter().map(|w| w.tag.as_str()).collect();
            for r in [conc, a0, a1, a2] {
                for w in &r.warnings {
                    prop_assert!(
                        cons_tags.contains(w.tag.as_str()),
                        "{} reported {} which Cons does not",
                        r.config,
                        w.tag
                    );
                }
            }
        }
    }
}
