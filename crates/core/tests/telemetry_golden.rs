//! Golden-file test pinning the telemetry JSONL shapes.
//!
//! The golden render redacts ids and numeric attribute values and
//! zeroes wall-times, so the file pins the *structure* — span kinds,
//! nesting, attribute keys, stage/config/outcome strings — without
//! pinning solver work counts that may drift with heuristics.
//!
//! Regenerate after an intentional shape change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p acspec-core --test telemetry_golden
//! ```

use acspec_core::{ProgramAnalysis, TelemetryObserver};
use acspec_ir::parse::parse_program;
use acspec_telemetry::TraceRender;
use acspec_vcgen::AnalyzerConfig;

const PROGRAM: &str = "
    procedure f(x: int) { if (x == 0) { assert x != 0; } }
    procedure ok(x: int) { assume x > 0; assert x > 0; }";

const GOLDEN_PATH: &str = "tests/golden/telemetry_trace.jsonl";
const PERFETTO_GOLDEN_PATH: &str = "tests/golden/telemetry_trace.perfetto.json";

/// The query cache changes how many solver queries run (fewer query
/// events), so the golden pins the cache-on shape explicitly instead of
/// inheriting `ACSPEC_NO_QUERY_CACHE` from the environment.
fn cache_on() -> AnalyzerConfig {
    AnalyzerConfig {
        query_cache: true,
        ..AnalyzerConfig::default()
    }
}

#[test]
fn redacted_trace_matches_golden_file() {
    let prog = parse_program(PROGRAM).expect("parses");
    let mut obs = TelemetryObserver::new();
    let outcomes = ProgramAnalysis::new(&prog)
        .analyzer(cache_on())
        .threads(1)
        .run(&mut obs);
    assert!(outcomes.iter().all(|o| o.incident().is_none()));
    let out = obs.finish();
    let rendered = out.trace_jsonl_with(
        None,
        TraceRender {
            zero_times: true,
            redact: true,
        },
    );

    let path = format!("{}/{GOLDEN_PATH}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {path}: {e} (run with UPDATE_GOLDEN=1)"));
    assert!(
        rendered == golden,
        "telemetry trace shape changed; if intentional, regenerate with \
         UPDATE_GOLDEN=1.\n--- expected ---\n{golden}\n--- actual ---\n{rendered}"
    );
}

/// Same idea for the Perfetto export, with search summaries on: the
/// golden pins the slice/instant/counter structure and the CDCL
/// attribute keys, with times and numbers redacted.
#[test]
fn redacted_perfetto_trace_matches_golden_file() {
    let prog = parse_program(PROGRAM).expect("parses");
    let mut obs = TelemetryObserver::new().with_search_events(true);
    let outcomes = ProgramAnalysis::new(&prog)
        .analyzer(cache_on())
        .threads(1)
        .run(&mut obs);
    assert!(outcomes.iter().all(|o| o.incident().is_none()));
    let out = obs.finish();
    let rendered = out.trace_perfetto_with(
        None,
        TraceRender {
            zero_times: true,
            redact: true,
        },
    );
    // Sanity before pinning: the document is valid JSON with all three
    // Perfetto phase kinds present.
    let v: serde_json::Value = serde_json::from_str(&rendered).expect("valid JSON");
    let phases: std::collections::BTreeSet<&str> = v["traceEvents"]
        .as_array()
        .expect("array")
        .iter()
        .filter_map(|e| e["ph"].as_str())
        .collect();
    assert!(phases.contains("X") && phases.contains("i"), "{phases:?}");

    let path = format!("{}/{PERFETTO_GOLDEN_PATH}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {path}: {e} (run with UPDATE_GOLDEN=1)"));
    assert!(
        rendered == golden,
        "perfetto trace shape changed; if intentional, regenerate with \
         UPDATE_GOLDEN=1.\n--- expected ---\n{golden}\n--- actual ---\n{rendered}"
    );
}

#[test]
fn metrics_snapshot_shape_is_stable() {
    let prog = parse_program(PROGRAM).expect("parses");
    let mut obs = TelemetryObserver::new();
    let outcomes = ProgramAnalysis::new(&prog)
        .analyzer(cache_on())
        .threads(1)
        .run(&mut obs);
    assert!(outcomes.iter().all(|o| o.incident().is_none()));
    let out = obs.finish();
    let json = out.metrics_json(None);
    let v: serde_json::Value = serde_json::from_str(&json).expect("snapshot parses");
    assert_eq!(v["schema"], u64::from(acspec_telemetry::SCHEMA_VERSION));
    // The metric families the snapshot must keep exposing.
    for key in [
        "procs",
        "solver.queries",
        "solver.sat",
        "solver.unsat",
        "solver.conflicts",
        "solver.decisions",
        "solver.propagations",
        "solver.theory_conflicts",
        "stage.encode.queries",
        "stage.screen.queries",
        "cache.hits",
        "cache.hit_sat",
        "cache.hit_unsat",
        "cache.misses",
        "cache.invalidations",
    ] {
        assert!(
            v["counters"][key].as_u64().is_some(),
            "counter {key} missing from snapshot: {json}"
        );
    }
    assert!(v["gauges"]["stage.total_seconds"].as_f64().is_some());
    assert!(v["histograms"]["solver.query_seconds"]["count"]
        .as_u64()
        .is_some());
}
