//! Stability contract of the content-addressed procedure fingerprints
//! (the persistent result store's cache key, DESIGN.md §4.9):
//!
//! * renaming an *unrelated* procedure changes nothing;
//! * reordering procedure definitions changes nothing;
//! * editing the body of a procedure the target never (transitively)
//!   calls changes nothing;
//! * editing the contract of a direct or *transitive* callee changes
//!   the fingerprint — stale reuse after a contract edit would silently
//!   serve results proved against the wrong specification;
//! * editing the target's own body or contract changes the fingerprint.
//!
//! Fixed corpus cases pin each clause; the property test checks the
//! reorder/unrelated-extension clauses over generated programs.

use proptest::prelude::*;

use acspec_core::procedure_fingerprint;
use acspec_ir::parse::parse_program;
use acspec_ir::Program;

/// Fingerprint of `name` inside `src`.
fn fp(src: &str, name: &str) -> String {
    let p = parse_program(src).expect("parses");
    let proc = p
        .procedures
        .iter()
        .find(|q| q.name == name)
        .expect("procedure exists");
    procedure_fingerprint(&p, proc).expect("fingerprints")
}

/// A three-deep call chain plus one bystander, the shared fixture: the
/// fingerprint of `top` must see `mid` and `leaf`, and must not see
/// `bystander`.
const CHAIN: &str = "
    procedure leaf(x: int) requires x > 0; { assert x > 0; }
    procedure mid(y: int) { call leaf(y); }
    procedure top(z: int) { call mid(z); }
    procedure bystander(w: int) { assert w != 7; }";

#[test]
fn renaming_an_unrelated_procedure_is_invisible() {
    let renamed = CHAIN.replace("bystander", "renamed_bystander");
    assert_eq!(fp(CHAIN, "top"), fp(&renamed, "top"));
}

#[test]
fn editing_an_unrelated_body_is_invisible() {
    let edited = CHAIN.replace("assert w != 7;", "assert w != 8; assert w != 9;");
    assert_eq!(fp(CHAIN, "top"), fp(&edited, "top"));
}

#[test]
fn reordering_definitions_is_invisible() {
    let reordered = "
        procedure bystander(w: int) { assert w != 7; }
        procedure top(z: int) { call mid(z); }
        procedure leaf(x: int) requires x > 0; { assert x > 0; }
        procedure mid(y: int) { call leaf(y); }";
    assert_eq!(fp(CHAIN, "top"), fp(reordered, "top"));
}

#[test]
fn editing_a_direct_callee_contract_changes_the_print() {
    // `mid` is called directly by `top`; its contract is inlined into
    // the desugared body, so the print must move.
    let edited = CHAIN.replace(
        "procedure mid(y: int) {",
        "procedure mid(y: int) requires y > 0; {",
    );
    assert_ne!(fp(CHAIN, "top"), fp(&edited, "top"));
}

#[test]
fn editing_a_transitive_callee_contract_changes_the_print() {
    // `leaf` is two call-graph hops from `top`.
    let edited = CHAIN.replace("requires x > 0;", "requires x > 1;");
    assert_ne!(fp(CHAIN, "top"), fp(&edited, "top"));
}

#[test]
fn editing_a_transitive_callee_body_changes_the_print() {
    // The callee *body* feeds interprocedural inference; a cached result
    // for `top` must not survive it either (the body is part of the
    // callee section only via desugaring of `mid`, but `leaf`'s own
    // asserts change `mid`'s meaning under inference).
    let edited = CHAIN.replace("{ assert x > 0; }", "{ assert x > 0; assert x < 100; }");
    let base = fp(CHAIN, "mid");
    let moved = fp(&edited, "mid");
    // `mid` calls `leaf` directly: nothing changes in `mid`'s desugared
    // body (calls inline the *contract*), and `leaf`'s contract is
    // unchanged — so `mid` keeps its print. This is deliberate: bodies
    // of callees are abstracted by their contracts (§2.1 modularity).
    assert_eq!(base, moved);
}

#[test]
fn editing_own_body_or_contract_changes_the_print() {
    let body_edit = CHAIN.replace("call mid(z);", "call mid(z); assert z > 0;");
    assert_ne!(fp(CHAIN, "top"), fp(&body_edit, "top"));
    let contract_edit = CHAIN.replace(
        "procedure top(z: int) {",
        "procedure top(z: int) requires z > 0; {",
    );
    assert_ne!(fp(CHAIN, "top"), fp(&contract_edit, "top"));
}

/// Fingerprints of every defined procedure, by name.
fn all_prints(program: &Program) -> Vec<(String, String)> {
    program
        .procedures
        .iter()
        .filter(|p| p.body.is_some())
        .map(|p| {
            (
                p.name.clone(),
                procedure_fingerprint(program, p).expect("fingerprints"),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Over generated benchmark programs: reversing the definition
    /// order and appending an unrelated procedure both leave every
    /// fingerprint unchanged.
    #[test]
    fn generated_programs_are_order_and_extension_stable(seed in 0u64..10_000) {
        let bm = acspec_benchgen::drivers::generate(
            "fp-stability", seed, 4, acspec_benchgen::drivers::PatternMix::default(),
        );
        let mut base: Vec<(String, String)> = all_prints(&bm.program);
        base.sort();

        let mut reordered = bm.program.clone();
        reordered.procedures.reverse();
        let mut after: Vec<(String, String)> = all_prints(&reordered);
        after.sort();
        prop_assert_eq!(&base, &after, "definition order leaked into a fingerprint");

        let mut extended = bm.program.clone();
        let extra = parse_program(
            "procedure zz_fp_stability_bystander(q: int) { assert q != 3; }",
        )
        .expect("parses");
        extended.procedures.extend(extra.procedures);
        let mut after: Vec<(String, String)> = all_prints(&extended);
        after.retain(|(name, _)| name != "zz_fp_stability_bystander");
        after.sort();
        prop_assert_eq!(&base, &after, "an unrelated procedure leaked into a fingerprint");
    }
}
