//! The failure model's contract, end to end:
//!
//! * **Budget monotonicity** (metamorphic): a procedure whose reports
//!   all complete under conflict budget `B` produces semantically
//!   identical reports under any budget `B' >= B` — raising the budget
//!   can only turn timeouts into answers, never change an answer.
//! * **Chaos equivalence**: the chaos harness at rate 0 is a true
//!   no-op — reports are byte-identical (stats zeroed) to a run with
//!   no harness installed, for any seed.
//! * **Isolation** (property test): under arbitrary seeds and fault
//!   rates, `ProgramAnalysis::run` never lets a panic escape, yields
//!   exactly one outcome per defined procedure, and every degraded
//!   report's warnings are a subset of the fault-free demonic screen —
//!   injected faults may lose precision, never invent warnings.

use std::collections::{BTreeMap, BTreeSet};

use proptest::prelude::*;

use acspec_core::{
    analyze_procedure, program_report_json, AcspecOptions, ConfigName, NullObserver, ProcReport,
    ProcStats, ProgramAnalysis,
};
use acspec_vcgen::analyzer::AnalyzerConfig;
use acspec_vcgen::chaos::ChaosConfig;

/// The semantically meaningful fields of a report (timings excluded).
fn semantic_view(r: &ProcReport) -> (String, String, Vec<(String, String)>, Vec<String>, usize) {
    (
        r.config.to_string(),
        r.status.to_string(),
        r.warnings
            .iter()
            .map(|w| (w.assert.to_string(), w.tag.clone()))
            .collect(),
        r.specs.iter().map(ToString::to_string).collect(),
        r.min_fail,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn raising_the_budget_preserves_completed_reports(seed in 0u64..10_000) {
        let bm = acspec_benchgen::drivers::generate(
            "budget-mono", seed, 3, acspec_benchgen::drivers::PatternMix::default(),
        );
        let budgets = [20_000u64, 50_000, 200_000];
        for proc in &bm.program.procedures {
            if proc.body.is_none() {
                continue;
            }
            let run = |budget: u64| -> ProcReport {
                let mut opts = AcspecOptions::for_config(ConfigName::Conc);
                opts.analyzer.conflict_budget = Some(budget);
                analyze_procedure(&bm.program, proc, &opts).expect("analyzes")
            };
            let mut completed: Option<(u64, ProcReport)> = None;
            for &b in &budgets {
                let report = run(b);
                if report.timed_out() {
                    // Not yet enough budget; a completed report under a
                    // *larger* budget later is still fine.
                    continue;
                }
                if let Some((b0, baseline)) = &completed {
                    prop_assert_eq!(
                        semantic_view(baseline),
                        semantic_view(&report),
                        "report changed between budgets {} and {}", b0, b
                    );
                } else {
                    completed = Some((b, report));
                }
            }
        }
    }
}

#[test]
fn chaos_at_rate_zero_is_byte_identical_to_no_harness() {
    let bm = acspec_benchgen::drivers::generate(
        "chaos-eq",
        7,
        6,
        acspec_benchgen::drivers::PatternMix::default(),
    );
    let render = |chaos: Option<ChaosConfig>| -> String {
        let cfg = AnalyzerConfig {
            chaos,
            ..AnalyzerConfig::default()
        };
        let outcomes = ProgramAnalysis::new(&bm.program)
            .analyzer(cfg)
            .threads(2)
            .run(&mut NullObserver);
        let mut reports: Vec<ProcReport> = Vec::new();
        let mut incidents = Vec::new();
        for o in outcomes {
            match o.incident() {
                Some(i) => incidents.push(i.clone()),
                None => {
                    let pa = o.into_analysis().expect("analyzed");
                    reports.push(pa.cons);
                    reports.extend(pa.reports.into_iter().flatten());
                }
            }
        }
        for r in &mut reports {
            r.stats = ProcStats::default(); // wall clock is the one nondeterministic field
        }
        let refs: Vec<&ProcReport> = reports.iter().collect();
        program_report_json(&refs, &incidents)
    };
    let bare = render(None);
    for seed in [0, 42, u64::MAX] {
        assert_eq!(
            bare,
            render(Some(ChaosConfig::new(seed, 0.0))),
            "rate-0 harness diverged for seed {seed}"
        );
    }
}

/// Suppresses the default panic-hook backtrace spam for the panics the
/// chaos harness injects on purpose (they are caught by the worker
/// loop); everything else still reaches the previous hook.
fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.starts_with("chaos:"));
            if !injected {
                prev(info);
            }
        }));
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn chaos_never_escapes_and_degradation_never_invents_warnings(
        seed in 0u64..1_000_000,
        rate_pct in 0u64..101,
    ) {
        silence_injected_panics();
        let rate = rate_pct as f64 / 100.0;
        let bm = acspec_benchgen::drivers::generate(
            "chaos-prop", 11, 4, acspec_benchgen::drivers::PatternMix::default(),
        );
        let defined: BTreeSet<String> = bm
            .program
            .procedures
            .iter()
            .filter(|p| p.body.is_some())
            .map(|p| p.name.clone())
            .collect();

        // Fault-free demonic screen: the warning superset every
        // degraded fallback must stay inside.
        let baseline = ProgramAnalysis::new(&bm.program)
            .threads(1)
            .run(&mut NullObserver);
        let mut demonic: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for o in &baseline {
            let pa = o.analysis().expect("fault-free run has no incidents");
            demonic.insert(
                pa.proc_name.clone(),
                pa.cons.warnings.iter().map(|w| w.tag.clone()).collect(),
            );
        }

        let cfg = AnalyzerConfig {
            chaos: Some(ChaosConfig::new(seed, rate)),
            ..AnalyzerConfig::default()
        };
        // If an injected panic escaped the worker's catch_unwind this
        // call would propagate it and the test would fail.
        let outcomes = ProgramAnalysis::new(&bm.program)
            .analyzer(cfg)
            .threads(2)
            .run(&mut NullObserver);

        let mut seen: Vec<String> = outcomes.iter().map(|o| o.proc_name().to_string()).collect();
        seen.sort();
        let expected: Vec<String> = defined.iter().cloned().collect();
        prop_assert_eq!(seen, expected, "each defined procedure appears exactly once");

        for o in &outcomes {
            let Some(pa) = o.analysis() else { continue };
            let superset = &demonic[&pa.proc_name];
            for r in std::iter::once(&pa.cons).chain(pa.reports.iter().flatten()) {
                if !r.degraded() {
                    continue;
                }
                for w in &r.warnings {
                    prop_assert!(
                        superset.contains(&w.tag),
                        "degraded {} report of `{}` invented warning {}",
                        r.config, pa.proc_name, w.tag
                    );
                }
            }
        }
    }
}
