//! Proposition 1: a procedure with at least one assertion has a SIB iff
//! `Dead(WP(pr)) ≠ ∅`.
//!
//! The pipeline decides SIBs through the predicate cover
//! `β_Q(wp(pr, true))` with `Q = Preds(body, {})`; §4.4.1 claims this
//! cover *equals* the concrete weakest precondition. We validate both
//! statements together on random *deterministic* programs (no `havoc`,
//! no `if (*)`, no calls — so `wp` is a quantifier-free formula over the
//! inputs): installing `wp` itself as the environment specification must
//! produce exactly the dead set and SIB verdict the pipeline reports.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use acspec_core::{analyze_procedure, AcspecOptions, ConfigName, SibStatus};
use acspec_ir::parse::parse_program;
use acspec_ir::{desugar_procedure, DesugarOptions};
use acspec_vcgen::analyzer::{AnalyzerConfig, ProcAnalyzer};
use acspec_vcgen::wp;

fn random_det_program(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let vars = ["x", "y", "z"];
    let mut stmts = Vec::new();
    let rel = |rng: &mut StdRng| -> String {
        let ops = ["==", "!=", "<", "<="];
        format!(
            "{} {} {}",
            vars[rng.gen_range(0..3)],
            ops[rng.gen_range(0..4)],
            rng.gen_range(-2..3)
        )
    };
    for _ in 0..rng.gen_range(2..6) {
        match rng.gen_range(0..4) {
            0 => stmts.push(format!("assert {};", rel(&mut rng))),
            1 => stmts.push(format!(
                "{} := {} + {};",
                vars[rng.gen_range(0..3)],
                vars[rng.gen_range(0..3)],
                rng.gen_range(-2..3)
            )),
            2 => {
                let c = rel(&mut rng);
                let inner = format!("assert {};", rel(&mut rng));
                stmts.push(format!("if ({c}) {{ {inner} }}"));
            }
            _ => {
                let c = rel(&mut rng);
                let a = format!("{} := 0;", vars[rng.gen_range(0..3)]);
                let b = format!("assert {};", rel(&mut rng));
                stmts.push(format!("if ({c}) {{ {a} }} else {{ {b} }}"));
            }
        }
    }
    format!(
        "procedure f(x: int, y: int, z: int) {{ {} }}",
        stmts.join("\n")
    )
}

#[test]
fn proposition1_on_random_deterministic_programs() {
    let mut checked = 0;
    let mut sibs = 0;
    for seed in 0..30u64 {
        let src = random_det_program(seed);
        let prog = parse_program(&src).expect("parses");
        let proc = prog.procedures[0].clone();
        let d = desugar_procedure(&prog, &proc, DesugarOptions::default()).expect("desugars");
        if d.asserts.is_empty() {
            continue; // Proposition 1 requires at least one assertion
        }

        // Ground truth: Dead(WP) via the wp transformer as a selector.
        let wp_result = wp::wp(&d.body, &acspec_ir::Formula::True);
        assert!(
            wp_result.universals.is_empty(),
            "deterministic programs have closed wp"
        );
        let mut az = ProcAnalyzer::new(&d, AnalyzerConfig::default()).expect("encodes");
        let baseline = az.dead_set(&[]).expect("ok");
        let demonic_fail = az.fail_set(&[]).expect("ok");
        let sel = az.add_selector(&wp_result.formula).expect("inputs only");
        let consistent = az.is_consistent(&[sel], &[]).expect("ok");
        let dead_wp: std::collections::BTreeSet<_> = az
            .dead_set(&[sel])
            .expect("ok")
            .difference(&baseline)
            .copied()
            .collect();
        // WP must indeed suppress all failures (sanity on the transformer).
        assert!(
            az.fail_set(&[sel]).expect("ok").is_empty(),
            "seed {seed}: Fail(WP) must be empty\n{src}"
        );
        let has_sib_ground_truth = !dead_wp.is_empty() || !consistent;

        // The pipeline's verdict under Conc.
        let report = analyze_procedure(&prog, &proc, &AcspecOptions::for_config(ConfigName::Conc))
            .expect("analyzes");
        if report.timed_out() {
            continue;
        }
        if demonic_fail.is_empty() {
            assert_eq!(report.status, SibStatus::Correct);
            continue;
        }
        checked += 1;
        let pipeline_sib = report.status == SibStatus::Sib;
        assert_eq!(
            pipeline_sib, has_sib_ground_truth,
            "seed {seed}: Proposition 1 violated\nwp = {}\n{src}",
            wp_result.formula
        );
        if pipeline_sib {
            sibs += 1;
        }
    }
    assert!(checked > 10, "generator health: only {checked} checked");
    assert!(sibs > 2, "generator health: only {sibs} SIBs seen");
}
