//! Golden test for the program-report JSON document (the `acspec
//! --format json` payload): pins the full shape — `schema_version`,
//! per-report fields, embedded incidents — on a small fixed program.
//! Wall-clock stats are zeroed before rendering; everything else is
//! deterministic.
//!
//! Regenerate after an intentional schema change with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p acspec-core --test report_golden
//! ```

use acspec_core::{
    program_report_json, NullObserver, ProcReport, ProcStats, ProgramAnalysis,
    REPORT_SCHEMA_VERSION,
};

const GOLDEN_PATH: &str = "tests/golden/program_report.json";

const PROGRAM: &str = "
    global Freed: map;
    procedure f(p: int) {
      assert Freed[p] == 0; Freed[p] := 1;
      assert Freed[p] == 0; Freed[p] := 1;
    }";

#[test]
fn program_report_json_matches_golden_file() {
    let prog = acspec_ir::parse::parse_program(PROGRAM).expect("parses");
    let outcomes = ProgramAnalysis::new(&prog)
        .threads(1)
        .run(&mut NullObserver);
    let mut reports: Vec<ProcReport> = Vec::new();
    let mut incidents = Vec::new();
    for o in outcomes {
        match o.incident() {
            Some(i) => incidents.push(i.clone()),
            None => {
                let pa = o.into_analysis().expect("analyzed");
                reports.push(pa.cons);
                reports.extend(pa.reports.into_iter().flatten());
            }
        }
    }
    for r in &mut reports {
        r.stats = ProcStats::default(); // wall clock is nondeterministic
    }
    let refs: Vec<&ProcReport> = reports.iter().collect();
    let rendered = program_report_json(&refs, &incidents);

    // The version constant must appear in the document itself, so a
    // bump without a golden regeneration fails loudly here.
    assert!(
        rendered.contains(&format!("\"schema_version\": {REPORT_SCHEMA_VERSION}")),
        "document does not carry schema_version {REPORT_SCHEMA_VERSION}"
    );

    let path = format!("{}/{GOLDEN_PATH}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {path}: {e} (run with UPDATE_GOLDEN=1)"));
    assert!(
        rendered == golden,
        "program-report JSON diverged from golden; if intentional, bump \
         REPORT_SCHEMA_VERSION and regenerate with UPDATE_GOLDEN=1.\n\
         --- expected ---\n{golden}\n--- actual ---\n{rendered}"
    );
}
