//! Property-based equivalence of the hash-consed arena paths against the
//! boxed-tree reference implementations they replaced:
//!
//! * `wp` (arena-backed) equals `wp_reference` (tree recursion) on the
//!   desugared bodies of randomly generated driver programs;
//! * `mine_predicates_interned` over one shared arena equals
//!   `mine_predicates_reference` for every abstraction, in order;
//! * interning is stable under a pretty-print/parse round-trip:
//!   `intern(parse(pretty(extern(t)))) == t` for parser-produced terms;
//! * the end-to-end report JSON (statistics zeroed) is a pure function
//!   of the input program — repeated runs are byte-identical.
//!
//! The byte-level pre-/post-arena report check rides the checked-in
//! goldens (`report_golden.rs`): those files were produced by the tree
//! pipeline and must keep matching.

use proptest::prelude::*;

use acspec_benchgen::drivers::{generate, PatternMix};
use acspec_core::{analyze_procedure_multi, AcspecOptions, ConfigName};
use acspec_ir::arena::TermArena;
use acspec_ir::parse::parse_formula;
use acspec_ir::{desugar_procedure, DesugarOptions, Formula};
use acspec_predabs::mine::{mine_predicates_interned, mine_predicates_reference, Abstraction};
use acspec_predabs::normalize::PruneConfig;
use acspec_vcgen::wp::{wp, wp_reference};

fn abstractions() -> [Abstraction; 4] {
    [
        Abstraction::concrete(),
        Abstraction {
            ignore_conditionals: false,
            havoc_returns: true,
        },
        Abstraction {
            ignore_conditionals: true,
            havoc_returns: false,
        },
        Abstraction {
            ignore_conditionals: true,
            havoc_returns: true,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn arena_wp_and_mining_match_tree_reference(seed in 0u64..10_000) {
        let bm = generate("arena-eq", seed, 3, PatternMix::default());
        // One arena for the whole program, as in a real session: later
        // procedures and abstractions must not be perturbed by memo
        // state accumulated from earlier ones.
        let mut arena = TermArena::new();
        for proc in &bm.program.procedures {
            if proc.body.is_none() {
                continue;
            }
            let d = desugar_procedure(&bm.program, proc, DesugarOptions::default())
                .expect("desugars");
            let fast = wp(&d.body, &Formula::True);
            let slow = wp_reference(&d.body, &Formula::True);
            prop_assert_eq!(&fast.formula, &slow.formula, "wp diverges in {}", &proc.name);
            prop_assert_eq!(&fast.universals, &slow.universals);
            for abs in abstractions() {
                let interned = mine_predicates_interned(&mut arena, &d, abs);
                let reference = mine_predicates_reference(&d, abs);
                prop_assert_eq!(
                    interned,
                    reference,
                    "mining diverges in {} under {:?}",
                    &proc.name,
                    abs
                );
            }
        }
        // The shared arena actually shared: four abstractions over the
        // same bodies must answer some substitutions from the memo.
        prop_assert!(arena.stats().memo_hits() > 0, "no memo reuse across abstractions");
    }
}

/// Random formula source text from the parseable grammar. Exercises
/// every connective the parser accepts plus map reads/writes.
fn formula_src(rng: &mut impl FnMut() -> u64, depth: usize) -> String {
    fn expr(rng: &mut impl FnMut() -> u64, depth: usize) -> String {
        if depth == 0 {
            match rng() % 4 {
                0 => "x".into(),
                1 => "y".into(),
                2 => "z".into(),
                _ => format!("{}", rng() % 10),
            }
        } else {
            let a = expr(rng, depth - 1);
            let b = expr(rng, depth - 1);
            match rng() % 6 {
                0 => format!("({a} + {b})"),
                1 => format!("({a} - {b})"),
                2 => format!("({a} * {b})"),
                3 => format!("m[{a}]"),
                4 => format!("write(m, {a}, {b})[{a}]"),
                _ => a,
            }
        }
    }
    if depth == 0 {
        let a = expr(rng, 1);
        let b = expr(rng, 1);
        let op = ["==", "!=", "<", "<=", ">", ">="][(rng() % 6) as usize];
        format!("{a} {op} {b}")
    } else {
        let a = formula_src(rng, depth - 1);
        let b = formula_src(rng, depth - 1);
        match rng() % 6 {
            0 => format!("({a} && {b})"),
            1 => format!("({a} || {b})"),
            2 => format!("!({a})"),
            3 => format!("({a} ==> {b})"),
            4 => format!("({a} <==> {b})"),
            _ => a,
        }
    }
}

#[test]
fn interning_is_stable_under_pretty_parse_round_trip() {
    let mut seed = 0x243f6a8885a308d3u64;
    let mut rng = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    let mut arena = TermArena::new();
    for round in 0..500 {
        let src = formula_src(&mut rng, 1 + (round % 3));
        let f = parse_formula(&src).unwrap_or_else(|e| panic!("generated {src}: {e}"));
        let t = arena.intern_formula(&f);
        let pretty = arena.extern_formula(t).to_string();
        let reparsed = parse_formula(&pretty)
            .unwrap_or_else(|e| panic!("pretty output must reparse: {pretty}: {e}"));
        let t2 = arena.intern_formula(&reparsed);
        assert_eq!(t, t2, "round-trip changed the term: {src} → {pretty}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn reports_are_a_pure_function_of_the_program(seed in 0u64..10_000) {
        let bm = generate("arena-pure", seed, 2, PatternMix::default());
        let prune = [PruneConfig::default()];
        for proc in bm.program.procedures.iter().filter(|p| p.body.is_some()).take(2) {
            for config in [ConfigName::Conc, ConfigName::A2] {
                let opts = AcspecOptions::for_config(config);
                let a = analyze_procedure_multi(&bm.program, proc, &opts, &prune)
                    .expect("analyzes");
                let b = analyze_procedure_multi(&bm.program, proc, &opts, &prune)
                    .expect("analyzes");
                prop_assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(&b) {
                    let mut x = x.clone();
                    let mut y = y.clone();
                    x.stats = acspec_core::ProcStats::default();
                    y.stats = acspec_core::ProcStats::default();
                    prop_assert_eq!(x.to_json(), y.to_json(), "nondeterministic report");
                }
            }
        }
    }
}
