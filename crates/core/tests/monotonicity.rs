//! Metamorphic monotonicity tests of the solver-level `Dead`/`Fail`
//! queries, checked **directly against the solver with the query cache
//! disabled**.
//!
//! Activating more cover-clause selectors strengthens the environment
//! specification, so for selector subsets `S' ⊆ S`:
//!
//! * `Dead(⋀S') ⊆ Dead(⋀S)` — a stronger spec kills at least as much
//!   code (Sat is monotone down in the assumption set);
//! * `Fail(⋀S) ⊆ Fail(⋀S')` — a stronger spec fails at most as much
//!   (Unsat is monotone up in the assumption set).
//!
//! These inclusions are exactly the dominance rules the query cache in
//! `acspec_vcgen::cache` relies on; pinning them cache-off means the
//! cache's soundness argument rests on an independently tested fact.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use acspec_benchgen::drivers::{generate, PatternMix};
use acspec_ir::{desugar_procedure, DesugarOptions};
use acspec_predabs::cover::predicate_cover;
use acspec_predabs::mine::{mine_predicates, Abstraction};
use acspec_vcgen::analyzer::{AnalyzerConfig, ProcAnalyzer, Selector};

fn cache_off() -> AnalyzerConfig {
    AnalyzerConfig {
        query_cache: false,
        ..AnalyzerConfig::default()
    }
}

/// Builds a cache-off analyzer with the procedure's full cover installed,
/// or `None` when the procedure has no interesting cover (correct, too
/// many predicates for affordable ALL-SAT, or over budget).
fn installed_cover(
    prog: &acspec_ir::program::Program,
    proc: &acspec_ir::program::Procedure,
) -> Option<(ProcAnalyzer, Vec<Selector>)> {
    let d = desugar_procedure(prog, proc, DesugarOptions::default()).ok()?;
    let q = mine_predicates(&d, Abstraction::concrete());
    if q.len() > 6 {
        return None;
    }
    let mut az = ProcAnalyzer::new(&d, cache_off()).ok()?;
    assert!(!az.cache_enabled(), "cache must be off for these tests");
    let cover = predicate_cover(&mut az, &q).ok()?;
    if cover.clauses.is_empty() {
        return None;
    }
    let sels = cover.install_selectors(&mut az);
    Some((az, sels))
}

/// Random subset of `sels`, each element kept with probability `p`.
fn subset(rng: &mut StdRng, sels: &[Selector], p: f64) -> Vec<Selector> {
    sels.iter().copied().filter(|_| rng.gen_bool(p)).collect()
}

#[test]
fn dead_and_fail_are_monotone_in_the_selector_subset() {
    let mut checked = 0usize;
    for seed in 0..12u64 {
        let bm = generate("mono", seed, 3, PatternMix::default());
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        for proc in &bm.program.procedures {
            if proc.body.is_none() {
                continue;
            }
            let Some((mut az, sels)) = installed_cover(&bm.program, proc) else {
                continue;
            };
            for _ in 0..4 {
                // S' ⊆ S ⊆ sels by construction.
                let s = subset(&mut rng, &sels, 0.6);
                let s_sub = subset(&mut rng, &s, 0.6);
                let (Ok(dead_s), Ok(dead_sub)) = (az.dead_set(&s), az.dead_set(&s_sub)) else {
                    continue;
                };
                let (Ok(fail_s), Ok(fail_sub)) = (az.fail_set(&s), az.fail_set(&s_sub)) else {
                    continue;
                };
                assert!(
                    dead_sub.is_subset(&dead_s),
                    "seed {seed} {}: Dead(⋀S') ⊄ Dead(⋀S): {dead_sub:?} vs {dead_s:?}",
                    proc.name
                );
                assert!(
                    fail_s.is_subset(&fail_sub),
                    "seed {seed} {}: Fail(⋀S) ⊄ Fail(⋀S'): {fail_s:?} vs {fail_sub:?}",
                    proc.name
                );
                checked += 1;
            }
            // No cached answers were involved in any of the above.
            assert_eq!(
                az.cache_stats().hits(),
                0,
                "cache-off analyzer hit its cache"
            );
        }
    }
    assert!(
        checked >= 20,
        "generator health: only {checked} subset pairs checked"
    );
}

#[test]
fn chain_endpoints_bound_every_subset() {
    // ∅ ⊆ S ⊆ full gives the two-sided bound for every sampled S:
    // Dead(∅) ⊆ Dead(S) ⊆ Dead(full) and Fail(full) ⊆ Fail(S) ⊆ Fail(∅).
    let mut checked = 0usize;
    for seed in 0..8u64 {
        let bm = generate("mono-chain", seed, 3, PatternMix::default());
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e3779b97f4a7c15));
        for proc in &bm.program.procedures {
            if proc.body.is_none() {
                continue;
            }
            let Some((mut az, sels)) = installed_cover(&bm.program, proc) else {
                continue;
            };
            let (Ok(dead_bot), Ok(dead_top)) = (az.dead_set(&[]), az.dead_set(&sels)) else {
                continue;
            };
            let (Ok(fail_bot), Ok(fail_top)) = (az.fail_set(&[]), az.fail_set(&sels)) else {
                continue;
            };
            for _ in 0..3 {
                let s = subset(&mut rng, &sels, 0.5);
                let (Ok(dead_s), Ok(fail_s)) = (az.dead_set(&s), az.fail_set(&s)) else {
                    continue;
                };
                assert!(
                    dead_bot.is_subset(&dead_s),
                    "Dead(∅) ⊆ Dead(S) in {}",
                    proc.name
                );
                assert!(
                    dead_s.is_subset(&dead_top),
                    "Dead(S) ⊆ Dead(full) in {}",
                    proc.name
                );
                assert!(
                    fail_top.is_subset(&fail_s),
                    "Fail(full) ⊆ Fail(S) in {}",
                    proc.name
                );
                assert!(
                    fail_s.is_subset(&fail_bot),
                    "Fail(S) ⊆ Fail(∅) in {}",
                    proc.name
                );
                checked += 1;
            }
        }
    }
    assert!(
        checked >= 10,
        "generator health: only {checked} chains checked"
    );
}
