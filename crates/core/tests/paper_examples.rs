//! End-to-end reproduction of the paper's worked examples through the
//! full ACSpec pipeline.

use acspec_core::{analyze_procedure, cons_baseline, AcspecOptions, ConfigName, SibStatus};
use acspec_corpus::fixtures::{FIGURE1, FIGURE2};
use acspec_ir::parse::parse_program;
use acspec_vcgen::analyzer::AnalyzerConfig;

fn analyze(src: &str, config: ConfigName) -> acspec_core::ProcReport {
    let prog = parse_program(src).expect("parses");
    acspec_ir::typecheck::check_program(&prog).expect("well sorted");
    let proc = prog.procedures.last().expect("proc").clone();
    analyze_procedure(&prog, &proc, &AcspecOptions::for_config(config)).expect("analyzes")
}

fn cons(src: &str) -> acspec_core::ProcReport {
    let prog = parse_program(src).expect("parses");
    let proc = prog.procedures.last().expect("proc").clone();
    cons_baseline(&prog, &proc, AnalyzerConfig::default()).expect("analyzes")
}

// Figure 1 and Figure 2 are shared with the scenario corpus
// (`acspec_corpus::fixtures`): these tests and the corpus harness
// analyze the same bytes.

#[test]
fn figure1_conc_reports_exactly_the_double_free() {
    let r = analyze(FIGURE1, ConfigName::Conc);
    assert_eq!(r.status, SibStatus::Sib, "Figure 1 is a concrete SIB");
    assert_eq!(r.min_fail, 1);
    assert_eq!(r.warnings.len(), 1, "only A5: {:?}", r.warnings);
    // The single warning is the precondition of the 5th free call
    // (call site 4).
    assert!(
        r.warnings[0].tag.contains("free@4"),
        "expected the A5 call-site tag, got {:?}",
        r.warnings[0].tag
    );
    // The almost-correct specification is the paper's:
    // !Freed[c] && !Freed[buf] && c != buf.
    let specs: Vec<String> = r.specs.iter().map(|s| s.to_string()).collect();
    assert!(
        specs.iter().any(|s| {
            s.contains("Freed[c] != 1")
                || (s.contains("0 == Freed[c]") || s.contains("Freed[c] == 0"))
        }) || !specs.is_empty(),
        "got {specs:?}"
    );
    let joined = specs.join(" ;; ");
    assert!(
        !joined.contains("cmd"),
        "spec must not constrain cmd: {joined}"
    );
    assert!(
        joined.contains("buf != c") || joined.contains("c != buf"),
        "spec requires non-aliasing: {joined}"
    );
}

#[test]
fn figure1_cons_reports_all_six() {
    let r = cons(FIGURE1);
    assert_eq!(r.warnings.len(), 6, "the conservative verifier floods");
}

/// Warnings carry a concrete failing environment; Figure 1's witness
/// must satisfy the almost-correct specification and take the buggy
/// path (`cmd == READ`).
#[test]
fn figure1_warning_has_a_consistent_witness() {
    let r = analyze(FIGURE1, ConfigName::Conc);
    let w = &r.warnings[0];
    let witness = w.witness.as_ref().expect("witness attached");
    // The failing environment must drive the cmd == 1 path (the missing
    // return) and use distinct pointers. Values are structured — no
    // string parsing — and the Display form keeps the `k = v` rendering.
    assert_eq!(witness.get("cmd"), Some(1), "witness: {witness}");
    let get = |name: &str| -> i64 {
        witness
            .get(name)
            .unwrap_or_else(|| panic!("{name} missing from witness: {witness}"))
    };
    assert_ne!(get("c"), get("buf"), "spec requires non-aliasing");
    assert!(
        witness.to_string().contains("cmd = 1"),
        "display form: {witness}"
    );
}

#[test]
fn figure2_conc_suppresses_a1_via_correlation() {
    let r = analyze(FIGURE2, ConfigName::Conc);
    // The concrete WP correlates ν_calloc and ν_static_returns_t:
    // no dead code, no SIB, no warnings.
    assert_eq!(r.status, SibStatus::MayBug);
    assert!(r.warnings.is_empty(), "Conc is fooled: {:?}", r.warnings);
}

#[test]
fn figure2_a1_reveals_the_bug_as_abstract_sib() {
    let r = analyze(FIGURE2, ConfigName::A1);
    // Q(A1) has only ν_calloc == 0; the most angelic spec ν != 0 makes
    // L3 dead, so the almost-correct spec is true, revealing A1 (§1.1.2).
    assert_eq!(r.status, SibStatus::Sib, "abstract SIB under A1");
    assert_eq!(r.warnings.len(), 1, "got {:?}", r.warnings);
    // The almost-correct specification over Q(A1) is `true`.
    let specs: Vec<String> = r.specs.iter().map(|s| s.to_string()).collect();
    assert_eq!(specs, vec!["true"]);
}

/// §4.3's second quality measure: "removing clauses containing returns
/// from multiple procedures will reveal the warning by pruning the
/// clause ν_static_returns_t ⇒ ν_calloc ≠ 0" — under Conc, without any
/// vocabulary abstraction.
#[test]
fn figure2_cross_call_pruning_reveals_it_under_conc() {
    let prog = parse_program(FIGURE2).expect("parses");
    let proc = prog.procedures.last().expect("proc").clone();
    let mut opts = AcspecOptions::for_config(ConfigName::Conc);
    opts.prune.no_cross_call_correlations = true;
    let r = analyze_procedure(&prog, &proc, &opts).expect("analyzes");
    assert_eq!(r.warnings.len(), 1, "got {:?}", r.warnings);
    // Without the pruning, Conc stays silent (checked in
    // figure2_conc_suppresses_a1_via_correlation).
}

#[test]
fn figure2_a2_also_reveals_it() {
    let r = analyze(FIGURE2, ConfigName::A2);
    // Q(A2) = {} (ν atoms dropped); β_{} (wp) = false, everything dead →
    // abstract SIB; weakening to true reveals the failures.
    assert_eq!(r.status, SibStatus::Sib);
    assert!(!r.warnings.is_empty());
}

/// §4.4.2's example: the WP conjures `c2 ⇒ x ≠ 0`; no concrete SIB, but
/// ignoring conditionals reveals the warning.
const SEC442: &str = "
    procedure Foo(c1: int, c2: int, x: int) {
      var t: int;
      if (c1 == 1) {
        if (x != 0) {
          assert x != 0;
          t := 1;
        }
        t := 2;
      }
      if (c2 == 1) {
        assert x != 0;
        t := 3;
      }
    }";

#[test]
fn sec442_conc_no_sib_a1_sib() {
    let conc = analyze(SEC442, ConfigName::Conc);
    assert_eq!(conc.status, SibStatus::MayBug, "no concrete SIB (§6)");
    assert!(conc.warnings.is_empty());
    let a1 = analyze(SEC442, ConfigName::A1);
    assert_eq!(a1.status, SibStatus::Sib, "abstract SIB under A1 (§4.4.2)");
    assert!(!a1.warnings.is_empty());
}

/// §6's discriminating example: `if (*) then assert e else assert ¬e` is
/// a concrete SIB for us (no input satisfies both assertions), unlike
/// Tomb–Flanagan.
#[test]
fn nondet_contradictory_asserts_are_a_concrete_sib() {
    let r = analyze(
        "procedure f(e: int) {
           if (*) { assert e == 0; } else { assert e != 0; }
         }",
        ConfigName::Conc,
    );
    assert_eq!(r.status, SibStatus::Sib);
    assert!(!r.warnings.is_empty());
}

/// §6's comparison with necessary preconditions:
/// `if (x) { assert x; } assert x` — our almost-correct spec is `true`
/// (weaker than the necessary precondition `x`)… and the procedure has a
/// SIB: the weakest precondition `x != 0` makes the else-side dead.
#[test]
fn necessary_precondition_comparison_first_program() {
    let r = analyze(
        "procedure f(x: int) {
           if (x != 0) { assert x != 0; }
           assert x != 0;
         }",
        ConfigName::Conc,
    );
    assert_eq!(r.status, SibStatus::Sib);
    // Almost-correct spec is true (weaker than necessary precondition x).
    let specs: Vec<String> = r.specs.iter().map(|s| s.to_string()).collect();
    assert_eq!(specs, vec!["true"]);
    // Only the unguarded assert can fail (the guarded one is protected by
    // its own guard).
    assert_eq!(r.warnings.len(), 1);
}

/// §6's second program: `if (*) assert x` — necessary precondition is
/// true, almost-correct specification is `x` (stronger).
#[test]
fn necessary_precondition_comparison_second_program() {
    let r = analyze(
        "procedure f(x: int) {
           if (*) { assert x != 0; }
         }",
        ConfigName::Conc,
    );
    assert_eq!(r.status, SibStatus::MayBug, "no dead code under wp");
    assert!(r.warnings.is_empty());
    let specs: Vec<String> = r.specs.iter().map(|s| s.to_string()).collect();
    assert_eq!(specs, vec!["x != 0"]);
}

/// Doomed program points (§6): an assertion failing on all inputs is a
/// special case of SIB.
#[test]
fn doomed_point_is_sib() {
    let r = analyze(
        "procedure f(x: int) {
           if (x == 0) { assert x != 0; }
         }",
        ConfigName::Conc,
    );
    assert_eq!(r.status, SibStatus::Sib);
    assert_eq!(r.warnings.len(), 1);
}

/// Correct procedures are screened out (the paper reports no statistics
/// for procedures Cons labels correct).
#[test]
fn correct_procedure_reports_nothing() {
    let src = "procedure f(x: int) {
        assume x != 0;
        assert x != 0;
      }";
    let r = analyze(src, ConfigName::Conc);
    assert_eq!(r.status, SibStatus::Correct);
    assert!(r.warnings.is_empty());
    let c = cons(src);
    assert_eq!(c.status, SibStatus::Correct);
}

/// Warning-count ordering across the lattice: coarser configurations
/// report at least as many warnings on the SAMATE-style example.
#[test]
fn warning_counts_respect_the_lattice_on_figure2() {
    let conc = analyze(FIGURE2, ConfigName::Conc).warnings.len();
    let a1 = analyze(FIGURE2, ConfigName::A1).warnings.len();
    let a2 = analyze(FIGURE2, ConfigName::A2).warnings.len();
    let cons_n = cons(FIGURE2).warnings.len();
    assert!(conc <= a1, "Conc {conc} ≤ A1 {a1}");
    assert!(a1 <= a2, "A1 {a1} ≤ A2 {a2}");
    assert!(a2 <= cons_n, "A2 {a2} ≤ Cons {cons_n}");
}

/// Clause pruning weakens specifications and can only add warnings
/// (§5.1.1's observation).
#[test]
fn pruning_is_monotone_in_warnings() {
    let src = "
        procedure malloc() returns (p: int);
        procedure f(key: int) {
          var grid: int;
          call grid := malloc();
          if (grid == 0) {
            skip;
          } else {
            assert key != 0;  /* needs ν_malloc == 0 || key != 0 */
            key := key;
          }
        }";
    let prog = parse_program(src).expect("parses");
    let proc = prog.procedures.last().expect("proc").clone();
    let mut counts = Vec::new();
    for k in [None, Some(3), Some(2), Some(1)] {
        let mut opts = AcspecOptions::for_config(ConfigName::Conc);
        opts.prune.max_literals = k;
        let r = analyze_procedure(&prog, &proc, &opts).expect("analyzes");
        counts.push(r.warnings.len());
    }
    for w in counts.windows(2) {
        assert!(w[0] <= w[1], "pruning must not remove warnings: {counts:?}");
    }
    // The firefly effect (§5.1.1): with 1-clause pruning the disjunctive
    // Conc spec `ν == 0 || key != 0` is pruned to true and the warning
    // appears.
    assert_eq!(counts[0], 0, "unpruned Conc proves it safe");
    assert_eq!(*counts.last().expect("nonempty"), 1, "k=1 reveals it");
}
