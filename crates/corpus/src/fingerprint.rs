//! Stable warning fingerprints and the blessed-oracle format.
//!
//! A fingerprint identifies a warning by what the paper's triage ladder
//! says about it — procedure, claim kind (the tag's prefix), full site
//! tag, the abstraction level that first reported it, and that level's
//! MinFail confidence — and deliberately excludes everything unstable
//! (assert ids, witnesses, timings, query counts). Two runs agree on a
//! scenario exactly when their fingerprint sets are equal, so the oracle
//! file is the sorted fingerprint list in a canonical JSON rendering
//! that can be compared byte-for-byte.

use std::collections::BTreeMap;

use acspec_check::json;

/// The abstraction-level names a fingerprint can carry, in ladder order:
/// the three evaluated configurations plus `Cons` for warnings only the
/// conservative baseline reports (the paper's *DemonicOnly* bucket).
pub const LEVELS: &[&str] = &["Conc", "A1", "A2", "Cons"];

/// One warning, identified by its stable fingerprint.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct WarningFingerprint {
    /// Procedure that owns the warned assertion.
    pub proc: String,
    /// Full provenance tag (`deref@7`, `pre:free@4`, `fptr@3`, …).
    pub tag: String,
    /// Claim kind: the tag's prefix before `@` (`deref`, `pre:free`, …).
    pub kind: String,
    /// Abstraction level that first claimed the warning (`Conc`, `A1`,
    /// `A2`, or `Cons` for demonic-only warnings).
    pub level: String,
    /// MinFail confidence of the claiming report (0 for `Cons`).
    pub min_fail: usize,
}

/// The claim kind of a tag: everything before the `@` site suffix, or
/// the whole tag when it has none.
pub fn kind_of_tag(tag: &str) -> String {
    tag.split('@').next().unwrap_or(tag).to_string()
}

impl WarningFingerprint {
    /// A fingerprint for `tag` in `proc`, claimed at `level` with the
    /// given MinFail. The kind is derived from the tag.
    pub fn new(proc: &str, tag: &str, level: &str, min_fail: usize) -> WarningFingerprint {
        WarningFingerprint {
            proc: proc.to_string(),
            tag: tag.to_string(),
            kind: kind_of_tag(tag),
            level: level.to_string(),
            min_fail,
        }
    }

    /// One-line human rendering, used verbatim in diagnostics.
    pub fn describe(&self) -> String {
        format!(
            "proc={} kind={} tag={} level={} min_fail={}",
            self.proc, self.kind, self.tag, self.level, self.min_fail
        )
    }
}

/// A set of expected (or produced) warning fingerprints for one
/// scenario — the content of `expected.json`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Oracle {
    /// The fingerprints, sorted by [`Oracle::normalize`].
    pub warnings: Vec<WarningFingerprint>,
}

/// Escapes a string for embedding in a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Oracle {
    /// Sorts the fingerprints into the canonical (proc, tag, …) order.
    pub fn normalize(&mut self) {
        self.warnings.sort();
        self.warnings.dedup();
    }

    /// The canonical JSON rendering: schema header, one warning object
    /// per line, sorted. Byte-stable across runs, so differential legs
    /// can be compared with a string equality.
    pub fn to_canonical_json(&self) -> String {
        let mut s = String::from("{\n  \"schema\": 1,\n  \"warnings\": [");
        for (i, w) in self.warnings.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str(&format!(
                "    {{\"proc\": \"{}\", \"kind\": \"{}\", \"tag\": \"{}\", \"level\": \"{}\", \"min_fail\": {}}}",
                esc(&w.proc),
                esc(&w.kind),
                esc(&w.tag),
                esc(&w.level),
                w.min_fail
            ));
        }
        if !self.warnings.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }

    /// Parses an `expected.json` document. Strict: unknown schema,
    /// missing fields, or a non-ladder level are errors — a corrupted
    /// oracle must fail loudly, not compare as empty.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn parse(text: &str) -> Result<Oracle, String> {
        let v = json::parse(text)?;
        let schema = v
            .get("schema")
            .and_then(json::Value::int)
            .ok_or("missing integer field `schema`")?;
        if schema != 1 {
            return Err(format!("unsupported oracle schema {schema} (expected 1)"));
        }
        let warnings = v
            .get("warnings")
            .and_then(json::Value::arr)
            .ok_or("missing array field `warnings`")?;
        let mut out = Oracle::default();
        for (i, w) in warnings.iter().enumerate() {
            let field = |name: &str| -> Result<&str, String> {
                w.get(name)
                    .and_then(json::Value::str)
                    .ok_or(format!("warning {i}: missing string field `{name}`"))
            };
            let proc = field("proc")?;
            let tag = field("tag")?;
            let level = field("level")?;
            if !LEVELS.contains(&level) {
                return Err(format!(
                    "warning {i}: unknown level `{level}` (expected one of {LEVELS:?})"
                ));
            }
            let min_fail = w
                .get("min_fail")
                .and_then(json::Value::usize)
                .ok_or(format!("warning {i}: missing integer field `min_fail`"))?;
            out.warnings
                .push(WarningFingerprint::new(proc, tag, level, min_fail));
        }
        out.normalize();
        Ok(out)
    }

    /// Compares `self` (the blessed oracle) against `actual` (a run's
    /// fingerprints) and returns one precise diagnostic per discrepancy:
    /// missing warnings, unexpected warnings, and — for warnings present
    /// on both sides under the same (proc, tag) — level or MinFail
    /// mismatches called out as such.
    pub fn diff(&self, actual: &Oracle) -> Vec<String> {
        type Key = (String, String);
        let index = |o: &Oracle| -> BTreeMap<Key, Vec<WarningFingerprint>> {
            let mut m: BTreeMap<Key, Vec<WarningFingerprint>> = BTreeMap::new();
            for w in &o.warnings {
                m.entry((w.proc.clone(), w.tag.clone()))
                    .or_default()
                    .push(w.clone());
            }
            m
        };
        let expected = index(self);
        let got = index(actual);
        let mut out = Vec::new();
        for (key, exp) in &expected {
            match got.get(key) {
                None => {
                    for w in exp {
                        out.push(format!("missing expected warning: {}", w.describe()));
                    }
                }
                Some(act) if act != exp => {
                    let show = |ws: &[WarningFingerprint]| {
                        ws.iter()
                            .map(|w| format!("level={} min_fail={}", w.level, w.min_fail))
                            .collect::<Vec<_>>()
                            .join(", ")
                    };
                    out.push(format!(
                        "fingerprint mismatch for proc={} tag={}: expected {}, got {}",
                        key.0,
                        key.1,
                        show(exp),
                        show(act)
                    ));
                }
                Some(_) => {}
            }
        }
        for (key, act) in &got {
            if !expected.contains_key(key) {
                for w in act {
                    out.push(format!("unexpected warning: {}", w.describe()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(proc: &str, tag: &str, level: &str, min_fail: usize) -> WarningFingerprint {
        WarningFingerprint::new(proc, tag, level, min_fail)
    }

    #[test]
    fn kind_is_the_tag_prefix() {
        assert_eq!(kind_of_tag("pre:free@4"), "pre:free");
        assert_eq!(kind_of_tag("deref@12"), "deref");
        assert_eq!(kind_of_tag("fptr@3"), "fptr");
        assert_eq!(kind_of_tag("no-site"), "no-site");
    }

    #[test]
    fn canonical_json_roundtrips() {
        let mut o = Oracle {
            warnings: vec![
                fp("Foo", "pre:free@4", "Conc", 1),
                fp("Bar", "deref@9", "A1", 1),
            ],
        };
        o.normalize();
        let text = o.to_canonical_json();
        let back = Oracle::parse(&text).expect("parses");
        assert_eq!(back, o);
        assert_eq!(back.to_canonical_json(), text, "byte-stable");
    }

    #[test]
    fn empty_oracle_renders_and_parses() {
        let o = Oracle::default();
        let back = Oracle::parse(&o.to_canonical_json()).expect("parses");
        assert!(back.warnings.is_empty());
    }

    #[test]
    fn parse_rejects_bad_levels_and_schemas() {
        assert!(Oracle::parse("{\"schema\": 2, \"warnings\": []}").is_err());
        let bad = "{\"schema\": 1, \"warnings\": [{\"proc\": \"f\", \"tag\": \"t\", \
                   \"level\": \"A7\", \"min_fail\": 1}]}";
        assert!(Oracle::parse(bad).unwrap_err().contains("A7"));
    }

    #[test]
    fn diff_names_each_discrepancy_kind() {
        let expected = Oracle {
            warnings: vec![
                fp("Foo", "pre:free@4", "Conc", 1),
                fp("Foo", "pre:free@5", "A1", 2),
            ],
        };
        let actual = Oracle {
            warnings: vec![
                fp("Foo", "pre:free@5", "A2", 2),
                fp("Bar", "deref@1", "Cons", 0),
            ],
        };
        let d = expected.diff(&actual);
        assert!(
            d.iter()
                .any(|m| m.starts_with("missing expected warning") && m.contains("pre:free@4")),
            "{d:?}"
        );
        assert!(
            d.iter().any(|m| m.starts_with("fingerprint mismatch")
                && m.contains("expected level=A1")
                && m.contains("got level=A2")),
            "{d:?}"
        );
        assert!(
            d.iter()
                .any(|m| m.starts_with("unexpected warning") && m.contains("deref@1")),
            "{d:?}"
        );
        assert!(expected.diff(&expected).is_empty());
    }
}
