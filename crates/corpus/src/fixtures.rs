//! The paper's worked examples as shared fixtures.
//!
//! These constants embed the corpus scenario inputs under `corpus/`, so
//! the unit suites (`paper_examples`, `session_consistency`, the vcgen
//! oracle, the quickstart example) and the scenario harness analyze the
//! *same bytes* — a fixture edit cannot silently fork the two.

/// Figure 1 (double free via a missing `return`), written with calls to
/// the `free` contract — the paper's presentation. Six call sites
/// A1–A6; the real bug is A5 (`pre:free@4`).
pub const FIGURE1: &str = include_str!("../../../corpus/fig1_double_free/input.acs");

/// Figure 1 with the `free` contract inlined as assert/assign pairs —
/// the shape HAVOC-style lowering produces. Same six assertions.
pub const FIGURE1_INLINED: &str = include_str!("../../../corpus/fig1_inlined/input.acs");

/// Figure 2 (SAMATE CWE-476): `calloc` may return 0, checked on one
/// branch only. Conc is fooled by the cross-call correlation; A1
/// reveals the flaw as an abstract SIB.
pub const FIGURE2: &str = include_str!("../../../corpus/fig2_samate/input.acs");

/// The minimal unconditional double free: `WP = ∅`, the paper's special
/// SIB case (§3.1).
pub const DOUBLE_FREE: &str = include_str!("../../../corpus/double_free_min/input.acs");
