#![warn(missing_docs)]

//! Scenario corpus: expected-verdict fixtures with budgets, gated in CI.
//!
//! Each scenario is one directory `corpus/<name>/` holding
//!
//! * `input.c` **or** `input.acs` — the program, compiled through the
//!   HAVOC-style C front end or parsed as surface IR;
//! * `expected.json` — the blessed warning-fingerprint oracle
//!   ([`Oracle`]);
//! * `budget.json` — per-scenario ceilings on solver queries and wall
//!   clock ([`Budget`]).
//!
//! [`verify_scenario`] runs the full differential matrix
//! ([`runner::run_matrix`]) and folds oracle and budget violations into
//! per-scenario diagnostics; [`bless_scenario`] regenerates the oracle
//! (and a generous first budget) from the base leg — the
//! `UPDATE_GOLDEN` workflow. The `repro corpus` subcommand and the CI
//! `corpus` job are thin wrappers over these two calls.

pub mod fingerprint;
pub mod fixtures;
pub mod runner;

use std::path::{Path, PathBuf};

pub use fingerprint::{Oracle, WarningFingerprint};
pub use runner::{
    run_leg, run_leg_with_store, run_matrix, run_matrix_with_store, LegRun, MatrixReport, RunLeg,
    BASE_LEG, DIFF_LEGS,
};

use acspec_check::json;
use acspec_ir::Program;

/// Per-scenario resource ceilings (`budget.json`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum solver queries the base leg may issue. Queries are
    /// deterministic, so this gate is exact.
    pub max_solver_queries: u64,
    /// Maximum base-leg wall milliseconds. Blessed with a wide margin
    /// (wall clocks vary across machines); it catches order-of-magnitude
    /// regressions, not percent-level noise.
    pub max_wall_ms: u64,
}

impl Budget {
    /// Parses a `budget.json` document.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn parse(text: &str) -> Result<Budget, String> {
        let v = json::parse(text)?;
        let field = |name: &str| -> Result<u64, String> {
            v.get(name)
                .and_then(json::Value::int)
                .and_then(|i| u64::try_from(i).ok())
                .ok_or(format!("missing unsigned integer field `{name}`"))
        };
        Ok(Budget {
            max_solver_queries: field("max_solver_queries")?,
            max_wall_ms: field("max_wall_ms")?,
        })
    }

    /// The canonical `budget.json` rendering.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"max_solver_queries\": {},\n  \"max_wall_ms\": {}\n}}\n",
            self.max_solver_queries, self.max_wall_ms
        )
    }
}

/// How a scenario's input is turned into a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputKind {
    /// `input.c`, compiled via [`acspec_cfront::compile_c`].
    C,
    /// `input.acs`, parsed as surface IR and sort-checked.
    Surface,
}

impl InputKind {
    /// Display name (`C` / `IR`).
    pub fn name(self) -> &'static str {
        match self {
            InputKind::C => "C",
            InputKind::Surface => "IR",
        }
    }
}

/// One registered scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Directory name under the corpus root.
    pub name: String,
    /// The scenario directory.
    pub dir: PathBuf,
    /// Path to `input.c` or `input.acs`.
    pub input: PathBuf,
    /// Which front end loads the input.
    pub kind: InputKind,
}

impl Scenario {
    /// Loads the scenario registered at `dir`.
    ///
    /// # Errors
    ///
    /// Returns a message when the directory holds no input file (or,
    /// ambiguously, both kinds).
    pub fn load(dir: &Path) -> Result<Scenario, String> {
        let name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| format!("unnameable scenario directory {}", dir.display()))?
            .to_string();
        let c = dir.join("input.c");
        let acs = dir.join("input.acs");
        let (input, kind) = match (c.is_file(), acs.is_file()) {
            (true, false) => (c, InputKind::C),
            (false, true) => (acs, InputKind::Surface),
            (true, true) => {
                return Err(format!("scenario `{name}` has both input.c and input.acs"))
            }
            (false, false) => {
                return Err(format!(
                    "scenario `{name}` has neither input.c nor input.acs"
                ))
            }
        };
        Ok(Scenario {
            name,
            dir: dir.to_path_buf(),
            input,
            kind,
        })
    }

    /// `expected.json` path.
    pub fn expected_path(&self) -> PathBuf {
        self.dir.join("expected.json")
    }

    /// `budget.json` path.
    pub fn budget_path(&self) -> PathBuf {
        self.dir.join("budget.json")
    }

    /// Loads and front-ends the input program.
    ///
    /// # Errors
    ///
    /// Returns the front end's rendered error.
    pub fn program(&self) -> Result<Program, String> {
        let src = std::fs::read_to_string(&self.input)
            .map_err(|e| format!("cannot read {}: {e}", self.input.display()))?;
        match self.kind {
            InputKind::C => acspec_cfront::compile_c(&src).map_err(|e| e.to_string()),
            InputKind::Surface => {
                let prog = acspec_ir::parse::parse_program(&src).map_err(|e| e.to_string())?;
                acspec_ir::typecheck::check_program(&prog).map_err(|e| e.to_string())?;
                Ok(prog)
            }
        }
    }

    /// Loads the blessed oracle.
    ///
    /// # Errors
    ///
    /// Returns a message for a missing or malformed `expected.json`.
    pub fn load_expected(&self) -> Result<Oracle, String> {
        let path = self.expected_path();
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Oracle::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Loads the budget.
    ///
    /// # Errors
    ///
    /// Returns a message for a missing or malformed `budget.json`.
    pub fn load_budget(&self) -> Result<Budget, String> {
        let path = self.budget_path();
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Budget::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// The repository's `corpus/` directory, overridable with the
/// `ACSPEC_CORPUS_DIR` environment variable (used by the mutation
/// suite to point the harness at a perturbed copy).
pub fn default_corpus_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("ACSPEC_CORPUS_DIR") {
        return PathBuf::from(dir);
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../corpus")
}

/// Loads every scenario under `dir`, sorted by name (deterministic run
/// and report order).
///
/// # Errors
///
/// Returns a message when the directory cannot be read or a
/// subdirectory is not a well-formed scenario.
pub fn load_corpus(dir: &Path) -> Result<Vec<Scenario>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut dirs: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    dirs.iter().map(|d| Scenario::load(d)).collect()
}

/// The outcome of verifying one scenario.
#[derive(Debug)]
pub struct ScenarioVerdict {
    /// Scenario name.
    pub name: String,
    /// The base leg's fingerprints (empty when the program failed to
    /// load).
    pub produced: Oracle,
    /// The base leg's solver-query total.
    pub queries: u64,
    /// The base leg's wall milliseconds.
    pub wall_ms: u64,
    /// Every failure diagnostic; empty = the scenario passed.
    pub failures: Vec<String>,
    /// Store-corruption incidents — recovered (quarantine + recompute),
    /// so surfaced without failing the scenario.
    pub store_incidents: Vec<String>,
}

impl ScenarioVerdict {
    /// True when the scenario passed the full matrix, oracle, and
    /// budget.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs the scenario through the differential matrix and checks the
/// result against its blessed oracle and budget.
pub fn verify_scenario(sc: &Scenario) -> ScenarioVerdict {
    verify_scenario_with_store(sc, None)
}

/// [`verify_scenario`] with a persistent result store attached to the
/// base leg (see [`runner::run_matrix_with_store`]): on a warm store
/// the base leg replays stored reports with zero solver queries, and
/// the (always cold) differential legs pin warm/cold equivalence.
pub fn verify_scenario_with_store(
    sc: &Scenario,
    store: Option<&acspec_core::StoreSession>,
) -> ScenarioVerdict {
    let program = match sc.program() {
        Ok(p) => p,
        Err(e) => {
            return ScenarioVerdict {
                name: sc.name.clone(),
                produced: Oracle::default(),
                queries: 0,
                wall_ms: 0,
                failures: vec![format!("cannot load program: {e}")],
                store_incidents: Vec::new(),
            }
        }
    };
    let matrix = runner::run_matrix_with_store(&program, store);
    let mut failures = matrix.failures;
    match sc.load_expected() {
        Ok(expected) => failures.extend(expected.diff(&matrix.produced)),
        Err(e) => failures.push(e),
    }
    match sc.load_budget() {
        Ok(budget) => {
            if matrix.queries > budget.max_solver_queries {
                failures.push(format!(
                    "budget blown: {} solver queries > {} allowed",
                    matrix.queries, budget.max_solver_queries
                ));
            }
            if matrix.wall_ms > budget.max_wall_ms {
                failures.push(format!(
                    "budget blown: {} wall ms > {} allowed",
                    matrix.wall_ms, budget.max_wall_ms
                ));
            }
        }
        Err(e) => failures.push(e),
    }
    ScenarioVerdict {
        name: sc.name.clone(),
        produced: matrix.produced,
        queries: matrix.queries,
        wall_ms: matrix.wall_ms,
        failures,
        store_incidents: matrix.store_incidents,
    }
}

/// What [`bless_scenario`] did.
#[derive(Debug)]
pub struct BlessOutcome {
    /// Warnings in the blessed oracle.
    pub warnings: usize,
    /// Solver queries of the blessing run.
    pub queries: u64,
    /// True when a first `budget.json` was written (2× the measured
    /// queries, 20× the measured wall with a 10 s floor). An existing
    /// budget is never overwritten — tightening is a deliberate edit.
    pub wrote_budget: bool,
}

/// Reruns the base leg and writes the scenario's `expected.json` (and,
/// if missing, a first `budget.json`).
///
/// # Errors
///
/// Returns a message when the program fails to load, a procedure
/// faults, or a file cannot be written.
pub fn bless_scenario(sc: &Scenario) -> Result<BlessOutcome, String> {
    let program = sc.program()?;
    let run = runner::run_leg(&program, &runner::BASE_LEG);
    if let Some(incident) = run.incidents.first() {
        return Err(format!("refusing to bless a faulting run: {incident}"));
    }
    let expected = sc.expected_path();
    std::fs::write(&expected, run.oracle.to_canonical_json())
        .map_err(|e| format!("cannot write {}: {e}", expected.display()))?;
    let budget_path = sc.budget_path();
    let wrote_budget = if budget_path.is_file() {
        false
    } else {
        let budget = Budget {
            max_solver_queries: run.queries * 2,
            max_wall_ms: (run.wall_ms * 20).max(10_000),
        };
        std::fs::write(&budget_path, budget.to_json())
            .map_err(|e| format!("cannot write {}: {e}", budget_path.display()))?;
        true
    };
    Ok(BlessOutcome {
        warnings: run.oracle.warnings.len(),
        queries: run.queries,
        wrote_budget,
    })
}
