//! Executes a scenario program through the session layer and the
//! differential run matrix.
//!
//! One *leg* is one full `ProgramAnalysis` run under a named knob
//! setting. The **base** leg (cache on, one thread, no chaos harness,
//! certificates on) produces the fingerprints compared against the
//! blessed oracle and the query/wall numbers charged against the
//! budget. The differential legs re-run the scenario with the query
//! cache off, with four worker threads, and with the chaos harness
//! installed at rate 0 — all three must produce a byte-identical
//! canonical oracle, and the base leg's certificates must validate
//! under the independent checker. Every fixture thereby exercises the
//! cache, parallelism, fault-injection, and certification invariants at
//! once.

use std::collections::BTreeSet;
use std::time::Instant;

use acspec_check::check_document;
use acspec_core::{
    certs_json_from_fragments, AcspecOptions, ConfigName, ProcOutcome, ProgramAnalysis,
    StageTotals, StoreSession,
};
use acspec_ir::Program;
use acspec_vcgen::chaos::ChaosConfig;

use crate::fingerprint::{Oracle, WarningFingerprint};

/// The ladder every leg evaluates, most precise first (the paper's
/// evaluation ladder; `A0` is omitted as in Figures 6–9).
pub const CONFIGS: &[ConfigName] = &[ConfigName::Conc, ConfigName::A1, ConfigName::A2];

/// One knob setting of the differential matrix.
#[derive(Debug, Clone, Copy)]
pub struct RunLeg {
    /// Display name (`base`, `cache-off`, …).
    pub label: &'static str,
    /// Monotone query cache on/off.
    pub query_cache: bool,
    /// Worker threads.
    pub threads: usize,
    /// Install the chaos harness (seed 42) at `chaos_rate`. Rate 0 must
    /// be byte-identical to no harness at all; a positive rate is only
    /// oracle-preserving together with `portfolio`, whose fork races
    /// mask the injected solver faults.
    pub chaos: bool,
    /// Fault probability per solver query when `chaos` is set.
    pub chaos_rate: f64,
    /// Race diversified solver forks on hard / faulted queries.
    pub portfolio: bool,
    /// Cube-split ALL-SAT sessions over the top-k indicators (0 = off).
    pub cube_split: u32,
    /// Search-worker budget shared by procedure fan-out and in-query
    /// parallelism (0 = follow `threads`).
    pub search_threads: usize,
    /// Emit per-verdict certificates.
    pub certify: bool,
}

/// The oracle-defining leg: budgets and certificates are charged here.
pub const BASE_LEG: RunLeg = RunLeg {
    label: "base",
    query_cache: true,
    threads: 1,
    chaos: false,
    chaos_rate: 0.0,
    portfolio: false,
    cube_split: 0,
    search_threads: 0,
    certify: true,
};

/// The legs whose canonical oracle must match the base leg's bytes.
pub const DIFF_LEGS: &[RunLeg] = &[
    RunLeg {
        label: "cache-off",
        query_cache: false,
        threads: 1,
        chaos: false,
        chaos_rate: 0.0,
        portfolio: false,
        cube_split: 0,
        search_threads: 0,
        certify: false,
    },
    RunLeg {
        label: "threads-4",
        query_cache: true,
        threads: 4,
        chaos: false,
        chaos_rate: 0.0,
        portfolio: false,
        cube_split: 0,
        search_threads: 0,
        certify: false,
    },
    RunLeg {
        label: "chaos-0",
        query_cache: true,
        threads: 1,
        chaos: true,
        chaos_rate: 0.0,
        portfolio: false,
        cube_split: 0,
        search_threads: 0,
        certify: false,
    },
    // Parallel search: portfolio racing plus cube-split ALL-SAT at a
    // 4-worker search budget must replay the sequential plan exactly.
    RunLeg {
        label: "cube-2",
        query_cache: true,
        threads: 1,
        chaos: false,
        chaos_rate: 0.0,
        portfolio: true,
        cube_split: 2,
        search_threads: 4,
        certify: false,
    },
    // Parallel search under fire: the chaos harness injects real
    // fail-stop faults, but with portfolio racing on they poison the
    // primary attempt and are answered by the fork race instead, so the
    // oracle must still match the base leg byte for byte. Cube
    // splitting stays off here — cube workers draw their own fault
    // streams, and a cube-local fault has no redundant lane to hide
    // behind.
    RunLeg {
        label: "portfolio-chaos",
        query_cache: true,
        threads: 1,
        chaos: true,
        chaos_rate: 0.02,
        portfolio: true,
        cube_split: 0,
        search_threads: 4,
        certify: false,
    },
];

/// What one leg produced.
#[derive(Debug)]
pub struct LegRun {
    /// The run's warning fingerprints, normalized.
    pub oracle: Oracle,
    /// Total solver queries across shared and per-config stages.
    pub queries: u64,
    /// Wall-clock milliseconds of the whole leg.
    pub wall_ms: u64,
    /// Pre-rendered per-procedure certificate fragments (base leg
    /// only). Fragments rather than live `ProcCerts` so a warm store
    /// hit — which never rebuilds the certificate store — still yields
    /// a byte-identical document via
    /// [`acspec_core::certs_json_from_fragments`].
    pub cert_fragments: Vec<String>,
    /// Procedures that faulted (panic or error), rendered.
    pub incidents: Vec<String>,
    /// Store-corruption incidents (quarantined + recomputed), rendered.
    /// Informational: corruption is recovered, so these do not fail the
    /// matrix.
    pub store_incidents: Vec<String>,
}

/// Runs one leg of the matrix over `program`.
///
/// The analyzer knobs are set explicitly from the leg — in particular
/// the query cache, so an `ACSPEC_NO_QUERY_CACHE` environment (the CI
/// cache-off test matrix) cannot silently change what a leg measures.
pub fn run_leg(program: &Program, leg: &RunLeg) -> LegRun {
    run_leg_with_store(program, leg, None)
}

/// [`run_leg`] with a persistent result store attached: unchanged
/// procedures short-circuit to their stored reports (zero solver
/// queries), and corrupted entries surface as recoverable
/// [`LegRun::store_incidents`].
pub fn run_leg_with_store(program: &Program, leg: &RunLeg, store: Option<&StoreSession>) -> LegRun {
    let mut opts = AcspecOptions::default();
    opts.analyzer.conflict_budget = Some(400_000);
    opts.analyzer.query_cache = leg.query_cache;
    opts.analyzer.chaos = leg.chaos.then(|| ChaosConfig::new(42, leg.chaos_rate));
    opts.analyzer.portfolio = leg.portfolio;
    opts.analyzer.cube_split = leg.cube_split;
    let mut totals = StageTotals::default();
    let t0 = Instant::now();
    let outcomes = ProgramAnalysis::new(program)
        .options(opts)
        .configs(CONFIGS)
        .threads(leg.threads)
        .search_threads(leg.search_threads)
        .certify(leg.certify)
        .store(store)
        .run(&mut totals);
    let wall_ms = t0.elapsed().as_millis() as u64;

    let mut oracle = Oracle::default();
    let mut cert_fragments = Vec::new();
    let mut incidents = Vec::new();
    let mut store_incidents = Vec::new();
    for outcome in outcomes {
        match outcome {
            ProcOutcome::Analyzed(pa) => {
                // The triage ladder (§5): walking Conc → A1 → A2, the
                // first configuration reporting an assertion claims it
                // at its own MinFail; whatever only the conservative
                // baseline reports is demonic-only (`Cons`, MinFail 0).
                let mut claimed: BTreeSet<_> = BTreeSet::new();
                for (ci, config) in CONFIGS.iter().enumerate() {
                    let Some(r) = pa.reports.get(ci).and_then(|v| v.first()) else {
                        continue;
                    };
                    if r.timed_out() {
                        continue;
                    }
                    for w in &r.warnings {
                        if claimed.insert(w.assert) {
                            oracle.warnings.push(WarningFingerprint::new(
                                &pa.proc_name,
                                &w.tag,
                                &config.to_string(),
                                r.min_fail,
                            ));
                        }
                    }
                }
                for w in &pa.cons.warnings {
                    if claimed.insert(w.assert) {
                        oracle.warnings.push(WarningFingerprint::new(
                            &pa.proc_name,
                            &w.tag,
                            "Cons",
                            pa.cons.min_fail,
                        ));
                    }
                }
                for incident in &pa.incidents {
                    store_incidents.push(format!("procedure `{}`: {incident}", pa.proc_name));
                }
                if let Some(f) = pa.certs_fragment {
                    cert_fragments.push(f);
                }
            }
            ProcOutcome::Faulted(i) => {
                incidents.push(format!(
                    "procedure `{}` faulted: {}",
                    i.proc_name, i.message
                ));
            }
        }
    }
    oracle.normalize();
    let queries: u64 = totals.iter().map(|(_, t)| t.total_queries()).sum();
    LegRun {
        oracle,
        queries,
        wall_ms,
        cert_fragments,
        incidents,
        store_incidents,
    }
}

/// The full matrix result for one scenario program.
#[derive(Debug)]
pub struct MatrixReport {
    /// The base leg's fingerprints (what `bless` writes).
    pub produced: Oracle,
    /// The base leg's solver-query total (what the budget gates).
    pub queries: u64,
    /// The base leg's wall milliseconds.
    pub wall_ms: u64,
    /// Every matrix failure: incidents, differential divergences, and
    /// certificate-check errors. Empty = the matrix passed.
    pub failures: Vec<String>,
    /// Store-corruption incidents across all legs — recovered, so
    /// informational rather than failing.
    pub store_incidents: Vec<String>,
}

/// Runs the base leg plus every differential leg and the certificate
/// check. Oracle and budget comparison against the blessed files is the
/// caller's job ([`crate::verify_scenario`]); this reports only the
/// run-internal invariants.
pub fn run_matrix(program: &Program) -> MatrixReport {
    run_matrix_with_store(program, None)
}

/// [`run_matrix`] with a persistent result store attached to the *base*
/// leg only. The differential legs always run cold, so a warm base leg
/// (reports replayed from the store) is checked byte-for-byte against
/// three fresh computations — the warm/cold equivalence gate rides the
/// existing differential machinery for free.
pub fn run_matrix_with_store(program: &Program, store: Option<&StoreSession>) -> MatrixReport {
    let base = run_leg_with_store(program, &BASE_LEG, store);
    let mut failures = base.incidents.clone();
    let mut store_incidents = base.store_incidents.clone();
    let base_json = base.oracle.to_canonical_json();
    for leg in DIFF_LEGS {
        let run = run_leg(program, leg);
        failures.extend(run.incidents);
        store_incidents.extend(run.store_incidents);
        if run.oracle.to_canonical_json() != base_json {
            let mut msg = format!(
                "differential leg `{}` diverged from the base oracle",
                leg.label
            );
            for d in base.oracle.diff(&run.oracle) {
                msg.push_str("\n    ");
                msg.push_str(&d);
            }
            failures.push(msg);
        }
    }
    let summary = check_document(&certs_json_from_fragments(&base.cert_fragments));
    if !summary.ok() {
        failures.push(format!(
            "certificate check failed ({} error(s)): {}",
            summary.errors.len(),
            summary.errors.first().map_or("", String::as_str)
        ));
    }
    MatrixReport {
        produced: base.oracle,
        queries: base.queries,
        wall_ms: base.wall_ms,
        failures,
        store_incidents,
    }
}
