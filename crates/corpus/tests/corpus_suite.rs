//! The in-repo corpus gate: every registered scenario must pass the
//! full differential matrix against its blessed oracle and budget.
//!
//! This is the same check CI's `corpus` job runs through `repro corpus
//! run`; having it in `cargo test` means a fingerprint regression fails
//! the tier-1 suite too, with the per-scenario diagnostic in the
//! assertion message.

use acspec_corpus::{default_corpus_dir, load_corpus, verify_scenario, InputKind};

#[test]
fn corpus_registers_at_least_ten_scenarios() {
    let scenarios = load_corpus(&default_corpus_dir()).expect("corpus loads");
    assert!(
        scenarios.len() >= 10,
        "corpus shrank to {} scenario(s)",
        scenarios.len()
    );
    // Both front ends must stay covered.
    assert!(scenarios.iter().any(|s| s.kind == InputKind::C));
    assert!(scenarios.iter().any(|s| s.kind == InputKind::Surface));
}

#[test]
fn every_scenario_passes_the_differential_matrix() {
    let scenarios = load_corpus(&default_corpus_dir()).expect("corpus loads");
    let mut failures = Vec::new();
    for sc in &scenarios {
        let v = verify_scenario(sc);
        for f in v.failures {
            failures.push(format!("{}: {f}", sc.name));
        }
    }
    assert!(
        failures.is_empty(),
        "corpus failures:\n{}",
        failures.join("\n")
    );
}

/// The paper's flagship fingerprints, pinned by hand on top of the
/// blessed files: the corpus must keep telling the paper's story even
/// if someone re-blesses everything.
#[test]
fn flagship_fingerprints_match_the_paper() {
    let scenarios = load_corpus(&default_corpus_dir()).expect("corpus loads");
    let by_name = |name: &str| {
        scenarios
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("scenario `{name}` missing"))
            .load_expected()
            .expect("blessed oracle")
    };

    // Figure 1: six conservative warnings collapse to one Conc SIB at
    // the real double free (call site A5), MinFail 1.
    let fig1 = by_name("fig1_double_free");
    assert_eq!(fig1.warnings.len(), 6);
    let real: Vec<_> = fig1.warnings.iter().filter(|w| w.level == "Conc").collect();
    assert_eq!(real.len(), 1, "exactly one high-confidence warning");
    assert_eq!(real[0].tag, "pre:free@4");
    assert_eq!(real[0].kind, "pre:free");
    assert_eq!(real[0].min_fail, 1);
    assert!(fig1
        .warnings
        .iter()
        .filter(|w| w.tag != "pre:free@4")
        .all(|w| w.level == "Cons" && w.min_fail == 0));

    // Figure 2: Conc is fooled by the cross-call correlation; the flaw
    // surfaces as an abstract SIB under A1.
    let fig2 = by_name("fig2_samate");
    assert_eq!(fig2.warnings.len(), 1);
    assert_eq!(fig2.warnings[0].level, "A1");

    // The cfront growth scenarios keep their signature claim kinds.
    let fptr = by_name("function_pointer");
    assert!(fptr.warnings.iter().any(|w| w.kind == "fptr"));
    let aos = by_name("array_of_structs");
    assert!(aos.warnings.iter().all(|w| w.kind == "deref"));
}
