//! Mutation suite for the oracle gate: a perturbed `expected.json`
//! (dropped warning, flipped confidence, wrong abstraction level) must
//! fail verification with a diagnostic naming the exact discrepancy —
//! never pass silently or fail with a generic message.

use acspec_corpus::{default_corpus_dir, verify_scenario, Budget, Oracle, Scenario};

/// Copies a corpus scenario into a fresh temp directory so its oracle
/// can be perturbed without touching the repo, and returns the staged
/// scenario.
fn staged(name: &str, tag: &str) -> Scenario {
    let src = default_corpus_dir().join(name);
    let dst = std::env::temp_dir().join(format!("acspec-mutation-{name}-{tag}"));
    let _ = std::fs::remove_dir_all(&dst);
    std::fs::create_dir_all(&dst).expect("temp dir");
    for file in ["input.c", "input.acs", "expected.json", "budget.json"] {
        let from = src.join(file);
        if from.is_file() {
            std::fs::copy(&from, dst.join(file)).expect("copy fixture");
        }
    }
    Scenario::load(&dst).expect("staged scenario loads")
}

fn rewrite_oracle(sc: &Scenario, mutate: impl FnOnce(&mut Oracle)) {
    let mut oracle = sc.load_expected().expect("blessed oracle");
    mutate(&mut oracle);
    std::fs::write(sc.expected_path(), oracle.to_canonical_json()).expect("write oracle");
}

fn failures_of(sc: &Scenario) -> Vec<String> {
    let v = verify_scenario(sc);
    assert!(!v.ok(), "mutated scenario must fail");
    v.failures
}

#[test]
fn unmutated_staged_scenario_passes() {
    let sc = staged("fig1_double_free", "clean");
    let v = verify_scenario(&sc);
    assert!(v.ok(), "staging alone must not fail: {:?}", v.failures);
}

#[test]
fn dropped_warning_is_reported_as_unexpected() {
    let sc = staged("fig1_double_free", "dropped");
    rewrite_oracle(&sc, |o| {
        o.warnings.retain(|w| w.tag != "pre:free@4");
    });
    let failures = failures_of(&sc);
    assert!(
        failures.iter().any(|f| f.starts_with("unexpected warning:")
            && f.contains("proc=Foo")
            && f.contains("tag=pre:free@4")),
        "missing the unexpected-warning diagnostic: {failures:?}"
    );
}

#[test]
fn flipped_confidence_is_reported_as_mismatch() {
    let sc = staged("fig1_double_free", "minfail");
    rewrite_oracle(&sc, |o| {
        for w in &mut o.warnings {
            if w.tag == "pre:free@4" {
                w.min_fail = 3;
            }
        }
    });
    let failures = failures_of(&sc);
    assert!(
        failures
            .iter()
            .any(|f| f.starts_with("fingerprint mismatch")
                && f.contains("tag=pre:free@4")
                && f.contains("expected level=Conc min_fail=3")
                && f.contains("got level=Conc min_fail=1")),
        "missing the confidence diagnostic: {failures:?}"
    );
}

#[test]
fn wrong_abstraction_level_is_reported_as_mismatch() {
    let sc = staged("fig2_samate", "level");
    rewrite_oracle(&sc, |o| {
        for w in &mut o.warnings {
            w.level = "A2".to_string();
        }
    });
    let failures = failures_of(&sc);
    assert!(
        failures
            .iter()
            .any(|f| f.starts_with("fingerprint mismatch")
                && f.contains("expected level=A2")
                && f.contains("got level=A1")),
        "missing the level diagnostic: {failures:?}"
    );
}

#[test]
fn extra_expected_warning_is_reported_as_missing() {
    let sc = staged("fig2_samate", "extra");
    rewrite_oracle(&sc, |o| {
        o.warnings.push(acspec_corpus::WarningFingerprint::new(
            "Bar", "deref@99", "Conc", 1,
        ));
        o.normalize();
    });
    let failures = failures_of(&sc);
    assert!(
        failures
            .iter()
            .any(|f| f.starts_with("missing expected warning:") && f.contains("tag=deref@99")),
        "missing the missing-warning diagnostic: {failures:?}"
    );
}

#[test]
fn blown_query_budget_is_reported_with_both_numbers() {
    let sc = staged("fig2_samate", "budget");
    std::fs::write(
        sc.budget_path(),
        Budget {
            max_solver_queries: 1,
            max_wall_ms: 600_000,
        }
        .to_json(),
    )
    .expect("write budget");
    let failures = failures_of(&sc);
    assert!(
        failures
            .iter()
            .any(|f| f.contains("budget blown") && f.contains("> 1 allowed")),
        "missing the budget diagnostic: {failures:?}"
    );
}

#[test]
fn corrupted_oracle_fails_loudly_not_as_empty() {
    let sc = staged("fig2_samate", "corrupt");
    std::fs::write(sc.expected_path(), "{\"schema\": 1, \"warnings\": 7}").expect("write");
    let failures = failures_of(&sc);
    assert!(
        failures.iter().any(|f| f.contains("warnings")),
        "corrupt oracle must name the bad field: {failures:?}"
    );
}
