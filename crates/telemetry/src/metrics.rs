//! The metrics registry: named counters, float gauges, fixed-bucket
//! latency histograms, and the schema-versioned JSON snapshot.
//!
//! Everything is keyed by `BTreeMap`, so snapshots are byte-stable for
//! the same inputs — the same determinism discipline as the trace side.

use std::collections::BTreeMap;

use crate::json::{write_f64, write_str, Value};

/// Version stamped into every trace header and metrics snapshot. Bump
/// when a field is renamed, removed, or changes meaning; adding fields
/// is backward-compatible and does not require a bump.
pub const SCHEMA_VERSION: u32 = 1;

/// Default latency buckets (seconds) for query/stage histograms:
/// decades from 10 µs to 100 s, which brackets everything from a cached
/// SAT hit to a worst-case budget-bounded procedure.
pub const LATENCY_BUCKETS: [f64; 8] = [1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0];

/// A fixed-bucket histogram. `counts[i]` counts observations `<=
/// bounds[i]`; the final slot counts overflows.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    /// A histogram over the given upper bounds (must be sorted).
    pub fn new(bounds: &[f64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds sorted");
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
        self.sum += value;
        self.count += 1;
    }

    /// Total of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Per-bucket counts (last slot = overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Folds another histogram into this one. The bounds must match:
    /// bucket counts from different bucketings are not comparable, so a
    /// mismatch is reported to the caller instead of silently mixing
    /// (or aborting a whole run on the snapshot path).
    pub fn try_merge(&mut self, other: &Histogram) -> Result<(), BoundsMismatch> {
        if self.bounds != other.bounds {
            return Err(BoundsMismatch {
                expected: self.bounds.clone(),
                got: other.bounds.clone(),
            });
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
        Ok(())
    }

    fn write_json(&self, out: &mut String) {
        out.push_str("{\"bounds\":[");
        for (i, b) in self.bounds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_f64(out, *b);
        }
        out.push_str("],\"counts\":[");
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&c.to_string());
        }
        out.push_str("],\"sum\":");
        write_f64(out, self.sum);
        out.push_str(",\"count\":");
        out.push_str(&self.count.to_string());
        out.push('}');
    }
}

/// Two histograms with different bucket bounds cannot be folded
/// together; carries both bound vectors for the diagnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundsMismatch {
    /// The receiving histogram's bounds.
    pub expected: Vec<f64>,
    /// The incoming histogram's bounds.
    pub got: Vec<f64>,
}

impl std::fmt::Display for BoundsMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "histogram bounds mismatch: expected {:?}, got {:?}",
            self.expected, self.got
        )
    }
}

impl std::error::Error for BoundsMismatch {}

/// What produced a metrics snapshot: tool, subcommand, and the knobs
/// that shaped the run. Stored verbatim in the snapshot so a
/// `BENCH_*.json` file is self-describing.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// The binary (`acspec`, `repro`).
    pub tool: String,
    /// The subcommand or input path.
    pub command: String,
    /// Benchmark scale divisor, when applicable.
    pub scale: Option<u64>,
    /// Worker-thread setting, when applicable (`0` = all cores).
    pub threads: Option<u64>,
    /// Configurations analyzed, in order.
    pub configs: Vec<String>,
    /// Free-form `key=value` options (prune level, budgets, …).
    pub options: Vec<(String, String)>,
}

impl Manifest {
    pub(crate) fn write_json(&self, out: &mut String) {
        out.push_str("{\"tool\":");
        write_str(out, &self.tool);
        out.push_str(",\"command\":");
        write_str(out, &self.command);
        out.push_str(",\"scale\":");
        match self.scale {
            Some(s) => out.push_str(&s.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"threads\":");
        match self.threads {
            Some(t) => out.push_str(&t.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"configs\":[");
        for (i, c) in self.configs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(out, c);
        }
        out.push_str("],\"options\":{");
        for (i, (k, v)) in self.options.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(out, k);
            out.push(':');
            write_str(out, v);
        }
        out.push_str("}}");
    }
}

/// Named counters, gauges, and histograms.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to a counter (created at zero).
    pub fn inc(&mut self, name: &str, delta: u64) {
        if delta != 0 {
            *self.counters.entry(name.to_string()).or_insert(0) += delta;
        } else {
            self.counters.entry(name.to_string()).or_insert(0);
        }
    }

    /// Adds `delta` to a float gauge (created at zero). Used for
    /// accumulated seconds, where a counter's integer granularity would
    /// round everything away.
    pub fn gauge_add(&mut self, name: &str, delta: f64) {
        *self.gauges.entry(name.to_string()).or_insert(0.0) += delta;
    }

    /// Records an observation in a histogram with the default
    /// [`LATENCY_BUCKETS`].
    pub fn observe(&mut self, name: &str, value: f64) {
        self.observe_with(name, &LATENCY_BUCKETS, value);
    }

    /// Records an observation in a histogram with explicit buckets
    /// (only used on first creation; later calls reuse the existing
    /// bounds).
    pub fn observe_with(&mut self, name: &str, bounds: &[f64], value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// A counter's value (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's value (zero if never touched).
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// A histogram, if any observation was recorded under `name`.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Folds another registry into this one. A histogram whose bounds
    /// disagree with the resident one is quarantined under
    /// `<name>!bounds-mismatch` (and the `telemetry.merge.bounds_mismatch`
    /// counter bumped) rather than mixed or dropped: the snapshot path
    /// must never panic mid-run, and losing the data silently would make
    /// the mismatch undiagnosable.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0.0) += v;
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => {
                    if mine.try_merge(h).is_err() {
                        self.inc("telemetry.merge.bounds_mismatch", 1);
                        let quarantined = format!("{k}!bounds-mismatch");
                        match self.histograms.get_mut(&quarantined) {
                            // A second distinct bucketing fails again; it
                            // stays counted above but is not folded.
                            Some(q) => {
                                let _ = q.try_merge(h);
                            }
                            None => {
                                self.histograms.insert(quarantined, h.clone());
                            }
                        }
                    }
                }
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// The schema-versioned JSON snapshot: `{"schema":…,"manifest":…,
    /// "counters":…,"gauges":…,"histograms":…}`. Keys are sorted
    /// (`BTreeMap`), so equal registries produce equal bytes.
    pub fn snapshot_json(&self, manifest: Option<&Manifest>) -> String {
        let mut out = String::new();
        out.push_str("{\"schema\":");
        out.push_str(&SCHEMA_VERSION.to_string());
        out.push_str(",\"manifest\":");
        match manifest {
            Some(m) => m.write_json(&mut out),
            None => out.push_str("null"),
        }
        out.push_str(",\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(&mut out, k);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(&mut out, k);
            out.push(':');
            write_f64(&mut out, *v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(&mut out, k);
            out.push(':');
            h.write_json(&mut out);
        }
        out.push_str("}}");
        out
    }
}

/// Convenience: a `key=value` pair for [`Manifest::options`].
pub fn opt(key: &str, value: impl std::fmt::Display) -> (String, String) {
    (key.to_string(), value.to_string())
}

/// Unused-import guard: re-export the attribute value type for callers
/// building manifests and attrs together.
pub type AttrValue = Value;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[0.001, 0.01, 0.1]);
        h.observe(0.0005);
        h.observe(0.005);
        h.observe(0.05);
        h.observe(5.0);
        assert_eq!(h.counts(), &[1, 1, 1, 1]);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 5.0555).abs() < 1e-9);
    }

    #[test]
    fn registry_counts_and_snapshots_deterministically() {
        let mut r = MetricsRegistry::new();
        r.inc("solver.queries", 3);
        r.inc("solver.sat", 2);
        r.gauge_add("stage.total_seconds", 0.5);
        r.observe("solver.query_seconds", 0.002);
        let manifest = Manifest {
            tool: "repro".into(),
            command: "fig9".into(),
            scale: Some(8),
            threads: Some(0),
            configs: vec!["Conc".into(), "A1".into()],
            options: vec![opt("budget", 400_000)],
        };
        let a = r.snapshot_json(Some(&manifest));
        let b = r.snapshot_json(Some(&manifest));
        assert_eq!(a, b);
        assert!(a.starts_with("{\"schema\":1,"), "{a}");
        assert!(a.contains("\"solver.queries\":3"), "{a}");
        assert!(a.contains("\"stage.total_seconds\":0.5"), "{a}");
        assert!(a.contains("\"scale\":8"), "{a}");
        assert!(a.contains("\"budget\":\"400000\""), "{a}");
    }

    #[test]
    fn merge_folds_counters_gauges_histograms() {
        let mut a = MetricsRegistry::new();
        a.inc("q", 1);
        a.observe("lat", 0.5);
        let mut b = MetricsRegistry::new();
        b.inc("q", 2);
        b.gauge_add("s", 1.5);
        b.observe("lat", 0.5);
        a.merge(&b);
        assert_eq!(a.counter("q"), 3);
        assert!((a.gauge("s") - 1.5).abs() < 1e-12);
        assert_eq!(a.histogram("lat").unwrap().count(), 2);
    }

    #[test]
    fn histogram_merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(&[0.1, 1.0]);
        a.observe(0.05);
        let mut b = Histogram::new(&[0.5, 5.0]);
        b.observe(0.3);
        let err = a.try_merge(&b).expect_err("bounds differ");
        assert_eq!(err.expected, vec![0.1, 1.0]);
        assert_eq!(err.got, vec![0.5, 5.0]);
        // The receiver is untouched by the failed merge.
        assert_eq!(a.count(), 1);
        assert!(err.to_string().contains("bounds mismatch"));
    }

    #[test]
    fn registry_merge_quarantines_mismatched_histograms() {
        let mut a = MetricsRegistry::new();
        a.observe_with("lat", &[0.1, 1.0], 0.05);
        let mut b = MetricsRegistry::new();
        b.observe_with("lat", &[0.5, 5.0], 0.3);
        a.merge(&b);
        // Original data intact, incoming data quarantined, incident counted.
        assert_eq!(a.histogram("lat").unwrap().count(), 1);
        assert_eq!(a.histogram("lat!bounds-mismatch").unwrap().count(), 1);
        assert_eq!(a.counter("telemetry.merge.bounds_mismatch"), 1);
        // A second mismatched merge with the same bucketing folds into
        // the quarantine slot.
        a.merge(&b);
        assert_eq!(a.histogram("lat!bounds-mismatch").unwrap().count(), 2);
        assert_eq!(a.counter("telemetry.merge.bounds_mismatch"), 2);
    }
}
