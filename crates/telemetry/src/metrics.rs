//! The metrics registry: named counters, float gauges, fixed-bucket
//! latency histograms, and the schema-versioned JSON snapshot.
//!
//! Everything is keyed by `BTreeMap`, so snapshots are byte-stable for
//! the same inputs — the same determinism discipline as the trace side.

use std::collections::BTreeMap;

use crate::json::{write_f64, write_str, Value};

/// Version stamped into every trace header and metrics snapshot. Bump
/// when a field is renamed, removed, or changes meaning; adding fields
/// is backward-compatible and does not require a bump.
pub const SCHEMA_VERSION: u32 = 1;

/// Default latency buckets (seconds) for query/stage histograms:
/// decades from 10 µs to 100 s, which brackets everything from a cached
/// SAT hit to a worst-case budget-bounded procedure.
pub const LATENCY_BUCKETS: [f64; 8] = [1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0];

/// A fixed-bucket histogram. `counts[i]` counts observations `<=
/// bounds[i]`; the final slot counts overflows.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    /// A histogram over the given upper bounds (must be sorted).
    pub fn new(bounds: &[f64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds sorted");
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Builds a histogram from precomputed bucket counts. `counts`
    /// must have one slot per bound plus a trailing overflow slot; the
    /// total count is their sum. Used to fold fixed-array summaries
    /// (e.g. the CDCL LBD histograms) into the registry without
    /// replaying individual observations.
    pub fn from_parts(bounds: &[f64], counts: &[u64], sum: f64) -> Histogram {
        debug_assert_eq!(counts.len(), bounds.len() + 1, "one count per bucket");
        Histogram {
            bounds: bounds.to_vec(),
            counts: counts.to_vec(),
            sum,
            count: counts.iter().sum(),
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
        self.sum += value;
        self.count += 1;
    }

    /// Total of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Per-bucket counts (last slot = overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`) estimated by linear
    /// interpolation within the containing bucket, assuming
    /// non-negative observations (the first bucket interpolates from
    /// zero). The overflow bucket has no upper edge, so quantiles
    /// landing there clamp to the largest bound. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let top = self.bounds.last().copied().unwrap_or(0.0);
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c as f64;
            if rank <= next {
                let Some(&hi) = self.bounds.get(i) else {
                    return Some(top); // overflow bucket: clamp
                };
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let frac = ((rank - cum) / c as f64).clamp(0.0, 1.0);
                return Some(lo + frac * (hi - lo));
            }
            cum = next;
        }
        Some(top)
    }

    /// Folds another histogram into this one. The bounds must match:
    /// bucket counts from different bucketings are not comparable, so a
    /// mismatch is reported to the caller instead of silently mixing
    /// (or aborting a whole run on the snapshot path).
    pub fn try_merge(&mut self, other: &Histogram) -> Result<(), BoundsMismatch> {
        if self.bounds != other.bounds {
            return Err(BoundsMismatch {
                expected: self.bounds.clone(),
                got: other.bounds.clone(),
            });
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
        Ok(())
    }

    fn write_json(&self, out: &mut String) {
        out.push_str("{\"bounds\":[");
        for (i, b) in self.bounds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_f64(out, *b);
        }
        out.push_str("],\"counts\":[");
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&c.to_string());
        }
        out.push_str("],\"sum\":");
        write_f64(out, self.sum);
        out.push_str(",\"count\":");
        out.push_str(&self.count.to_string());
        out.push('}');
    }
}

/// Two histograms with different bucket bounds cannot be folded
/// together; carries both bound vectors for the diagnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundsMismatch {
    /// The receiving histogram's bounds.
    pub expected: Vec<f64>,
    /// The incoming histogram's bounds.
    pub got: Vec<f64>,
}

impl std::fmt::Display for BoundsMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "histogram bounds mismatch: expected {:?}, got {:?}",
            self.expected, self.got
        )
    }
}

impl std::error::Error for BoundsMismatch {}

/// What produced a metrics snapshot: tool, subcommand, and the knobs
/// that shaped the run. Stored verbatim in the snapshot so a
/// `BENCH_*.json` file is self-describing.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// The binary (`acspec`, `repro`).
    pub tool: String,
    /// The subcommand or input path.
    pub command: String,
    /// Benchmark scale divisor, when applicable.
    pub scale: Option<u64>,
    /// Worker-thread setting, when applicable (`0` = all cores).
    pub threads: Option<u64>,
    /// Configurations analyzed, in order.
    pub configs: Vec<String>,
    /// Free-form `key=value` options (prune level, budgets, …).
    pub options: Vec<(String, String)>,
}

impl Manifest {
    pub(crate) fn write_json(&self, out: &mut String) {
        out.push_str("{\"tool\":");
        write_str(out, &self.tool);
        out.push_str(",\"command\":");
        write_str(out, &self.command);
        out.push_str(",\"scale\":");
        match self.scale {
            Some(s) => out.push_str(&s.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"threads\":");
        match self.threads {
            Some(t) => out.push_str(&t.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"configs\":[");
        for (i, c) in self.configs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(out, c);
        }
        out.push_str("],\"options\":{");
        for (i, (k, v)) in self.options.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(out, k);
            out.push(':');
            write_str(out, v);
        }
        out.push_str("}}");
    }
}

/// Named counters, gauges, and histograms.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to a counter (created at zero).
    pub fn inc(&mut self, name: &str, delta: u64) {
        if delta != 0 {
            *self.counters.entry(name.to_string()).or_insert(0) += delta;
        } else {
            self.counters.entry(name.to_string()).or_insert(0);
        }
    }

    /// Adds `delta` to a float gauge (created at zero). Used for
    /// accumulated seconds, where a counter's integer granularity would
    /// round everything away.
    pub fn gauge_add(&mut self, name: &str, delta: f64) {
        *self.gauges.entry(name.to_string()).or_insert(0.0) += delta;
    }

    /// Sets a float gauge to an absolute value (last write wins). Used
    /// for point-in-time readings such as the process gauges, where
    /// summing across workers would be meaningless.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Raises a float gauge to `value` if larger (created at `value`).
    pub fn gauge_max(&mut self, name: &str, value: f64) {
        let g = self.gauges.entry(name.to_string()).or_insert(value);
        if value > *g {
            *g = value;
        }
    }

    /// Stamps the process-level gauges `process.wall_s` (caller-measured
    /// wall time) and `process.maxrss_kb` (peak RSS via [`max_rss_kb`])
    /// so `--metrics-out` snapshots and the `repro bench` capture agree
    /// on one source of truth.
    pub fn record_process_gauges(&mut self, wall_s: f64) {
        self.gauge_set("process.wall_s", wall_s);
        self.gauge_set("process.maxrss_kb", max_rss_kb() as f64);
    }

    /// Records an observation in a histogram with the default
    /// [`LATENCY_BUCKETS`].
    pub fn observe(&mut self, name: &str, value: f64) {
        self.observe_with(name, &LATENCY_BUCKETS, value);
    }

    /// Records an observation in a histogram with explicit buckets
    /// (only used on first creation; later calls reuse the existing
    /// bounds).
    pub fn observe_with(&mut self, name: &str, bounds: &[f64], value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// A counter's value (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's value (zero if never touched).
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// A histogram, if any observation was recorded under `name`.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Folds another registry into this one. A histogram whose bounds
    /// disagree with the resident one is quarantined under
    /// `<name>!bounds-mismatch` (and the `telemetry.merge.bounds_mismatch`
    /// counter bumped) rather than mixed or dropped: the snapshot path
    /// must never panic mid-run, and losing the data silently would make
    /// the mismatch undiagnosable.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0.0) += v;
        }
        for (k, h) in &other.histograms {
            self.merge_histogram(k, h);
        }
    }

    /// Folds one histogram into the registry under `name`, with the
    /// same bounds-mismatch quarantine discipline as
    /// [`MetricsRegistry::merge`].
    pub fn merge_histogram(&mut self, name: &str, h: &Histogram) {
        match self.histograms.get_mut(name) {
            Some(mine) => {
                if mine.try_merge(h).is_err() {
                    self.inc("telemetry.merge.bounds_mismatch", 1);
                    let quarantined = format!("{name}!bounds-mismatch");
                    match self.histograms.get_mut(&quarantined) {
                        // A second distinct bucketing fails again; it
                        // stays counted above but is not folded.
                        Some(q) => {
                            let _ = q.try_merge(h);
                        }
                        None => {
                            self.histograms.insert(quarantined, h.clone());
                        }
                    }
                }
            }
            None => {
                self.histograms.insert(name.to_string(), h.clone());
            }
        }
    }

    /// The schema-versioned JSON snapshot: `{"schema":…,"manifest":…,
    /// "counters":…,"gauges":…,"histograms":…}`. Keys are sorted
    /// (`BTreeMap`), so equal registries produce equal bytes.
    pub fn snapshot_json(&self, manifest: Option<&Manifest>) -> String {
        let mut out = String::new();
        out.push_str("{\"schema\":");
        out.push_str(&SCHEMA_VERSION.to_string());
        out.push_str(",\"manifest\":");
        match manifest {
            Some(m) => m.write_json(&mut out),
            None => out.push_str("null"),
        }
        out.push_str(",\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(&mut out, k);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(&mut out, k);
            out.push(':');
            write_f64(&mut out, *v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_str(&mut out, k);
            out.push(':');
            h.write_json(&mut out);
        }
        out.push_str("}}");
        out
    }
}

/// Convenience: a `key=value` pair for [`Manifest::options`].
pub fn opt(key: &str, value: impl std::fmt::Display) -> (String, String) {
    (key.to_string(), value.to_string())
}

/// Peak resident set size of this process in kB (`VmHWM` from
/// `/proc/self/status`), or 0 where the procfs field is unavailable.
pub fn max_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
        }
    }
    0
}

/// Unused-import guard: re-export the attribute value type for callers
/// building manifests and attrs together.
pub type AttrValue = Value;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[0.001, 0.01, 0.1]);
        h.observe(0.0005);
        h.observe(0.005);
        h.observe(0.05);
        h.observe(5.0);
        assert_eq!(h.counts(), &[1, 1, 1, 1]);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 5.0555).abs() < 1e-9);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantile");
        for v in [0.5, 0.5, 1.5, 1.5] {
            h.observe(v);
        }
        // q = 0 sits at the lower edge of the first populated bucket.
        assert!((h.quantile(0.0).unwrap() - 0.0).abs() < 1e-12);
        // Half the mass fills bucket [0, 1]: q = 0.5 lands exactly on
        // the shared bucket edge.
        assert!((h.quantile(0.5).unwrap() - 1.0).abs() < 1e-12);
        // q = 0.75 is halfway through bucket (1, 2].
        assert!((h.quantile(0.75).unwrap() - 1.5).abs() < 1e-12);
        // q = 1 reaches the upper edge of the last populated bucket.
        assert!((h.quantile(1.0).unwrap() - 2.0).abs() < 1e-12);
        // Out-of-range q clamps rather than panicking.
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
    }

    #[test]
    fn quantile_clamps_in_the_overflow_bucket() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.observe(0.5);
        h.observe(100.0); // overflow: no upper edge
        assert!((h.quantile(1.0).unwrap() - 2.0).abs() < 1e-12);
        // Rank 0.5 of the single observation in bucket [0, 1]
        // interpolates to the bucket midpoint.
        assert!((h.quantile(0.25).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gauge_set_and_max_semantics() {
        let mut r = MetricsRegistry::new();
        r.gauge_set("g", 2.0);
        r.gauge_set("g", 1.0);
        assert!((r.gauge("g") - 1.0).abs() < 1e-12, "last write wins");
        r.gauge_max("m", 3.0);
        r.gauge_max("m", 2.0);
        assert!((r.gauge("m") - 3.0).abs() < 1e-12, "max retained");
    }

    #[test]
    fn process_gauges_are_stamped() {
        let mut r = MetricsRegistry::new();
        r.record_process_gauges(1.25);
        assert!((r.gauge("process.wall_s") - 1.25).abs() < 1e-12);
        // VmHWM is Linux-specific; on Linux any live process has a
        // nonzero high-water mark, elsewhere the gauge reads 0.
        let rss = r.gauge("process.maxrss_kb");
        if cfg!(target_os = "linux") {
            assert!(rss > 0.0, "VmHWM should be readable: {rss}");
        }
        let snap = r.snapshot_json(None);
        assert!(snap.contains("\"process.wall_s\":1.25"), "{snap}");
        assert!(snap.contains("\"process.maxrss_kb\":"), "{snap}");
    }

    #[test]
    fn from_parts_round_trips_counts() {
        let h = Histogram::from_parts(&[1.0, 2.0], &[3, 1, 2], 9.0);
        assert_eq!(h.count(), 6);
        assert_eq!(h.counts(), &[3, 1, 2]);
        assert!((h.sum() - 9.0).abs() < 1e-12);
        let mut sink = Histogram::new(&[1.0, 2.0]);
        sink.try_merge(&h).expect("same bounds");
        assert_eq!(sink.count(), 6);
    }

    use proptest::prelude::*;

    proptest! {
        /// Oracle check: against a sorted vector of the raw
        /// observations, the interpolated histogram quantile must land
        /// within the bucket that contains the true (nearest-rank)
        /// quantile.
        #[test]
        fn quantile_tracks_sorted_vec_oracle(
            raw in proptest::collection::vec(0u64..2000, 1..200),
            q_pct in 0u64..101,
        ) {
            let bounds = [0.5, 1.0, 2.0, 4.0, 8.0, 16.0];
            let values: Vec<f64> = raw.iter().map(|&v| v as f64 / 100.0).collect();
            let q = q_pct as f64 / 100.0;
            let mut h = Histogram::new(&bounds);
            let mut sorted = values.clone();
            for &v in &values {
                h.observe(v);
            }
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let n = sorted.len();
            let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
            let oracle = sorted[idx];
            let est = h.quantile(q).unwrap();
            match bounds.iter().position(|&b| oracle <= b) {
                Some(i) => {
                    let lo = if i == 0 { 0.0 } else { bounds[i - 1] };
                    prop_assert!(
                        est >= lo - 1e-9 && est <= bounds[i] + 1e-9,
                        "estimate {} outside oracle bucket [{}, {}] (oracle {}, q {})",
                        est, lo, bounds[i], oracle, q
                    );
                }
                None => prop_assert!(
                    (est - bounds[bounds.len() - 1]).abs() < 1e-9,
                    "overflow quantile must clamp to the top bound, got {}",
                    est
                ),
            }
        }
    }

    #[test]
    fn registry_counts_and_snapshots_deterministically() {
        let mut r = MetricsRegistry::new();
        r.inc("solver.queries", 3);
        r.inc("solver.sat", 2);
        r.gauge_add("stage.total_seconds", 0.5);
        r.observe("solver.query_seconds", 0.002);
        let manifest = Manifest {
            tool: "repro".into(),
            command: "fig9".into(),
            scale: Some(8),
            threads: Some(0),
            configs: vec!["Conc".into(), "A1".into()],
            options: vec![opt("budget", 400_000)],
        };
        let a = r.snapshot_json(Some(&manifest));
        let b = r.snapshot_json(Some(&manifest));
        assert_eq!(a, b);
        assert!(a.starts_with("{\"schema\":1,"), "{a}");
        assert!(a.contains("\"solver.queries\":3"), "{a}");
        assert!(a.contains("\"stage.total_seconds\":0.5"), "{a}");
        assert!(a.contains("\"scale\":8"), "{a}");
        assert!(a.contains("\"budget\":\"400000\""), "{a}");
    }

    #[test]
    fn merge_folds_counters_gauges_histograms() {
        let mut a = MetricsRegistry::new();
        a.inc("q", 1);
        a.observe("lat", 0.5);
        let mut b = MetricsRegistry::new();
        b.inc("q", 2);
        b.gauge_add("s", 1.5);
        b.observe("lat", 0.5);
        a.merge(&b);
        assert_eq!(a.counter("q"), 3);
        assert!((a.gauge("s") - 1.5).abs() < 1e-12);
        assert_eq!(a.histogram("lat").unwrap().count(), 2);
    }

    #[test]
    fn histogram_merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(&[0.1, 1.0]);
        a.observe(0.05);
        let mut b = Histogram::new(&[0.5, 5.0]);
        b.observe(0.3);
        let err = a.try_merge(&b).expect_err("bounds differ");
        assert_eq!(err.expected, vec![0.1, 1.0]);
        assert_eq!(err.got, vec![0.5, 5.0]);
        // The receiver is untouched by the failed merge.
        assert_eq!(a.count(), 1);
        assert!(err.to_string().contains("bounds mismatch"));
    }

    #[test]
    fn registry_merge_quarantines_mismatched_histograms() {
        let mut a = MetricsRegistry::new();
        a.observe_with("lat", &[0.1, 1.0], 0.05);
        let mut b = MetricsRegistry::new();
        b.observe_with("lat", &[0.5, 5.0], 0.3);
        a.merge(&b);
        // Original data intact, incoming data quarantined, incident counted.
        assert_eq!(a.histogram("lat").unwrap().count(), 1);
        assert_eq!(a.histogram("lat!bounds-mismatch").unwrap().count(), 1);
        assert_eq!(a.counter("telemetry.merge.bounds_mismatch"), 1);
        // A second mismatched merge with the same bucketing folds into
        // the quarantine slot.
        a.merge(&b);
        assert_eq!(a.histogram("lat!bounds-mismatch").unwrap().count(), 2);
        assert_eq!(a.counter("telemetry.merge.bounds_mismatch"), 2);
    }
}
