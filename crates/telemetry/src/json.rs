//! Minimal JSON rendering (no dependencies).
//!
//! The telemetry sinks emit a small, fixed vocabulary of JSON shapes
//! (span lines, metric snapshots), so a hand-rolled writer over
//! [`std::fmt::Write`] is all that is needed — keeping this crate
//! dependency-free so every other crate can afford to link it.

use std::fmt::Write;

/// An attribute value attached to spans, events, and manifests.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string (JSON-escaped on output).
    Str(String),
    /// An unsigned counter.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point quantity (seconds, ratios).
    F64(f64),
    /// A boolean flag.
    Bool(bool),
}

impl Value {
    /// True for the numeric variants (`U64`/`I64`/`F64`) — the values a
    /// redacted render zeroes out.
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::U64(_) | Value::I64(_) | Value::F64(_))
    }

    /// The same value with numbers replaced by zero (redacted render).
    pub fn zeroed(&self) -> Value {
        match self {
            Value::U64(_) => Value::U64(0),
            Value::I64(_) => Value::I64(0),
            Value::F64(_) => Value::F64(0.0),
            other => other.clone(),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a float. `f64`'s `Display` never produces scientific
/// notation, `NaN`, or `inf` for the finite values telemetry records,
/// so the output is always valid JSON; non-finite values are clamped to
/// `0` defensively.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push('0');
    }
}

/// Appends a [`Value`].
pub fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Str(s) => write_str(out, s),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(f) => write_f64(out, *f),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
    }
}

/// Appends `{"k":v,...}` for an attribute list, preserving order.
pub fn write_attrs(out: &mut String, attrs: &[(&'static str, Value)]) {
    out.push('{');
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_str(out, k);
        out.push(':');
        write_value(out, v);
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_characters_and_quotes() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn floats_render_as_plain_decimals() {
        let mut out = String::new();
        write_f64(&mut out, 0.000123);
        assert_eq!(out, "0.000123");
        let mut out = String::new();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "0");
    }

    #[test]
    fn attrs_preserve_order() {
        let mut out = String::new();
        write_attrs(
            &mut out,
            &[("b", Value::U64(2)), ("a", Value::Str("x".into()))],
        );
        assert_eq!(out, "{\"b\":2,\"a\":\"x\"}");
    }
}
