//! Minimal JSON rendering (no dependencies).
//!
//! The telemetry sinks emit a small, fixed vocabulary of JSON shapes
//! (span lines, metric snapshots), so a hand-rolled writer over
//! [`std::fmt::Write`] is all that is needed — keeping this crate
//! dependency-free so every other crate can afford to link it.

use std::fmt::Write;

/// An attribute value attached to spans, events, and manifests.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string (JSON-escaped on output).
    Str(String),
    /// An unsigned counter.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point quantity (seconds, ratios).
    F64(f64),
    /// A boolean flag.
    Bool(bool),
}

impl Value {
    /// True for the numeric variants (`U64`/`I64`/`F64`) — the values a
    /// redacted render zeroes out.
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::U64(_) | Value::I64(_) | Value::F64(_))
    }

    /// The same value with numbers replaced by zero (redacted render).
    pub fn zeroed(&self) -> Value {
        match self {
            Value::U64(_) => Value::U64(0),
            Value::I64(_) => Value::I64(0),
            Value::F64(_) => Value::F64(0.0),
            other => other.clone(),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a float. `f64`'s `Display` never produces scientific
/// notation, `NaN`, or `inf` for the finite values telemetry records,
/// so the output is always valid JSON; non-finite values are clamped to
/// `0` defensively.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push('0');
    }
}

/// Appends a [`Value`].
pub fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Str(s) => write_str(out, s),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(f) => write_f64(out, *f),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
    }
}

/// Appends `{"k":v,...}` for an attribute list, preserving order.
pub fn write_attrs(out: &mut String, attrs: &[(&'static str, Value)]) {
    out.push('{');
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_str(out, k);
        out.push(':');
        write_value(out, v);
    }
    out.push('}');
}

/// A parsed JSON value (see [`parse`]). The dual of the writer above:
/// trace analysis (`repro trace-diff`) must read the JSONL sinks back
/// without pulling a JSON dependency into the binary, so this crate
/// carries the matching reader.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`, which covers every value the
    /// writer emits).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The value of an object field (first occurrence), if this is an
    /// object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A JSON parse error with the byte offset where parsing failed.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (trailing whitespace allowed, anything
/// else after the value is an error).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        b: input.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.i,
            message,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.i) {
            if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, c: u8, message: &'static str) -> Result<(), JsonError> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.b.get(self.i) {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &'static str, v: Json) -> Result<Json, JsonError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err("malformed literal"))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.i;
        while let Some(&c) = self.b.get(self.i) {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.i += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("malformed \\u escape"))?;
                            // Unpaired surrogates are replaced; the
                            // writer never emits surrogate escapes.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Advance one whole UTF-8 scalar.
                    let rest = &self.b[self.i..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected array")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected object")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            fields.push((key, v));
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_characters_and_quotes() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn floats_render_as_plain_decimals() {
        let mut out = String::new();
        write_f64(&mut out, 0.000123);
        assert_eq!(out, "0.000123");
        let mut out = String::new();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "0");
    }

    #[test]
    fn attrs_preserve_order() {
        let mut out = String::new();
        write_attrs(
            &mut out,
            &[("b", Value::U64(2)), ("a", Value::Str("x".into()))],
        );
        assert_eq!(out, "{\"b\":2,\"a\":\"x\"}");
    }

    #[test]
    fn parser_round_trips_writer_output() {
        let mut out = String::new();
        write_attrs(
            &mut out,
            &[
                ("s", Value::Str("a\"b\\c\nd\u{1}".into())),
                ("n", Value::U64(42)),
                ("f", Value::F64(0.125)),
                ("neg", Value::I64(-7)),
                ("flag", Value::Bool(true)),
            ],
        );
        let v = parse(&out).expect("writer output parses");
        assert_eq!(v.get("s").and_then(Json::as_str), Some("a\"b\\c\nd\u{1}"));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(42));
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(0.125));
        assert_eq!(v.get("neg").and_then(Json::as_f64), Some(-7.0));
        assert_eq!(v.get("flag"), Some(&Json::Bool(true)));
    }

    #[test]
    fn parser_handles_nesting_and_rejects_garbage() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":{"d":[]}}"#).expect("nested");
        let arr = v.get("a").and_then(Json::as_arr).expect("array");
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")),
            Some(&Json::Arr(vec![]))
        );

        for bad in ["{", "[1,]", "{\"a\":}", "tru", "1 2", "\"x", "{\"a\":1,}"] {
            assert!(parse(bad).is_err(), "accepted malformed input: {bad}");
        }
        let err = parse("[1, @]").expect_err("bad token");
        assert!(err.to_string().contains("byte 4"), "{err}");
    }
}
