//! Chrome/Perfetto `trace_events` export.
//!
//! Renders an assembled [`Trace`] in the JSON format accepted by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): the span
//! tree becomes nested complete (`"ph":"X"`) slices, solver-query
//! events become instant (`"ph":"i"`) markers, and cumulative solver
//! conflicts are emitted as a counter (`"ph":"C"`) track.
//!
//! Spans carry only *durations* (the deterministic replay-merge never
//! records start timestamps), so start times are synthesized with a
//! preorder logical clock: a span starts where its parent started plus
//! the durations of its earlier siblings. Within one config the stage
//! durations sum to the config duration (and likewise up the tree), so
//! the synthesized slices nest exactly. No `SystemTime` is consulted:
//! two runs of the same workload produce the same event list modulo the
//! measured durations themselves, and a [`TraceRender`] with
//! `zero_times` produces byte-identical output across runs.

use crate::json::{write_attrs, write_str, Value};
use crate::metrics::{Manifest, SCHEMA_VERSION};
use crate::trace::{Trace, TraceRender};

/// The attribute used as a span's display name, per span kind.
fn name_attr(kind: &str) -> Option<&'static str> {
    match kind {
        "procedure" => Some("proc"),
        "config" => Some("label"),
        "stage" => Some("stage"),
        _ => None,
    }
}

fn micros(seconds: f64) -> u64 {
    (seconds * 1e6).round().max(0.0) as u64
}

impl Trace {
    /// Renders the trace as a Chrome/Perfetto `trace_events` JSON
    /// document (see the module docs).
    pub fn to_perfetto(&self, manifest: Option<&Manifest>) -> String {
        self.to_perfetto_with(manifest, TraceRender::default())
    }

    /// [`Trace::to_perfetto`] with redaction options: `zero_times`
    /// zeroes every `ts`/`dur`, `redact` additionally zeroes numeric
    /// argument values (golden-file shape tests).
    pub fn to_perfetto_with(&self, manifest: Option<&Manifest>, opts: TraceRender) -> String {
        let n = self.spans.len();
        // Preorder logical clock: parents precede children in id order
        // (an assemble() invariant), so one forward pass suffices.
        let mut start_us = vec![0u64; n];
        let mut child_cursor_us = vec![0u64; n];
        for (i, s) in self.spans.iter().enumerate().skip(1) {
            let p = s.parent.unwrap_or(0) as usize;
            start_us[i] = start_us[p] + child_cursor_us[p];
            child_cursor_us[p] += micros(s.seconds);
        }
        let mut events_by_span: Vec<Vec<&crate::trace::TraceEvent>> = vec![Vec::new(); n];
        for e in &self.events {
            if let Some(slot) = events_by_span.get_mut(e.span as usize) {
                slot.push(e);
            }
        }

        let ts = |raw: u64| -> u64 {
            if opts.zero_times || opts.redact {
                0
            } else {
                raw
            }
        };
        let render_attrs = |raw: &[(&'static str, Value)]| -> Vec<(&'static str, Value)> {
            if opts.redact {
                raw.iter().map(|(k, v)| (*k, v.zeroed())).collect()
            } else {
                raw.to_vec()
            }
        };

        let mut out = String::new();
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        let mut push_sep = |out: &mut String| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push('\n');
        };
        let mut conflicts_cum = 0u64;
        for (i, s) in self.spans.iter().enumerate() {
            let name = name_attr(s.kind)
                .and_then(|a| Trace::str_attr(s, a))
                .map(|v| format!("{} {v}", s.kind))
                .unwrap_or_else(|| s.kind.to_string());
            push_sep(&mut out);
            out.push_str("{\"name\":");
            write_str(&mut out, &name);
            out.push_str(",\"cat\":");
            write_str(&mut out, s.kind);
            out.push_str(",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":");
            out.push_str(&ts(start_us[i]).to_string());
            out.push_str(",\"dur\":");
            out.push_str(&ts(micros(s.seconds)).to_string());
            out.push_str(",\"args\":");
            write_attrs(&mut out, &render_attrs(&s.attrs));
            out.push('}');

            // Instants (and the conflict counter) laid out sequentially
            // inside the span, in recording order.
            let mut offset_us = 0u64;
            for e in &events_by_span[i] {
                offset_us += micros(e.seconds);
                let at = ts(start_us[i] + offset_us.min(micros(s.seconds)));
                let attrs = render_attrs(&e.attrs);
                push_sep(&mut out);
                out.push_str("{\"name\":");
                write_str(&mut out, e.kind);
                out.push_str(
                    ",\"cat\":\"solver\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":1,\"ts\":",
                );
                out.push_str(&at.to_string());
                out.push_str(",\"args\":");
                write_attrs(&mut out, &attrs);
                out.push('}');
                if let Some(c) = attrs.iter().find_map(|(k, v)| match v {
                    Value::U64(c) if *k == "conflicts" => Some(*c),
                    _ => None,
                }) {
                    conflicts_cum += c;
                    push_sep(&mut out);
                    out.push_str(
                        "{\"name\":\"solver.conflicts\",\"ph\":\"C\",\"pid\":1,\"tid\":1,\"ts\":",
                    );
                    out.push_str(&at.to_string());
                    out.push_str(",\"args\":{\"value\":");
                    out.push_str(&conflicts_cum.to_string());
                    out.push_str("}}");
                }
            }
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"schema\":");
        out.push_str(&SCHEMA_VERSION.to_string());
        if let Some(m) = manifest {
            out.push_str(",\"manifest\":");
            m.write_json(&mut out);
        }
        out.push_str("}}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuf;

    fn sample() -> Trace {
        let mut b = TraceBuf::new();
        let p = b.push_span(None, "procedure", vec![("proc", "f".into())], 0.3);
        let c = b.push_span(Some(p), "config", vec![("label", "Conc".into())], 0.3);
        let s1 = b.push_span(
            Some(c),
            "stage",
            vec![("stage", "screen".into()), ("queries", 2u64.into())],
            0.1,
        );
        b.push_event(
            s1,
            "solver_query",
            vec![("seq", 0u64.into()), ("conflicts", 5u64.into())],
            0.04,
        );
        b.push_event(
            s1,
            "solver_query",
            vec![("seq", 1u64.into()), ("conflicts", 7u64.into())],
            0.05,
        );
        b.push_span(Some(c), "stage", vec![("stage", "cover".into())], 0.2);
        Trace::assemble("program", vec![("procs", 1u64.into())], vec![b])
    }

    #[test]
    fn perfetto_export_is_valid_and_nests() {
        let t = sample();
        let doc = t.to_perfetto(None);
        let v: serde_json::Value = serde_json::from_str(&doc).expect("valid JSON");
        let events = v["traceEvents"].as_array().expect("array");
        // 5 spans (root + 4), 2 instants, 2 counter samples.
        assert_eq!(events.len(), 9, "{doc}");
        let slices: Vec<&serde_json::Value> = events.iter().filter(|e| e["ph"] == "X").collect();
        assert_eq!(slices.len(), 5);
        assert_eq!(slices[0]["name"], "program");
        assert_eq!(slices[1]["name"], "procedure f");
        assert_eq!(slices[3]["name"], "stage screen");
        // The two stages tile their config: cover starts where screen ends.
        let screen = slices[3];
        let cover = slices[4];
        assert_eq!(
            screen["ts"].as_u64().unwrap() + screen["dur"].as_u64().unwrap(),
            cover["ts"].as_u64().unwrap()
        );
        // Counter track accumulates.
        let counters: Vec<u64> = events
            .iter()
            .filter(|e| e["ph"] == "C")
            .map(|e| e["args"]["value"].as_u64().unwrap())
            .collect();
        assert_eq!(counters, vec![5, 12]);
        // Instants stay inside their stage slice.
        let instant = events.iter().find(|e| e["ph"] == "i").unwrap();
        let ts = instant["ts"].as_u64().unwrap();
        let s_ts = screen["ts"].as_u64().unwrap();
        assert!(ts >= s_ts && ts <= s_ts + screen["dur"].as_u64().unwrap());
    }

    #[test]
    fn perfetto_redaction_zeroes_times_and_numbers() {
        let t = sample();
        let redacted = t.to_perfetto_with(
            None,
            TraceRender {
                zero_times: true,
                redact: true,
            },
        );
        let v: serde_json::Value = serde_json::from_str(&redacted).expect("valid JSON");
        for e in v["traceEvents"].as_array().unwrap() {
            assert_eq!(e["ts"], 0, "{e}");
            if let Some(q) = e["args"].get("queries") {
                assert_eq!(q.as_u64(), Some(0));
            }
        }
        // Deterministic: same input, same bytes.
        let again = t.to_perfetto_with(
            None,
            TraceRender {
                zero_times: true,
                redact: true,
            },
        );
        assert_eq!(redacted, again);
    }

    #[test]
    fn manifest_lands_in_other_data() {
        let t = sample();
        let m = Manifest {
            tool: "repro".into(),
            command: "fig9".into(),
            scale: Some(8),
            threads: None,
            configs: vec!["Conc".into()],
            options: vec![],
        };
        let v: serde_json::Value =
            serde_json::from_str(&t.to_perfetto(Some(&m))).expect("valid JSON");
        assert_eq!(v["otherData"]["manifest"]["tool"], "repro");
        assert_eq!(v["otherData"]["schema"], 1);
    }
}
