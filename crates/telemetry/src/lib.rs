#![warn(missing_docs)]

//! `acspec-telemetry` — a lightweight, dependency-free tracing and
//! metrics layer for the ACSpec pipeline.
//!
//! The paper's evaluation (§6, Figures 5–9) is entirely about *where
//! analysis effort goes*: queries per stage, time per configuration,
//! warnings per benchmark. This crate gives the pipeline first-class
//! instrumentation for those questions, in the style of the
//! statistics/reporting subsystems of mature verifier frameworks:
//!
//! * **Spans** ([`TraceBuf`], [`Trace`]) — begin/end records with
//!   wall-time, parent id, and `key=value` attributes, forming the
//!   hierarchy `program → procedure → config → stage`, with one
//!   `solver_query` event per SMT `check()` hanging off its stage span.
//!   Buffers are recorded per worker and assembled by *stable order*
//!   ([`Trace::assemble`]), never arrival order, so traces are
//!   byte-identical across thread counts modulo wall-times.
//! * **Metrics** ([`MetricsRegistry`]) — named counters, float gauges,
//!   and fixed-bucket latency histograms, snapshotted as
//!   schema-versioned JSON with a run [`Manifest`].
//! * **Sinks** — [`Trace::to_jsonl`] (one JSON object per line) and
//!   [`MetricsRegistry::snapshot_json`]. Both are plain strings; the
//!   caller decides where they go.
//!
//! The crate deliberately has no dependencies and no global state:
//! recording is explicit, owned by the caller, and free when simply not
//! constructed.

pub mod json;
pub mod metrics;
pub mod perfetto;
pub mod trace;

pub use json::{Json, JsonError, Value};
pub use metrics::{
    max_rss_kb, opt, BoundsMismatch, Histogram, Manifest, MetricsRegistry, LATENCY_BUCKETS,
    SCHEMA_VERSION,
};
pub use trace::{Span, SpanHandle, Trace, TraceBuf, TraceEvent, TraceRender};

#[cfg(test)]
mod tests {
    use super::*;

    /// Every sink line must be valid JSON (checked with serde_json,
    /// which the rest of the workspace already trusts for reports).
    #[test]
    fn sinks_emit_valid_json() {
        let mut buf = TraceBuf::new();
        let p = buf.push_span(
            None,
            "procedure",
            vec![("proc", "Foo \"quoted\"\n".into())],
            0.25,
        );
        let s = buf.push_span(
            Some(p),
            "stage",
            vec![("stage", "cover".into()), ("queries", 3u64.into())],
            0.125,
        );
        buf.push_event(
            s,
            "solver_query",
            vec![("seq", 0u64.into()), ("outcome", "sat".into())],
            0.001,
        );
        let trace = Trace::assemble("program", vec![("procs", 1u64.into())], vec![buf]);
        let manifest = Manifest {
            tool: "acspec".into(),
            command: "foo.c".into(),
            scale: None,
            threads: Some(4),
            configs: vec!["Conc".into()],
            options: vec![opt("prune", "off")],
        };
        for line in trace.to_jsonl(Some(&manifest)).lines() {
            let v: serde_json::Value = serde_json::from_str(line).expect(line);
            assert!(v["type"].as_str().is_some(), "{line}");
        }

        let mut reg = MetricsRegistry::new();
        reg.inc("solver.queries", 1);
        reg.observe("solver.query_seconds", 0.001);
        reg.gauge_add("stage.total_seconds", 0.125);
        let snap = reg.snapshot_json(Some(&manifest));
        let v: serde_json::Value = serde_json::from_str(&snap).expect("valid snapshot");
        assert_eq!(v["schema"], u64::from(SCHEMA_VERSION));
        assert_eq!(v["manifest"]["tool"], "acspec");
        assert_eq!(v["counters"]["solver.queries"], 1);
        assert_eq!(v["histograms"]["solver.query_seconds"]["count"], 1);
    }
}
