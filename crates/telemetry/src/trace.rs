//! Spans, solver-query events, and the deterministic trace merge.
//!
//! A [`TraceBuf`] is a per-worker (in practice: per-procedure) recorder:
//! spans carry a parent id, a kind, ordered `key=value` attributes, and
//! wall-clock seconds, measured either live ([`TraceBuf::begin`] /
//! [`TraceBuf::end`]) or stamped from an already-measured duration
//! ([`TraceBuf::push_span`]). Point events ([`TraceBuf::push_event`])
//! attach to a span — the pipeline uses them for one record per SMT
//! `check()`.
//!
//! [`Trace::assemble`] merges buffers under a synthetic root span in the
//! order the caller supplies them. Ids are assigned by that stable order
//! — *not* by arrival time — so two runs of the same workload produce
//! byte-identical traces (modulo wall-times) regardless of how many
//! worker threads recorded the buffers.

use std::time::Instant;

use crate::json::{write_attrs, write_f64, write_str, Value};
use crate::metrics::{Manifest, SCHEMA_VERSION};

/// A span being recorded in a [`TraceBuf`] (index local to the buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanHandle(usize);

#[derive(Debug, Clone)]
struct BufSpan {
    parent: Option<usize>,
    kind: &'static str,
    attrs: Vec<(&'static str, Value)>,
    seconds: f64,
    started: Option<Instant>,
}

#[derive(Debug, Clone)]
struct BufEvent {
    span: usize,
    kind: &'static str,
    attrs: Vec<(&'static str, Value)>,
    seconds: f64,
}

/// A per-worker span/event recorder.
#[derive(Debug, Clone, Default)]
pub struct TraceBuf {
    spans: Vec<BufSpan>,
    events: Vec<BufEvent>,
}

impl TraceBuf {
    /// An empty buffer.
    pub fn new() -> TraceBuf {
        TraceBuf::default()
    }

    /// Number of spans recorded.
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    /// Opens a span under `parent` (`None` = a buffer root) and starts
    /// its wall clock. Close it with [`TraceBuf::end`].
    pub fn begin(&mut self, parent: Option<SpanHandle>, kind: &'static str) -> SpanHandle {
        self.spans.push(BufSpan {
            parent: parent.map(|h| h.0),
            kind,
            attrs: Vec::new(),
            seconds: 0.0,
            started: Some(Instant::now()),
        });
        SpanHandle(self.spans.len() - 1)
    }

    /// Closes a span opened by [`TraceBuf::begin`], stamping its
    /// wall-clock duration. A span recorded via [`TraceBuf::push_span`]
    /// keeps its stamped duration.
    pub fn end(&mut self, h: SpanHandle) {
        let span = &mut self.spans[h.0];
        if let Some(t0) = span.started.take() {
            span.seconds = t0.elapsed().as_secs_f64();
        }
    }

    /// Records a span with an already-measured duration.
    pub fn push_span(
        &mut self,
        parent: Option<SpanHandle>,
        kind: &'static str,
        attrs: Vec<(&'static str, Value)>,
        seconds: f64,
    ) -> SpanHandle {
        self.spans.push(BufSpan {
            parent: parent.map(|h| h.0),
            kind,
            attrs,
            seconds,
            started: None,
        });
        SpanHandle(self.spans.len() - 1)
    }

    /// Appends an attribute to a span.
    pub fn attr(&mut self, h: SpanHandle, key: &'static str, value: impl Into<Value>) {
        self.spans[h.0].attrs.push((key, value.into()));
    }

    /// Adds `seconds` to a span's recorded duration (for spans that
    /// aggregate several measured pieces).
    pub fn add_seconds(&mut self, h: SpanHandle, seconds: f64) {
        self.spans[h.0].seconds += seconds;
    }

    /// Records a point event under `span`.
    pub fn push_event(
        &mut self,
        span: SpanHandle,
        kind: &'static str,
        attrs: Vec<(&'static str, Value)>,
        seconds: f64,
    ) {
        self.events.push(BufEvent {
            span: span.0,
            kind,
            attrs,
            seconds,
        });
    }
}

/// A span in an assembled [`Trace`] (globally numbered).
#[derive(Debug, Clone)]
pub struct Span {
    /// Stable id (depth-first over buffers in merge order).
    pub id: u64,
    /// Parent span id (`None` only for the root).
    pub parent: Option<u64>,
    /// The span kind (`program`, `procedure`, `config`, `stage`, …).
    pub kind: &'static str,
    /// Ordered `key=value` attributes.
    pub attrs: Vec<(&'static str, Value)>,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// A point event in an assembled [`Trace`].
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// The span the event belongs to.
    pub span: u64,
    /// The event kind (`solver_query`).
    pub kind: &'static str,
    /// Ordered `key=value` attributes.
    pub attrs: Vec<(&'static str, Value)>,
    /// Wall-clock seconds attributed to the event.
    pub seconds: f64,
}

/// Rendering options for [`Trace::to_jsonl_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceRender {
    /// Replace every wall-time with `0` (determinism comparisons).
    pub zero_times: bool,
    /// Replace ids and numeric attribute values with `0`, pinning only
    /// the structural shape (golden-file tests).
    pub redact: bool,
}

/// An assembled, deterministically-numbered trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Spans in id order (the root is id 0).
    pub spans: Vec<Span>,
    /// Events, in recording order per span.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Merges per-worker buffers under a fresh root span of `root_kind`.
    ///
    /// Buffers must be supplied in a *stable* order (e.g. procedure
    /// declaration order) — ids are assigned from that order, so the
    /// assembled trace is identical no matter which worker thread
    /// recorded which buffer, or when.
    pub fn assemble(
        root_kind: &'static str,
        root_attrs: Vec<(&'static str, Value)>,
        bufs: Vec<TraceBuf>,
    ) -> Trace {
        let mut spans = Vec::new();
        let mut events = Vec::new();
        let root_seconds: f64 = bufs
            .iter()
            .flat_map(|b| b.spans.iter())
            .filter(|s| s.parent.is_none())
            .map(|s| s.seconds)
            .sum();
        spans.push(Span {
            id: 0,
            parent: None,
            kind: root_kind,
            attrs: root_attrs,
            seconds: root_seconds,
        });
        let mut next = 1u64;
        for buf in bufs {
            let offset = next;
            for (i, s) in buf.spans.into_iter().enumerate() {
                debug_assert!(s.started.is_none(), "span {i} left open");
                spans.push(Span {
                    id: offset + i as u64,
                    parent: Some(s.parent.map_or(0, |p| offset + p as u64)),
                    kind: s.kind,
                    attrs: s.attrs,
                    seconds: s.seconds,
                });
                next += 1;
            }
            for e in buf.events {
                events.push(TraceEvent {
                    span: offset + e.span as u64,
                    kind: e.kind,
                    attrs: e.attrs,
                    seconds: e.seconds,
                });
            }
        }
        Trace { spans, events }
    }

    /// Renders the trace as JSONL: a schema header line, then one line
    /// per span (in id order) with its events directly after it.
    pub fn to_jsonl(&self, manifest: Option<&Manifest>) -> String {
        self.to_jsonl_with(manifest, TraceRender::default())
    }

    /// [`Trace::to_jsonl`] with redaction options.
    pub fn to_jsonl_with(&self, manifest: Option<&Manifest>, opts: TraceRender) -> String {
        let mut out = String::new();
        out.push_str("{\"type\":\"trace\",\"schema\":");
        out.push_str(&SCHEMA_VERSION.to_string());
        if let Some(m) = manifest {
            out.push_str(",\"manifest\":");
            m.write_json(&mut out);
        }
        out.push_str("}\n");

        // Events grouped under their span, preserving recording order.
        let mut by_span: Vec<Vec<&TraceEvent>> = vec![Vec::new(); self.spans.len()];
        for e in &self.events {
            if let Some(slot) = by_span.get_mut(e.span as usize) {
                slot.push(e);
            }
        }
        let id = |raw: u64| if opts.redact { 0 } else { raw };
        let seconds = |raw: f64| {
            if opts.zero_times || opts.redact {
                0.0
            } else {
                raw
            }
        };
        let attrs = |raw: &[(&'static str, Value)]| -> Vec<(&'static str, Value)> {
            if opts.redact {
                raw.iter().map(|(k, v)| (*k, v.zeroed())).collect()
            } else {
                raw.to_vec()
            }
        };
        for span in &self.spans {
            out.push_str("{\"type\":\"span\",\"id\":");
            out.push_str(&id(span.id).to_string());
            out.push_str(",\"parent\":");
            match span.parent {
                Some(p) => out.push_str(&id(p).to_string()),
                None => out.push_str("null"),
            }
            out.push_str(",\"kind\":");
            write_str(&mut out, span.kind);
            out.push_str(",\"attrs\":");
            write_attrs(&mut out, &attrs(&span.attrs));
            out.push_str(",\"seconds\":");
            write_f64(&mut out, seconds(span.seconds));
            out.push_str("}\n");
            for e in &by_span[span.id as usize] {
                out.push_str("{\"type\":\"event\",\"span\":");
                out.push_str(&id(e.span).to_string());
                out.push_str(",\"kind\":");
                write_str(&mut out, e.kind);
                out.push_str(",\"attrs\":");
                write_attrs(&mut out, &attrs(&e.attrs));
                out.push_str(",\"seconds\":");
                write_f64(&mut out, seconds(e.seconds));
                out.push_str("}\n");
            }
        }
        out
    }

    /// The spans of a given kind, in id order.
    pub fn spans_of(&self, kind: &str) -> impl Iterator<Item = &Span> {
        let kind = kind.to_string();
        self.spans.iter().filter(move |s| s.kind == kind)
    }

    /// A span's string attribute, if present.
    pub fn str_attr<'a>(span: &'a Span, key: &str) -> Option<&'a str> {
        span.attrs.iter().find_map(|(k, v)| match v {
            Value::Str(s) if *k == key => Some(s.as_str()),
            _ => None,
        })
    }

    /// Walks parent links from `id` up to the root, returning the chain
    /// (starting at `id` itself).
    pub fn ancestry(&self, id: u64) -> Vec<&Span> {
        let mut out = Vec::new();
        let mut cur = self.spans.get(id as usize);
        while let Some(s) = cur {
            out.push(s);
            cur = s.parent.and_then(|p| self.spans.get(p as usize));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assemble_renumbers_by_buffer_order_not_arrival() {
        let mut b1 = TraceBuf::new();
        let p1 = b1.push_span(None, "procedure", vec![("proc", "f".into())], 1.0);
        b1.push_span(Some(p1), "stage", vec![("stage", "encode".into())], 0.5);

        let mut b2 = TraceBuf::new();
        let p2 = b2.push_span(None, "procedure", vec![("proc", "g".into())], 2.0);
        b2.push_event(p2, "solver_query", vec![("seq", 0u64.into())], 0.1);

        // Arrival order b2-then-b1 vs b1-then-b2 must produce different
        // *content order* only via the caller's chosen stable order —
        // the same input order always yields the same bytes.
        let t_a = Trace::assemble("program", vec![], vec![b1.clone(), b2.clone()]);
        let t_b = Trace::assemble("program", vec![], vec![b1, b2]);
        assert_eq!(t_a.to_jsonl(None), t_b.to_jsonl(None));
        assert_eq!(t_a.spans.len(), 4); // root + 3
        assert_eq!(t_a.spans[1].parent, Some(0));
        assert_eq!(t_a.spans[2].parent, Some(1));
        assert_eq!(t_a.spans[3].parent, Some(0));
        assert_eq!(t_a.events[0].span, 3);
        // Root duration sums the buffer roots.
        assert!((t_a.spans[0].seconds - 3.0).abs() < 1e-12);
    }

    #[test]
    fn begin_end_measures_wall_time() {
        let mut b = TraceBuf::new();
        let h = b.begin(None, "stage");
        std::thread::sleep(std::time::Duration::from_millis(2));
        b.end(h);
        b.attr(h, "stage", "screen");
        let t = Trace::assemble("program", vec![], vec![b]);
        assert!(t.spans[1].seconds > 0.0);
        assert_eq!(Trace::str_attr(&t.spans[1], "stage"), Some("screen"));
    }

    #[test]
    fn redacted_render_zeroes_ids_times_and_numbers() {
        let mut b = TraceBuf::new();
        let p = b.push_span(
            None,
            "stage",
            vec![("stage", "cover".into()), ("queries", 17u64.into())],
            0.25,
        );
        b.push_event(
            p,
            "solver_query",
            vec![("outcome", "sat".into()), ("conflicts", 5u64.into())],
            0.01,
        );
        let t = Trace::assemble("program", vec![], vec![b]);
        let s = t.to_jsonl_with(
            None,
            TraceRender {
                zero_times: true,
                redact: true,
            },
        );
        assert!(s.contains("\"queries\":0"), "{s}");
        assert!(s.contains("\"conflicts\":0"), "{s}");
        assert!(s.contains("\"outcome\":\"sat\""), "{s}");
        assert!(s.contains("\"seconds\":0"), "{s}");
        assert!(!s.contains("0.25"), "{s}");
    }

    #[test]
    fn ancestry_walks_to_root() {
        let mut b = TraceBuf::new();
        let p = b.push_span(None, "procedure", vec![], 0.0);
        let c = b.push_span(Some(p), "config", vec![], 0.0);
        b.push_span(Some(c), "stage", vec![], 0.0);
        let t = Trace::assemble("program", vec![], vec![b]);
        let chain: Vec<&str> = t.ancestry(3).iter().map(|s| s.kind).collect();
        assert_eq!(chain, vec!["stage", "config", "procedure", "program"]);
    }
}
