//! The named benchmark suite mirroring Figure 5.
//!
//! The paper's benchmarks range from 7-procedure WDK samples to a
//! 21,626-procedure Windows driver collection. The generated suite keeps
//! the small benchmarks at their original procedure counts and scales the
//! large anonymized Windows benchmarks down by roughly an order of
//! magnitude (the analysis pipeline is exercised identically; only the
//! table magnitudes shrink). A global `scale` divisor shrinks everything
//! further for quick runs.

use crate::drivers::{generate, PatternMix};
use crate::samate;
use crate::Benchmark;

/// Which part of the evaluation a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteKind {
    /// Labeled SAMATE corpora (Figures 6 and 7).
    Samate,
    /// Small open benchmarks (Figure 6).
    Small,
    /// Large Windows benchmarks (Figures 8 and 9).
    Large,
}

/// A suite entry: name, kind, and generation recipe.
#[derive(Debug, Clone, Copy)]
pub struct SuiteEntry {
    /// Benchmark name (as in Figure 5).
    pub name: &'static str,
    /// Which tables it feeds.
    pub kind: SuiteKind,
    /// Seed for deterministic generation.
    pub seed: u64,
    /// Procedure (or case) count at scale 1.
    pub size: usize,
}

/// The full suite (Figure 5's row names).
pub const SUITE: &[SuiteEntry] = &[
    SuiteEntry {
        name: "CWE476",
        kind: SuiteKind::Samate,
        seed: 476,
        size: 60,
    },
    SuiteEntry {
        name: "CWE690",
        kind: SuiteKind::Samate,
        seed: 690,
        size: 80,
    },
    SuiteEntry {
        name: "ansicon",
        kind: SuiteKind::Small,
        seed: 101,
        size: 29,
    },
    SuiteEntry {
        name: "space",
        kind: SuiteKind::Small,
        seed: 102,
        size: 26,
    },
    SuiteEntry {
        name: "cancel",
        kind: SuiteKind::Small,
        seed: 103,
        size: 9,
    },
    SuiteEntry {
        name: "event",
        kind: SuiteKind::Small,
        seed: 104,
        size: 7,
    },
    SuiteEntry {
        name: "firefly",
        kind: SuiteKind::Small,
        seed: 105,
        size: 9,
    },
    SuiteEntry {
        name: "moufilter",
        kind: SuiteKind::Small,
        seed: 106,
        size: 7,
    },
    SuiteEntry {
        name: "vserial",
        kind: SuiteKind::Small,
        seed: 107,
        size: 23,
    },
    SuiteEntry {
        name: "Drv1",
        kind: SuiteKind::Large,
        seed: 201,
        size: 80,
    },
    SuiteEntry {
        name: "Drv2",
        kind: SuiteKind::Large,
        seed: 202,
        size: 120,
    },
    SuiteEntry {
        name: "Drv3",
        kind: SuiteKind::Large,
        seed: 203,
        size: 20,
    },
    SuiteEntry {
        name: "Drv4",
        kind: SuiteKind::Large,
        seed: 204,
        size: 40,
    },
    SuiteEntry {
        name: "Drv5",
        kind: SuiteKind::Large,
        seed: 205,
        size: 66,
    },
    SuiteEntry {
        name: "Drv6",
        kind: SuiteKind::Large,
        seed: 206,
        size: 49,
    },
    SuiteEntry {
        name: "Drv7",
        kind: SuiteKind::Large,
        seed: 207,
        size: 200,
    },
    SuiteEntry {
        name: "Lib1",
        kind: SuiteKind::Large,
        seed: 208,
        size: 115,
    },
];

/// Generates one suite entry at the given scale divisor (`1` = full).
pub fn generate_entry(entry: &SuiteEntry, scale: usize) -> Benchmark {
    let size = (entry.size / scale.max(1)).max(3);
    match entry.kind {
        SuiteKind::Samate => {
            if entry.name == "CWE476" {
                samate::cwe476(entry.seed, size)
            } else {
                samate::cwe690(entry.seed, size)
            }
        }
        SuiteKind::Small | SuiteKind::Large => {
            // Distinct pattern mixes per benchmark (the paper's
            // benchmarks differ in character: flight software vs console
            // tool vs drivers vs kernel library).
            let mix = match entry.name {
                // The firefly driver exhibits the §5.1.1 pruning
                // crossover prominently.
                "firefly" => PatternMix {
                    firefly: 20,
                    ..PatternMix::default()
                },
                // Flight-control software: loop/buffer heavy, few frees.
                "space" => PatternMix {
                    buffer_corr: 14,
                    double_free_bug: 1,
                    double_free_ok: 1,
                    nested_deref: 4,
                    ..PatternMix::default()
                },
                // Console text processor: defensive macros everywhere.
                "ansicon" => PatternMix {
                    check_field: 14,
                    sl_assert: 8,
                    nested_deref: 4,
                    ..PatternMix::default()
                },
                // WDK samples: dispatch routines with frees.
                "cancel" | "event" | "moufilter" | "vserial" => PatternMix {
                    double_free_bug: 4,
                    double_free_ok: 6,
                    nested_deref: 6,
                    ..PatternMix::default()
                },
                // Kernel library: call-heavy, field-heavy (the paper's A2
                // warning bulge), very defensive.
                "Lib1" => PatternMix {
                    nested_deref: 14,
                    check_field: 10,
                    safe: 18,
                    ..PatternMix::default()
                },
                _ => PatternMix::default(),
            };
            generate(entry.name, entry.seed, size, mix)
        }
    }
}

/// Generates the benchmarks of a given kind.
pub fn generate_kind(kind: SuiteKind, scale: usize) -> Vec<Benchmark> {
    SUITE
        .iter()
        .filter(|e| e.kind == kind)
        .map(|e| generate_entry(e, scale))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_entries_generate_at_small_scale() {
        for e in SUITE {
            let bm = generate_entry(e, 10);
            assert!(bm.proc_count() >= 3, "{} too small", e.name);
            assert!(bm.assert_count() > 0, "{} has no asserts", e.name);
        }
    }

    #[test]
    fn suite_names_match_figure5() {
        let names: Vec<&str> = SUITE.iter().map(|e| e.name).collect();
        for expected in [
            "CWE476",
            "CWE690",
            "ansicon",
            "space",
            "cancel",
            "event",
            "firefly",
            "moufilter",
            "vserial",
            "Drv1",
            "Drv7",
            "Lib1",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }
}
