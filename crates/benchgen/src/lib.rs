#![warn(missing_docs)]

//! Deterministic benchmark-corpus generators.
//!
//! The paper evaluates on 17 C benchmarks: the NIST SAMATE CWE476/CWE690
//! suites, `space`, `ansicon`, WDK sample drivers, and anonymized Windows
//! drivers and a kernel library (Figure 5). The Windows code is
//! proprietary and SAMATE's exact cases are external data, so this crate
//! generates *seeded synthetic corpora* exhibiting the code patterns the
//! paper names as the causes of its measured effects:
//!
//! * [`samate`] — labeled CWE476 (NULL dereference) and CWE690 (unchecked
//!   allocation) cases with ground truth, in the style of the SAMATE flow
//!   variants, enabling the Figure 7 classification;
//! * [`drivers`] — driver-like procedures mixing double frees with
//!   missing returns (Figure 1), defensive `CheckFieldF` macros,
//!   `SL_ASSERT` expansions, buffer-length correlations, and nested field
//!   dereferences after calls (§5.1.3);
//! * [`suite`] — the named benchmark table mirroring Figure 5.
//!
//! Everything is generated from explicit seeds with `rand::rngs::StdRng`,
//! so every table regenerates identically.

pub mod drivers;
pub mod samate;
pub mod suite;

use std::collections::BTreeSet;

/// Ground truth for a labeled corpus: provenance tags of assertions that
/// are real bugs vs. known-safe.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// Tags (e.g. `deref@17`) of buggy assertions.
    pub buggy: BTreeSet<String>,
    /// Tags of safe assertions.
    pub safe: BTreeSet<String>,
}

/// A generated benchmark: C source, the compiled IR program, and optional
/// ground truth.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Benchmark name (mirrors Figure 5 where applicable).
    pub name: String,
    /// The generated C source.
    pub source: String,
    /// Lines of C (Figure 5's "LOC (C)").
    pub c_loc: usize,
    /// The compiled IR program.
    pub program: acspec_ir::Program,
    /// Ground truth (SAMATE-style corpora only).
    pub ground_truth: Option<GroundTruth>,
}

impl Benchmark {
    /// Number of procedures with bodies.
    pub fn proc_count(&self) -> usize {
        self.program
            .procedures
            .iter()
            .filter(|p| p.body.is_some())
            .count()
    }

    /// Total number of assertions (after instrumentation, before loop
    /// unrolling).
    pub fn assert_count(&self) -> usize {
        self.program.assert_count()
    }

    /// Simple-statement count (Figure 5's "LOC (BPL)" proxy).
    pub fn ir_stmt_count(&self) -> usize {
        self.program.simple_stmt_count()
    }
}

/// An incremental C-source builder that tracks line numbers, so
/// generators can record the provenance tag (`deref@line`,
/// `double-free@line`) of the assertion a pattern plants.
#[derive(Debug, Default)]
pub struct SrcBuilder {
    lines: Vec<String>,
}

impl SrcBuilder {
    /// Creates an empty builder.
    pub fn new() -> SrcBuilder {
        SrcBuilder::default()
    }

    /// Appends a line and returns its 1-based number.
    pub fn line(&mut self, s: impl Into<String>) -> u32 {
        self.lines.push(s.into());
        self.lines.len() as u32
    }

    /// Appends several lines.
    pub fn lines(&mut self, ss: &[&str]) {
        for s in ss {
            self.line(*s);
        }
    }

    /// Current line count.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True if no lines were added.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The assembled source.
    pub fn build(&self) -> String {
        self.lines.join("\n")
    }
}

/// Compiles generated C into a [`Benchmark`].
///
/// # Panics
///
/// Panics if the generated source does not compile — generator bugs are
/// programming errors, not runtime conditions.
pub fn compile_benchmark(
    name: impl Into<String>,
    source: String,
    ground_truth: Option<GroundTruth>,
) -> Benchmark {
    let program = acspec_cfront::compile_c(&source).unwrap_or_else(|e| {
        panic!("generated benchmark failed to compile: {e}\n{source}");
    });
    acspec_ir::typecheck::check_program(&program).unwrap_or_else(|e| {
        panic!("generated benchmark is ill-sorted: {e}\n{source}");
    });
    let c_loc = source.lines().filter(|l| !l.trim().is_empty()).count();
    Benchmark {
        name: name.into(),
        source,
        c_loc,
        program,
        ground_truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn src_builder_tracks_lines() {
        let mut b = SrcBuilder::new();
        assert!(b.is_empty());
        let l1 = b.line("void f(void) {");
        let l2 = b.line("}");
        assert_eq!((l1, l2), (1, 2));
        assert_eq!(b.build(), "void f(void) {\n}");
    }
}
