//! SAMATE-style labeled corpora for CWE476 (NULL pointer dereference) and
//! CWE690 (unchecked return value → NULL dereference).
//!
//! Each generated case is one function built from a *flow variant*
//! pattern, in the spirit of the NIST SAMATE test-suite variants the
//! paper evaluates on (§5, Figure 7). The generator records ground truth:
//! the provenance tag of each planted dereference, labeled buggy or safe.
//! The buggy ratios match the paper's (36% for CWE476, 27% for CWE690).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{compile_benchmark, Benchmark, GroundTruth, SrcBuilder};

const PRELUDE: &[&str] = &[
    "struct item { int val; int key; struct item *next; };",
    "int *malloc(int size);",
    "struct item *alloc_item(void);",
    "int flag_fn(void);",
    "int valid_ptr(int *p);",
    "",
];

/// The flow variants for CWE476. `true` = the planted dereference is a
/// real bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum V476 {
    /// `p = malloc(); *p = 1;` — unchecked allocation (simple body: a
    /// false negative for Conc/A1, per §5.1.2's discussion).
    BuggySimple,
    /// `if (p == NULL) { *p = 1; }` — dereference on the null path (a
    /// doomed point; every configuration catches it).
    BuggyDoomed,
    /// `if (nondet()) { *p = 1; }` — unchecked on a non-deterministic
    /// path.
    BuggyNondetPath,
    /// Figure 2-style: one branch unchecked, the sibling branch checked.
    BuggyInconsistent,
    /// `if (p != NULL) { *p = 1; }` — properly checked.
    SafeChecked,
    /// `if (p == NULL) return; *p = 1;` — early-exit guard.
    SafeEarlyReturn,
    /// Dereference of a parameter the (absent) caller guarantees —
    /// labeled safe in the suite; the conservative verifier flags it
    /// (its false positives in Figure 7).
    SafeParamContract,
    /// Identical code to [`V476::SafeParamContract`] but the suite's
    /// callers pass NULL: labeled buggy. Invisible to *every* abstract
    /// configuration ("there is no (abstract) inconsistency when the
    /// procedure bodies are simple, but buggy", §5.1.2) — the residual
    /// false negatives of Figure 7.
    BuggyParamNull,
    /// Allocation guarded by an external validity check the human knows
    /// implies non-null: safe, but the havoc-returns abstraction cannot
    /// express the needed ν-free specification — the source of A2's few
    /// false positives (§5.1.2).
    SafeCalleeChecked,
}

const V476_BUGGY: &[V476] = &[
    V476::BuggySimple,
    V476::BuggyDoomed,
    V476::BuggyNondetPath,
    V476::BuggyInconsistent,
    V476::BuggyParamNull,
    V476::BuggyParamNull,
];
const V476_SAFE: &[V476] = &[
    V476::SafeChecked,
    V476::SafeEarlyReturn,
    V476::SafeParamContract,
    V476::SafeCalleeChecked,
];

/// Generates the CWE476-style labeled corpus with `n` cases.
pub fn cwe476(seed: u64, n: usize) -> Benchmark {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = SrcBuilder::new();
    b.lines(PRELUDE);
    let mut gt = GroundTruth::default();
    for i in 0..n {
        let v = if rng.gen_bool(0.36) {
            V476_BUGGY[rng.gen_range(0..V476_BUGGY.len())]
        } else {
            V476_SAFE[rng.gen_range(0..V476_SAFE.len())]
        };
        emit_476(&mut b, &mut gt, i, v);
        b.line("");
    }
    compile_benchmark("CWE476", b.build(), Some(gt))
}

fn emit_476(b: &mut SrcBuilder, gt: &mut GroundTruth, i: usize, v: V476) {
    let mark = |gt: &mut GroundTruth, line: u32, buggy: bool| {
        let tag = format!("deref@{line}");
        if buggy {
            gt.buggy.insert(tag);
        } else {
            gt.safe.insert(tag);
        }
    };
    match v {
        V476::BuggySimple => {
            b.line(format!("void case476_{i}(void) {{"));
            b.line("  int *p = malloc(8);");
            let l = b.line("  *p = 1;");
            mark(gt, l, true);
            b.line("}");
        }
        V476::BuggyDoomed => {
            b.line(format!("void case476_{i}(void) {{"));
            b.line("  int *p = malloc(8);");
            b.line("  if (p == NULL) {");
            let l = b.line("    *p = 1;");
            mark(gt, l, true);
            b.line("  }");
            b.line("}");
        }
        V476::BuggyNondetPath => {
            b.line(format!("void case476_{i}(void) {{"));
            b.line("  int *p = malloc(8);");
            b.line("  if (nondet()) {");
            let l = b.line("    *p = 1;");
            mark(gt, l, true);
            b.line("  }");
            b.line("}");
        }
        V476::BuggyInconsistent => {
            b.line(format!("void case476_{i}(void) {{"));
            b.line("  int *p = malloc(8);");
            b.line("  if (flag_fn()) {");
            let l1 = b.line("    *p = 1;");
            mark(gt, l1, true);
            b.line("  } else {");
            b.line("    if (p != NULL) {");
            let l2 = b.line("      *p = 2;");
            mark(gt, l2, false);
            b.line("    }");
            b.line("  }");
            b.line("}");
        }
        V476::SafeChecked => {
            b.line(format!("void case476_{i}(void) {{"));
            b.line("  int *p = malloc(8);");
            b.line("  if (p != NULL) {");
            let l = b.line("    *p = 1;");
            mark(gt, l, false);
            b.line("  }");
            b.line("}");
        }
        V476::SafeEarlyReturn => {
            b.line(format!("void case476_{i}(void) {{"));
            b.line("  int *p = malloc(8);");
            b.line("  if (p == NULL) { return; }");
            let l = b.line("  *p = 1;");
            mark(gt, l, false);
            b.line("}");
        }
        V476::SafeParamContract => {
            b.line(format!("void case476_{i}(int *p) {{"));
            let l = b.line("  *p = 1;");
            mark(gt, l, false);
            b.line("}");
        }
        V476::BuggyParamNull => {
            b.line(format!("void case476_{i}(int *p) {{"));
            let l = b.line("  *p = 2;");
            mark(gt, l, true);
            b.line("}");
        }
        V476::SafeCalleeChecked => {
            b.line(format!("void case476_{i}(int miss) {{"));
            b.line("  int *p = malloc(8);");
            b.line("  if (valid_ptr(p)) {");
            let l = b.line("    *p = 1;");
            mark(gt, l, false);
            b.line("  } else {");
            b.line("    miss = miss + 1;");
            b.line("  }");
            b.line("}");
        }
    }
}

/// The flow variants for CWE690.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum V690 {
    /// `data = alloc(); data->val = 1;` — unchecked allocation result.
    BuggySimple,
    /// Figure 2 verbatim shape: unchecked in one branch, checked twin in
    /// the other (revealed by A1's abstract SIB, §1.1.2).
    BuggyFigure2,
    /// Unchecked buffer fill in a loop.
    BuggyLoopFill,
    /// Early-return on allocation failure.
    SafeEarlyReturn,
    /// Checked before use.
    SafeChecked,
    /// Checked loop fill.
    SafeLoopFill,
    /// Struct-parameter dereference whose callers pass NULL: labeled
    /// buggy, invisible to every abstraction (Figure 7's residual FNs).
    BuggyParamStruct,
}

const V690_BUGGY: &[V690] = &[
    V690::BuggySimple,
    V690::BuggyFigure2,
    V690::BuggyLoopFill,
    V690::BuggyParamStruct,
    V690::BuggyParamStruct,
];
const V690_SAFE: &[V690] = &[V690::SafeEarlyReturn, V690::SafeChecked, V690::SafeLoopFill];

/// Generates the CWE690-style labeled corpus with `n` cases.
pub fn cwe690(seed: u64, n: usize) -> Benchmark {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = SrcBuilder::new();
    b.lines(PRELUDE);
    let mut gt = GroundTruth::default();
    for i in 0..n {
        let v = if rng.gen_bool(0.27) {
            V690_BUGGY[rng.gen_range(0..V690_BUGGY.len())]
        } else {
            V690_SAFE[rng.gen_range(0..V690_SAFE.len())]
        };
        emit_690(&mut b, &mut gt, i, v);
        b.line("");
    }
    compile_benchmark("CWE690", b.build(), Some(gt))
}

fn emit_690(b: &mut SrcBuilder, gt: &mut GroundTruth, i: usize, v: V690) {
    let mark = |gt: &mut GroundTruth, line: u32, buggy: bool| {
        let tag = format!("deref@{line}");
        if buggy {
            gt.buggy.insert(tag);
        } else {
            gt.safe.insert(tag);
        }
    };
    match v {
        V690::BuggySimple => {
            b.line(format!("void case690_{i}(void) {{"));
            b.line("  struct item *data = alloc_item();");
            let l = b.line("  data->val = 1;");
            mark(gt, l, true);
            b.line("}");
        }
        V690::BuggyFigure2 => {
            b.line(format!("void case690_{i}(void) {{"));
            b.line("  struct item *data = alloc_item();");
            b.line("  if (flag_fn()) {");
            let l1 = b.line("    data->val = 1;");
            mark(gt, l1, true);
            b.line("  } else {");
            b.line("    if (data != NULL) {");
            let l2 = b.line("      data->val = 1;");
            mark(gt, l2, false);
            b.line("    }");
            b.line("  }");
            b.line("}");
        }
        V690::BuggyLoopFill => {
            b.line(format!("void case690_{i}(int n) {{"));
            b.line("  char *buf = malloc(n);");
            b.line("  int i;");
            b.line("  for (i = 0; i < n; i++) {");
            let l = b.line("    buf[i] = 0;");
            mark(gt, l, true);
            b.line("  }");
            b.line("}");
        }
        V690::SafeEarlyReturn => {
            b.line(format!("void case690_{i}(void) {{"));
            b.line("  struct item *data = alloc_item();");
            b.line("  if (data == NULL) { return; }");
            let l = b.line("  data->val = 1;");
            mark(gt, l, false);
            b.line("}");
        }
        V690::SafeChecked => {
            b.line(format!("void case690_{i}(void) {{"));
            b.line("  struct item *data = alloc_item();");
            b.line("  if (data != NULL) {");
            let l = b.line("    data->val = 1;");
            mark(gt, l, false);
            b.line("  }");
            b.line("}");
        }
        V690::BuggyParamStruct => {
            b.line(format!("void case690_{i}(struct item *data) {{"));
            let l = b.line("  data->val = 3;");
            mark(gt, l, true);
            b.line("}");
        }
        V690::SafeLoopFill => {
            b.line(format!("void case690_{i}(int n) {{"));
            b.line("  char *buf = malloc(n);");
            b.line("  int i;");
            b.line("  if (buf == NULL) { return; }");
            b.line("  for (i = 0; i < n; i++) {");
            let l = b.line("    buf[i] = 0;");
            mark(gt, l, false);
            b.line("  }");
            b.line("}");
        }
    }
}

/// A caller-augmented corpus for the interprocedural extension (§5.1.2,
/// §7): `leaf` procedures dereference a parameter unconditionally (the
/// "simple, but buggy" shape that is a false negative for every modular
/// configuration), and each gets a caller that either passes NULL (a
/// real bug, labeled on the callee's precondition obligation) or a
/// checked allocation (safe). With inferred preconditions asserted at
/// call sites, the bad callers become catchable.
pub fn cwe476_with_callers(seed: u64, n: usize) -> Benchmark {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = SrcBuilder::new();
    b.lines(PRELUDE);
    let mut gt = GroundTruth::default();
    for i in 0..n {
        b.line(format!("void leaf_{i}(int *p) {{"));
        b.line("  *p = 1;");
        b.line("}");
        let buggy = rng.gen_bool(0.5);
        b.line(format!("void call_{i}(void) {{"));
        if buggy {
            b.line(format!("  leaf_{i}(NULL);"));
            gt.buggy.insert(format!("pre:leaf_{i}@0"));
        } else {
            b.line("  int *q = malloc(8);");
            b.line("  if (q == NULL) { return; }");
            b.line(format!("  leaf_{i}(q);"));
            // Call-site 0 is the malloc; the leaf call is site 1.
            gt.safe.insert(format!("pre:leaf_{i}@1"));
        }
        b.line("}");
        b.line("");
    }
    compile_benchmark("CWE476-callers", b.build(), Some(gt))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpora_are_deterministic() {
        let a = cwe476(42, 10);
        let b = cwe476(42, 10);
        assert_eq!(a.source, b.source);
        let c = cwe476(43, 10);
        assert_ne!(a.source, c.source);
    }

    #[test]
    fn ground_truth_covers_all_planted_derefs() {
        let bm = cwe476(7, 20);
        let gt = bm.ground_truth.as_ref().expect("labeled");
        assert!(!gt.buggy.is_empty());
        assert!(!gt.safe.is_empty());
        assert!(gt.buggy.is_disjoint(&gt.safe));
        assert_eq!(bm.proc_count(), 20);
    }

    #[test]
    fn cwe690_compiles_with_loops() {
        let bm = cwe690(11, 30);
        assert_eq!(bm.proc_count(), 30);
        assert!(bm.assert_count() > 0);
    }

    #[test]
    fn buggy_ratio_roughly_matches_paper() {
        let bm = cwe476(1234, 200);
        let gt = bm.ground_truth.as_ref().expect("labeled");
        let total = gt.buggy.len() + gt.safe.len();
        let ratio = gt.buggy.len() as f64 / total as f64;
        assert!(
            (0.25..0.50).contains(&ratio),
            "CWE476 buggy ratio {ratio} should be near 36%"
        );
    }
}
