//! Driver-like synthetic code generator.
//!
//! Procedures are drawn from the code patterns the paper reports in its
//! driver/kernel benchmarks (§1.1.1, §5.1.1, §5.1.3):
//!
//! * double free through a missing early return (Figure 1);
//! * defensive `CheckFieldF` macro expansions (the Conc false-positive
//!   source);
//! * `SL_ASSERT`-style `if (!e) assert(false)` expansions;
//! * buffer-length/pointer correlations (the `Process` example — an A1
//!   warning source);
//! * nested field dereferences after calls (the A2 warning source);
//! * firefly-style allocation checks whose Conc specification is
//!   disjunctive (the clause-pruning crossover of §5.1.1);
//! * plain well-guarded code (procedures the conservative verifier labels
//!   correct);
//! * occasionally, predicate-heavy procedures that exhaust the analysis
//!   budget (the "TO" column).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{compile_benchmark, Benchmark, SrcBuilder};

const PRELUDE: &[&str] = &[
    "struct item { int val; int key; struct item *next; };",
    "struct req { int len; struct item *obj; int cmd; };",
    "int *malloc(int size);",
    "struct item *alloc_item(void);",
    "int flag_fn(void);",
    "void init_pool(void) { }",
    "",
];

/// Relative weights of the generated patterns.
#[derive(Debug, Clone, Copy)]
pub struct PatternMix {
    /// Figure 1 double free (buggy variant).
    pub double_free_bug: u32,
    /// Figure 1 double free (correct variant, with the return).
    pub double_free_ok: u32,
    /// Defensive `CheckFieldF` macro (Conc warning, humanly a FP).
    pub check_field: u32,
    /// `SL_ASSERT` expansion (Conc warning, humanly a FP).
    pub sl_assert: u32,
    /// Buffer-length correlation (A1 warning).
    pub buffer_corr: u32,
    /// Nested field dereference after a call (A2 warning).
    pub nested_deref: u32,
    /// Unchecked allocation with a disjunctive Conc spec (firefly-style
    /// pruning crossover).
    pub firefly: u32,
    /// Well-guarded, verifiably correct code.
    pub safe: u32,
    /// Predicate-heavy procedures that time the analysis out.
    pub heavy: u32,
}

impl Default for PatternMix {
    fn default() -> Self {
        PatternMix {
            double_free_bug: 2,
            double_free_ok: 3,
            check_field: 6,
            sl_assert: 4,
            buffer_corr: 5,
            nested_deref: 8,
            firefly: 4,
            safe: 14,
            heavy: 2,
        }
    }
}

impl PatternMix {
    fn total(&self) -> u32 {
        self.double_free_bug
            + self.double_free_ok
            + self.check_field
            + self.sl_assert
            + self.buffer_corr
            + self.nested_deref
            + self.firefly
            + self.safe
            + self.heavy
    }
}

/// Generates a driver-like benchmark with `n_procs` procedures.
pub fn generate(name: &str, seed: u64, n_procs: usize, mix: PatternMix) -> Benchmark {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = SrcBuilder::new();
    b.lines(PRELUDE);
    for i in 0..n_procs {
        let mut pick = rng.gen_range(0..mix.total());
        let mut chosen = 8usize;
        for (idx, w) in [
            mix.double_free_bug,
            mix.double_free_ok,
            mix.check_field,
            mix.sl_assert,
            mix.buffer_corr,
            mix.nested_deref,
            mix.firefly,
            mix.safe,
            mix.heavy,
        ]
        .into_iter()
        .enumerate()
        {
            if pick < w {
                chosen = idx;
                break;
            }
            pick -= w;
        }
        match chosen {
            0 => double_free(&mut b, i, true),
            1 => double_free(&mut b, i, false),
            2 => check_field(&mut b, i, &mut rng),
            3 => sl_assert(&mut b, i),
            4 => buffer_corr(&mut b, i),
            5 => nested_deref(&mut b, i),
            6 => firefly(&mut b, i),
            7 => safe_proc(&mut b, i, &mut rng),
            _ => heavy_proc(&mut b, i),
        }
        b.line("");
    }
    compile_benchmark(name, b.build(), None)
}

/// Figure 1: frees on a non-deterministic early path and on the fall
/// through; `buggy` omits the `return` after the command-specific frees.
/// The command test uses the driver-typical `switch` dispatch.
fn double_free(b: &mut SrcBuilder, i: usize, buggy: bool) {
    b.line(format!(
        "void drv_dispatch_{i}(int *c, char *buf, int cmd) {{"
    ));
    b.line("  if (nondet()) {");
    b.line("    free(c);");
    b.line("    free(buf);");
    b.line("    return;");
    b.line("  }");
    b.line("  switch (cmd) {");
    b.line("    case 1:");
    b.line("      if (nondet()) {");
    b.line("        free(c);");
    b.line("        free(buf);");
    if !buggy {
        b.line("        return;");
    }
    b.line("      }");
    b.line("      break;");
    b.line("    default:");
    b.line("      cmd = 0;");
    b.line("  }");
    b.line("  free(c);");
    b.line("  free(buf);");
    b.line("}");
}

/// §5.1.3: `y = *x; if (CheckFieldF(x, a)) …` — the macro's null check is
/// redundant after the dereference, so Conc flags dead code.
fn check_field(b: &mut SrcBuilder, i: usize, rng: &mut StdRng) {
    let with_else = rng.gen_bool(0.5);
    b.line(format!("void drv_field_{i}(struct item *x, int a) {{"));
    b.line("  int y = x->val;");
    b.line("  if (x != NULL && x->key == a) {");
    b.line("    y = y + 1;");
    if with_else {
        b.line("  } else {");
        b.line("    y = 0;");
    }
    b.line("  }");
    b.line("}");
}

/// §5.1.3: `SL_ASSERT(e)` expands to `if (!e) assert(false)`; the tool
/// insists the then branch be reachable. `assert(false)` is modeled by a
/// NULL-literal dereference.
fn sl_assert(b: &mut SrcBuilder, i: usize) {
    b.line(format!("void drv_check_{i}(int e) {{"));
    b.line("  if (e == 0) {");
    b.line("    int *zero = NULL;");
    b.line("    *zero = 1;");
    b.line("  }");
    b.line("  e = e + 1;");
    b.line("}");
}

/// §5.1.3's `Process` pattern: Conc proves it with the correlation
/// `mBufferLength >= 0 ⇒ mBuffer != 0`; A1's vocabulary cannot express
/// the guard, so its stronger spec kills the later null check's else
/// branch.
fn buffer_corr(b: &mut SrcBuilder, i: usize) {
    b.line(format!(
        "void drv_process_{i}(int mBufferLength, char *mBuffer) {{"
    ));
    b.line("  int j;");
    b.line("  if (mBufferLength >= 1) {");
    b.line("    for (j = 0; j < mBufferLength; j++) {");
    b.line("      mBuffer[j] = 0;");
    b.line("    }");
    b.line("  }");
    b.line("  if (mBuffer != NULL) {");
    b.line("    mBuffer[0] = 1;");
    b.line("  }");
    b.line("}");
}

/// §5.1.3: a nested dereference `x->next->val` after a call to a defined
/// function; HAVOC's modifies-everything contract means only ν-aware
/// vocabularies (Conc, A1) can express the needed spec — A2 warns.
fn nested_deref(b: &mut SrcBuilder, i: usize) {
    b.line(format!("void drv_nested_{i}(struct item *x) {{"));
    b.line("  if (x == NULL) { return; }");
    b.line("  init_pool();");
    b.line("  x->next->val = 1;");
    b.line("}");
}

/// §5.1.1's firefly example: the Conc specification
/// `ν_malloc == 0 || key != 0` has a disjunction, so 1-clause pruning
/// weakens it to true and reveals a warning that A1 (whose spec is the
/// simpler `key != 0`) keeps suppressed.
fn firefly(b: &mut SrcBuilder, i: usize) {
    b.line(format!("void drv_grid_{i}(int *key) {{"));
    b.line("  int *grid_ptr = malloc(8);");
    b.line("  if (grid_ptr == NULL) { return; }");
    b.line("  int x = *key;");
    b.line("}");
}

/// Well-guarded code: everything checked; the conservative verifier
/// labels these correct.
fn safe_proc(b: &mut SrcBuilder, i: usize, rng: &mut StdRng) {
    match rng.gen_range(0..3) {
        0 => {
            b.line(format!("void drv_safe_{i}(struct item *x) {{"));
            b.line("  if (x != NULL) {");
            b.line("    x->val = 0;");
            b.line("  }");
            b.line("}");
        }
        1 => {
            b.line(format!("void drv_safe_{i}(int n) {{"));
            b.line("  char *buf = malloc(n);");
            b.line("  int j;");
            b.line("  if (buf == NULL) { return; }");
            b.line("  for (j = 0; j < n; j++) {");
            b.line("    buf[j] = 0;");
            b.line("  }");
            b.line("  free(buf);");
            b.line("}");
        }
        _ => {
            b.line(format!("void drv_safe_{i}(struct req *r) {{"));
            b.line("  if (r == NULL) { return; }");
            b.line("  if (r->obj != NULL) {");
            b.line("    r->obj->val = r->cmd;");
            b.line("  }");
            b.line("}");
        }
    }
}

/// A predicate-heavy procedure: many independently guarded dereferences
/// make `|Q|` exceed the analysis cap, standing in for the paper's
/// 10-second timeouts.
fn heavy_proc(b: &mut SrcBuilder, i: usize) {
    b.line(format!(
        "void drv_heavy_{i}(int *a, int *b2, int *c, int *d, int *e, int f1, int f2, int f3, int f4, int f5) {{"
    ));
    b.line("  if (f1 == 1) { *a = 1; }");
    b.line("  if (f2 == 1) { *b2 = 1; }");
    b.line("  if (f3 == 1) { *c = 1; }");
    b.line("  if (f4 == 1) { *d = 1; }");
    b.line("  if (f5 == 1) { *e = 1; }");
    b.line("  if (f1 == 2) { *a = 2; }");
    b.line("  if (f2 == 2) { *b2 = 2; }");
    b.line("  if (f3 == 2) { *c = 2; }");
    b.line("  if (f4 == 2) { *d = 2; }");
    b.line("}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate("t", 5, 12, PatternMix::default());
        let b = generate("t", 5, 12, PatternMix::default());
        assert_eq!(a.source, b.source);
    }

    #[test]
    fn all_patterns_compile() {
        // Exercise every pattern at least once via a generous size.
        let bm = generate("all", 1, 60, PatternMix::default());
        assert_eq!(bm.proc_count(), 60 + 1, "60 generated + init_pool");
        assert!(bm.assert_count() > 0);
        assert!(bm.c_loc > 200);
    }

    #[test]
    fn individual_patterns_compile() {
        let mut b = SrcBuilder::new();
        b.lines(PRELUDE);
        double_free(&mut b, 0, true);
        double_free(&mut b, 1, false);
        let mut rng = StdRng::seed_from_u64(0);
        check_field(&mut b, 2, &mut rng);
        sl_assert(&mut b, 3);
        buffer_corr(&mut b, 4);
        nested_deref(&mut b, 5);
        firefly(&mut b, 6);
        safe_proc(&mut b, 7, &mut rng);
        heavy_proc(&mut b, 8);
        let bm = compile_benchmark("patterns", b.build(), None);
        assert_eq!(bm.proc_count(), 9 + 1);
    }
}
