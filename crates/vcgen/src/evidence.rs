//! Per-claim evidence: machine-checkable certificates for query
//! verdicts (the proof-carrying-warnings refactor).
//!
//! Every claim that surfaces in a report — a `Fail` warning, a `Dead`
//! location, a predicate-cover cube, a weakening step — is backed by a
//! [`QueryCert`] built from a *fresh-solver replay* of the query against
//! the base assertion stream (the same mechanism
//! [`failure_witness`](crate::ProcAnalyzer::failure_witness) already
//! uses for deterministic witnesses). Replay-based certification keeps
//! the incremental query plan untouched: certificates are produced
//! outside the budget, the chaos stream, and the query counters, so a
//! run with certification enabled reports byte-identical results.
//!
//! A satisfiable verdict carries a full first-order model: integer and
//! boolean variable assignments plus finite-table-with-default
//! interpretations for maps and uninterpreted functions, extracted so
//! that structural evaluation of every asserted root yields *true*. An
//! unsatisfiable verdict carries the solver's clause database with
//! per-clause provenance tags ([`acspec_smt::ClauseTag`]), the learnt-
//! clause trace (each learnt clause is a reverse-unit-propagation
//! consequence of the events before it), and the assumption core — the
//! raw material an independent checker replays without trusting the
//! engine.
//!
//! Certificates within one procedure share a term table (terms are
//! hash-consed per analyzer, so ids are stable) and are deduplicated by
//! canonical assumption key: a dominance-cache hit references the same
//! certificate as the query that originally populated the cache entry,
//! so cache hits *replay or reference* evidence, never fabricate it.

use std::collections::{BTreeMap, HashMap};

use acspec_smt::{ClauseTag, Ctx, Lit, ProofEvent, SmtResult, Solver, Term, TermId, TermSort};

/// A serialized term node (mirror of [`acspec_smt::Term`] with child
/// ids, decoupled from the live [`Ctx`] so certificates outlive it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TermNode {
    /// Boolean constant `true`.
    True,
    /// Boolean constant `false`.
    False,
    /// Named boolean variable.
    BoolVar(String),
    /// Negation.
    Not(u32),
    /// N-ary conjunction.
    And(Vec<u32>),
    /// N-ary disjunction.
    Or(Vec<u32>),
    /// Implication.
    Implies(u32, u32),
    /// Bi-implication.
    Iff(u32, u32),
    /// Equality (int or map sorted operands).
    Eq(u32, u32),
    /// `a ≤ b`.
    Le(u32, u32),
    /// `a < b`.
    Lt(u32, u32),
    /// Named integer variable.
    IntVar(String),
    /// Integer constant.
    IntConst(i64),
    /// N-ary sum.
    Add(Vec<u32>),
    /// Constant multiple.
    MulC(i64, u32),
    /// Uninterpreted function application.
    App(String, Vec<u32>),
    /// Map read.
    Read(u32, u32),
    /// Map write (functional update).
    Write(u32, u32, u32),
    /// Named map variable.
    MapVar(String),
    /// If-then-else.
    Ite(u32, u32, u32),
}

/// A map value: a finite table over a distinct-per-map default.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MapValue {
    /// Value at every index not listed in `entries`.
    pub default: i64,
    /// Explicit index → value entries.
    pub entries: BTreeMap<i64, i64>,
}

/// An uninterpreted-function value: a finite table with a default.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FuncValue {
    /// Value at every argument tuple not listed in `entries`.
    pub default: i64,
    /// Explicit argument-tuple → value entries.
    pub entries: BTreeMap<Vec<i64>, i64>,
}

/// A full first-order model: evidence for a `Sat` verdict.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ModelTables {
    /// Integer variable values, by name.
    pub ints: BTreeMap<String, i64>,
    /// Boolean variable values, by name.
    pub bools: BTreeMap<String, bool>,
    /// Map variable values, by name.
    pub maps: BTreeMap<String, MapValue>,
    /// Uninterpreted function values, by name.
    pub funcs: BTreeMap<String, FuncValue>,
}

/// One proof-log event: an input clause with provenance, or a learnt
/// clause (serialized form of [`acspec_smt::ProofEvent`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertEvent {
    /// A caller/theory/Tseitin input clause.
    Input {
        /// Clause literals as signed ints (`var+1`, negative = negated).
        lits: Vec<i64>,
        /// Provenance.
        tag: CertTag,
    },
    /// A learnt clause (RUP consequence of everything before it).
    Learnt {
        /// Clause literals as signed ints.
        lits: Vec<i64>,
    },
}

/// Serialized clause provenance (mirror of [`acspec_smt::ClauseTag`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertTag {
    /// Unit clause asserting a root term.
    Assert {
        /// The asserted term.
        term: u32,
    },
    /// Unit clause from ite purification.
    Purify {
        /// The guarded-equation term.
        term: u32,
        /// The lifted `Ite`.
        ite: u32,
        /// The fresh variable standing for its value.
        var: u32,
    },
    /// Tseitin definitional clause of a term.
    Tseitin {
        /// The encoded term.
        term: u32,
    },
    /// Theory lemma / conflict clause over (term, polarity) literals.
    Theory {
        /// The clause parts.
        parts: Vec<(u32, bool)>,
    },
    /// Caller-added blocking clause over terms.
    External {
        /// The clause part terms.
        parts: Vec<u32>,
    },
}

/// Proof evidence for an `Unsat` verdict.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProofData {
    /// Term → signed Tseitin literal, for every serialized boolean term
    /// the replay solver encoded.
    pub lits: BTreeMap<u32, i64>,
    /// The interleaved input/learnt event log, in chronological order.
    pub events: Vec<CertEvent>,
    /// The assumption terms responsible for unsatisfiability (a subset
    /// of the certificate's assumptions; empty = clauses alone).
    pub core: Vec<u32>,
}

/// The verdict a certificate backs, with its evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertOutcome {
    /// Satisfiable, with a full model.
    Sat(ModelTables),
    /// Unsatisfiable, with a replayable proof.
    Unsat(ProofData),
    /// The replay could not finish (should not happen for claims whose
    /// original query completed; kept so a degraded run stays honest).
    Unknown,
}

impl CertOutcome {
    /// Stable lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            CertOutcome::Sat(_) => "sat",
            CertOutcome::Unsat(_) => "unsat",
            CertOutcome::Unknown => "unknown",
        }
    }
}

/// One query certificate: the claim (assumptions over the shared assert
/// stream, plus optional blocking clauses) and its evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryCert {
    /// Assumption term ids (canonically sorted).
    pub assumptions: Vec<u32>,
    /// How many of the store's base asserts were installed when this
    /// query was certified (the replay asserts exactly that prefix).
    pub asserts_upto: usize,
    /// Extra clauses (ALL-SAT blocking), as term-id lists.
    pub blocking: Vec<Vec<u32>>,
    /// The verdict and its evidence.
    pub outcome: CertOutcome,
    /// Whether the engine-side self-check (structural evaluation of
    /// every asserted root for `Sat`) passed.
    pub self_checked: bool,
}

/// The per-procedure certificate store: a shared term table, the base
/// assert stream, and deduplicated certificates.
#[derive(Debug, Clone, Default)]
pub struct CertStore {
    /// Serialized term nodes, by term id.
    pub terms: BTreeMap<u32, TermNode>,
    /// Base assert root term ids, in installation order.
    pub asserts: Vec<u32>,
    /// The certificates.
    pub certs: Vec<QueryCert>,
    /// Memo: canonical (assumptions, blocking) → certificate index.
    memo: HashMap<(Vec<TermId>, Vec<Vec<TermId>>), usize>,
}

fn lit_signed(l: Lit) -> i64 {
    let v = i64::from(l.var().0) + 1;
    if l.is_positive() {
        v
    } else {
        -v
    }
}

impl CertStore {
    /// An empty store.
    pub fn new() -> CertStore {
        CertStore::default()
    }

    /// Serializes `t` (and its reachable subterms) into the shared term
    /// table.
    pub fn intern_term(&mut self, ctx: &Ctx, t: TermId) {
        if self.terms.contains_key(&t.0) {
            return;
        }
        let node = match ctx.term(t).clone() {
            Term::True => TermNode::True,
            Term::False => TermNode::False,
            Term::BoolVar(n) => TermNode::BoolVar(n),
            Term::Not(a) => {
                self.intern_term(ctx, a);
                TermNode::Not(a.0)
            }
            Term::And(ps) => {
                for &p in &ps {
                    self.intern_term(ctx, p);
                }
                TermNode::And(ps.iter().map(|p| p.0).collect())
            }
            Term::Or(ps) => {
                for &p in &ps {
                    self.intern_term(ctx, p);
                }
                TermNode::Or(ps.iter().map(|p| p.0).collect())
            }
            Term::Implies(a, b) => {
                self.intern_term(ctx, a);
                self.intern_term(ctx, b);
                TermNode::Implies(a.0, b.0)
            }
            Term::Iff(a, b) => {
                self.intern_term(ctx, a);
                self.intern_term(ctx, b);
                TermNode::Iff(a.0, b.0)
            }
            Term::Eq(a, b) => {
                self.intern_term(ctx, a);
                self.intern_term(ctx, b);
                TermNode::Eq(a.0, b.0)
            }
            Term::Le(a, b) => {
                self.intern_term(ctx, a);
                self.intern_term(ctx, b);
                TermNode::Le(a.0, b.0)
            }
            Term::Lt(a, b) => {
                self.intern_term(ctx, a);
                self.intern_term(ctx, b);
                TermNode::Lt(a.0, b.0)
            }
            Term::IntVar(n) => TermNode::IntVar(n),
            Term::IntConst(c) => TermNode::IntConst(c),
            Term::Add(ps) => {
                for &p in &ps {
                    self.intern_term(ctx, p);
                }
                TermNode::Add(ps.iter().map(|p| p.0).collect())
            }
            Term::MulC(c, a) => {
                self.intern_term(ctx, a);
                TermNode::MulC(c, a.0)
            }
            Term::App(f, args) => {
                for &a in &args {
                    self.intern_term(ctx, a);
                }
                TermNode::App(f, args.iter().map(|a| a.0).collect())
            }
            Term::Read(m, i) => {
                self.intern_term(ctx, m);
                self.intern_term(ctx, i);
                TermNode::Read(m.0, i.0)
            }
            Term::Write(m, i, v) => {
                self.intern_term(ctx, m);
                self.intern_term(ctx, i);
                self.intern_term(ctx, v);
                TermNode::Write(m.0, i.0, v.0)
            }
            Term::MapVar(n) => TermNode::MapVar(n),
            Term::Ite(c, a, b) => {
                self.intern_term(ctx, c);
                self.intern_term(ctx, a);
                self.intern_term(ctx, b);
                TermNode::Ite(c.0, a.0, b.0)
            }
        };
        self.terms.insert(t.0, node);
    }

    /// Records a base assert root (mirrors the analyzer's
    /// `base_asserts` stream).
    pub fn push_assert(&mut self, ctx: &Ctx, t: TermId) {
        self.intern_term(ctx, t);
        self.asserts.push(t.0);
    }

    /// Looks up a memoized certificate for the canonical query key.
    pub fn lookup(&self, assumptions: &[TermId], blocking: &[Vec<TermId>]) -> Option<usize> {
        self.memo
            .get(&(assumptions.to_vec(), blocking.to_vec()))
            .copied()
    }

    /// Certifies the query by fresh replay of `base_asserts[..upto]`
    /// plus `blocking` under `assumptions` (already canonical), and
    /// returns the certificate index. Deduplicated by query key.
    #[allow(clippy::too_many_arguments)]
    pub fn certify(
        &mut self,
        ctx: &mut Ctx,
        base_asserts: &[TermId],
        assumptions: &[TermId],
        blocking: &[Vec<TermId>],
    ) -> usize {
        if let Some(i) = self.lookup(assumptions, blocking) {
            return i;
        }
        for &t in base_asserts {
            self.intern_term(ctx, t);
        }
        while self.asserts.len() < base_asserts.len() {
            self.asserts.push(base_asserts[self.asserts.len()].0);
        }
        for cl in blocking {
            for &t in cl {
                self.intern_term(ctx, t);
            }
        }
        for &t in assumptions {
            self.intern_term(ctx, t);
        }

        let mut solver = Solver::new();
        solver.enable_proof();
        for &t in base_asserts {
            solver.assert_term(ctx, t);
        }
        for cl in blocking {
            solver.add_clause_terms(ctx, cl);
        }
        let result = solver.check(ctx, assumptions);

        // Tag payloads can mention terms created inside the solver
        // (purified atoms, branch-lemma bounds): serialize those too.
        let tags: Vec<ClauseTag> = solver.clause_tags().to_vec();
        for tag in &tags {
            match tag {
                ClauseTag::Assert { term } => self.intern_term(ctx, *term),
                ClauseTag::Purify { term, ite, var } => {
                    self.intern_term(ctx, *term);
                    self.intern_term(ctx, *ite);
                    self.intern_term(ctx, *var);
                }
                ClauseTag::Tseitin { term } => self.intern_term(ctx, *term),
                ClauseTag::Theory { parts } => {
                    for &(t, _) in parts {
                        self.intern_term(ctx, t);
                    }
                }
                ClauseTag::External { parts } => {
                    for &t in parts {
                        self.intern_term(ctx, t);
                    }
                }
            }
        }

        let outcome = match result {
            SmtResult::Sat => {
                let roots: Vec<TermId> = base_asserts
                    .iter()
                    .chain(assumptions.iter())
                    .copied()
                    .collect();
                let model = extract_model(ctx, &solver, &roots);
                CertOutcome::Sat(model)
            }
            SmtResult::Unsat => {
                let core: Vec<u32> = solver
                    .unsat_core_terms(assumptions)
                    .iter()
                    .map(|t| t.0)
                    .collect();
                let mut lits = BTreeMap::new();
                for (t, l) in solver.lit_table() {
                    if self.terms.contains_key(&t.0) {
                        lits.insert(t.0, lit_signed(l));
                    }
                }
                let events = solver
                    .proof_events()
                    .iter()
                    .map(|e| match e {
                        ProofEvent::Input { lits, tag } => CertEvent::Input {
                            lits: lits.iter().map(|&l| lit_signed(l)).collect(),
                            tag: serialize_tag(&tags, *tag),
                        },
                        ProofEvent::Learnt { lits } => CertEvent::Learnt {
                            lits: lits.iter().map(|&l| lit_signed(l)).collect(),
                        },
                    })
                    .collect();
                CertOutcome::Unsat(ProofData { lits, events, core })
            }
            SmtResult::Unknown => CertOutcome::Unknown,
        };

        let cert = QueryCert {
            assumptions: assumptions.iter().map(|t| t.0).collect(),
            asserts_upto: base_asserts.len(),
            blocking: blocking
                .iter()
                .map(|cl| cl.iter().map(|t| t.0).collect())
                .collect(),
            outcome,
            self_checked: false,
        };
        let mut cert = cert;
        cert.self_checked = self.self_check(&cert);
        let idx = self.certs.len();
        self.certs.push(cert);
        self.memo
            .insert((assumptions.to_vec(), blocking.to_vec()), idx);
        idx
    }

    /// Engine-side re-evaluation of a certificate against its own
    /// serialized data (the same semantics the independent checker
    /// applies): for `Sat`, every asserted root and assumption must
    /// evaluate to *true* under the model. `Unsat`/`Unknown` pass here
    /// (their validation is the checker's proof replay).
    pub fn self_check(&self, cert: &QueryCert) -> bool {
        match &cert.outcome {
            CertOutcome::Sat(model) => {
                let mut eval = Evaluator::new(&self.terms, model);
                self.asserts[..cert.asserts_upto]
                    .iter()
                    .chain(cert.assumptions.iter())
                    .all(|&t| eval.eval_bool(t) == Some(true))
            }
            _ => true,
        }
    }
}

fn serialize_tag(tags: &[ClauseTag], idx: u32) -> CertTag {
    match tags.get(idx as usize) {
        None => CertTag::External { parts: Vec::new() },
        Some(ClauseTag::Assert { term }) => CertTag::Assert { term: term.0 },
        Some(ClauseTag::Purify { term, ite, var }) => CertTag::Purify {
            term: term.0,
            ite: ite.0,
            var: var.0,
        },
        Some(ClauseTag::Tseitin { term }) => CertTag::Tseitin { term: term.0 },
        Some(ClauseTag::Theory { parts }) => CertTag::Theory {
            parts: parts.iter().map(|&(t, p)| (t.0, p)).collect(),
        },
        Some(ClauseTag::External { parts }) => CertTag::External {
            parts: parts.iter().map(|t| t.0).collect(),
        },
    }
}

/// Distinct default values: maps and functions get defaults far from
/// program constants and from the solver's own synthesized witnesses,
/// distinct per symbol so extensional (dis)equality of canonical values
/// is decidable from the finite tables.
const MAP_DEFAULT_BASE: i64 = 900_000_001;
const FUNC_DEFAULT_BASE: i64 = 910_000_001;
const SYNTH_BASE: i64 = 920_000_001;

/// Extracts a full first-order model from a satisfied replay solver:
/// integer/boolean variable values straight from the solver's witness,
/// map and function tables populated from the recorded values of every
/// reachable `Read`/`App` term (consulting the solver's purified-term
/// rewrites), with distinct per-symbol defaults for unconstrained
/// points. The solver's collision lemmas guarantee the recorded values
/// are congruence-consistent, so the tables are well defined.
fn extract_model(ctx: &Ctx, solver: &Solver, roots: &[TermId]) -> ModelTables {
    // Reachable term set, sorted for determinism.
    let mut reach: Vec<TermId> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut stack: Vec<TermId> = roots.to_vec();
    while let Some(t) = stack.pop() {
        if !seen.insert(t) {
            continue;
        }
        reach.push(t);
        match ctx.term(t) {
            Term::Not(a) | Term::MulC(_, a) => stack.push(*a),
            Term::And(ps) | Term::Or(ps) | Term::Add(ps) => stack.extend(ps.iter().copied()),
            Term::App(_, ps) => stack.extend(ps.iter().copied()),
            Term::Implies(a, b)
            | Term::Iff(a, b)
            | Term::Eq(a, b)
            | Term::Le(a, b)
            | Term::Lt(a, b)
            | Term::Read(a, b) => {
                stack.push(*a);
                stack.push(*b);
            }
            Term::Write(a, b, c) | Term::Ite(a, b, c) => {
                stack.push(*a);
                stack.push(*b);
                stack.push(*c);
            }
            _ => {}
        }
    }
    reach.sort_unstable();

    // The solver records values against purified terms.
    let solver_vals: HashMap<TermId, i64> = solver.model_int_terms().collect();
    let val_of = |t: TermId| -> Option<i64> {
        solver_vals
            .get(&t)
            .or_else(|| solver.purified_of(t).and_then(|p| solver_vals.get(&p)))
            .copied()
    };

    let mut model = ModelTables::default();
    // Distinct defaults per symbol (sorted symbol order).
    let mut map_names: Vec<String> = Vec::new();
    let mut func_names: Vec<String> = Vec::new();
    for &t in &reach {
        match ctx.term(t) {
            Term::MapVar(n) if !map_names.contains(n) => map_names.push(n.clone()),
            Term::App(f, _) if !func_names.contains(f) => func_names.push(f.clone()),
            _ => {}
        }
    }
    map_names.sort_unstable();
    func_names.sort_unstable();
    for (i, n) in map_names.iter().enumerate() {
        model.maps.insert(
            n.clone(),
            MapValue {
                default: MAP_DEFAULT_BASE + i as i64,
                entries: BTreeMap::new(),
            },
        );
    }
    for (i, n) in func_names.iter().enumerate() {
        model.funcs.insert(
            n.clone(),
            FuncValue {
                default: FUNC_DEFAULT_BASE + i as i64,
                entries: BTreeMap::new(),
            },
        );
    }

    // Base variable values.
    for &t in &reach {
        match ctx.term(t) {
            Term::IntVar(n) => {
                model.ints.insert(n.clone(), val_of(t).unwrap_or(0));
            }
            Term::BoolVar(n) => {
                model
                    .bools
                    .insert(n.clone(), solver.bool_value(t).unwrap_or(false));
            }
            _ => {}
        }
    }

    // Populate map and function tables from recorded term values. Int
    // evaluation is structural, so indices/arguments reduce to the base
    // variable values above; process sorted so ties resolve
    // deterministically.
    let mut synth = SYNTH_BASE;
    let mut int_memo: HashMap<TermId, i64> = HashMap::new();
    for &t in &reach {
        match ctx.term(t) {
            Term::Read(..) | Term::App(..) => {
                eval_populate(ctx, t, &val_of, &mut model, &mut int_memo, &mut synth);
            }
            _ => {}
        }
    }
    model
}

/// Bottom-up integer evaluation that *populates* map/function tables:
/// when a `Read` resolves through writes to a base map (or an `App` to
/// its function) and the solver recorded a value for the term, that
/// value is installed in the table; unconstrained points draw fresh
/// synthesized values so later evaluations stay consistent.
fn eval_populate(
    ctx: &Ctx,
    t: TermId,
    val_of: &dyn Fn(TermId) -> Option<i64>,
    model: &mut ModelTables,
    memo: &mut HashMap<TermId, i64>,
    synth: &mut i64,
) -> i64 {
    if let Some(&v) = memo.get(&t) {
        return v;
    }
    let v = match ctx.term(t).clone() {
        Term::IntConst(c) => c,
        Term::IntVar(n) => model.ints.get(&n).copied().unwrap_or(0),
        Term::Add(ps) => ps
            .iter()
            .map(|&p| eval_populate(ctx, p, val_of, model, memo, synth))
            .sum(),
        Term::MulC(c, a) => c.wrapping_mul(eval_populate(ctx, a, val_of, model, memo, synth)),
        Term::Ite(c, a, b) => {
            let cond = eval_bool_live(ctx, c, val_of, model, memo, synth);
            if cond {
                eval_populate(ctx, a, val_of, model, memo, synth)
            } else {
                eval_populate(ctx, b, val_of, model, memo, synth)
            }
        }
        Term::App(f, args) => {
            let vals: Vec<i64> = args
                .iter()
                .map(|&a| eval_populate(ctx, a, val_of, model, memo, synth))
                .collect();
            let table = model.funcs.entry(f).or_default();
            match table.entries.get(&vals) {
                Some(&v) => v,
                None => {
                    let v = val_of(t).unwrap_or_else(|| {
                        *synth += 1;
                        *synth
                    });
                    table.entries.insert(vals, v);
                    v
                }
            }
        }
        Term::Read(m, i) => {
            let iv = eval_populate(ctx, i, val_of, model, memo, synth);
            resolve_read(ctx, m, iv, t, val_of, model, memo, synth)
        }
        _ => 0,
    };
    memo.insert(t, v);
    v
}

/// Resolves `read(m, iv)` through writes and ites down to a base map
/// variable, populating the base table with the term's recorded value
/// when the point was previously unconstrained.
#[allow(clippy::too_many_arguments)]
fn resolve_read(
    ctx: &Ctx,
    m: TermId,
    iv: i64,
    read_term: TermId,
    val_of: &dyn Fn(TermId) -> Option<i64>,
    model: &mut ModelTables,
    memo: &mut HashMap<TermId, i64>,
    synth: &mut i64,
) -> i64 {
    match ctx.term(m).clone() {
        Term::Write(inner, wi, wv) => {
            let wiv = eval_populate(ctx, wi, val_of, model, memo, synth);
            if wiv == iv {
                eval_populate(ctx, wv, val_of, model, memo, synth)
            } else {
                resolve_read(ctx, inner, iv, read_term, val_of, model, memo, synth)
            }
        }
        Term::Ite(c, a, b) => {
            let cond = eval_bool_live(ctx, c, val_of, model, memo, synth);
            let chosen = if cond { a } else { b };
            resolve_read(ctx, chosen, iv, read_term, val_of, model, memo, synth)
        }
        Term::MapVar(n) => {
            let table = model.maps.entry(n).or_default();
            match table.entries.get(&iv) {
                Some(&v) => v,
                None => {
                    let v = val_of(read_term).unwrap_or(table.default);
                    table.entries.insert(iv, v);
                    v
                }
            }
        }
        // Map-sorted terms are variables, writes, or ites.
        _ => 0,
    }
}

/// Boolean evaluation during model extraction (for ite conditions):
/// mirrors the checker's semantics over the live `Ctx`.
fn eval_bool_live(
    ctx: &Ctx,
    t: TermId,
    val_of: &dyn Fn(TermId) -> Option<i64>,
    model: &mut ModelTables,
    memo: &mut HashMap<TermId, i64>,
    synth: &mut i64,
) -> bool {
    match ctx.term(t).clone() {
        Term::True => true,
        Term::False => false,
        Term::BoolVar(n) => model.bools.get(&n).copied().unwrap_or(false),
        Term::Not(a) => !eval_bool_live(ctx, a, val_of, model, memo, synth),
        Term::And(ps) => ps
            .iter()
            .all(|&p| eval_bool_live(ctx, p, val_of, model, memo, synth)),
        Term::Or(ps) => ps
            .iter()
            .any(|&p| eval_bool_live(ctx, p, val_of, model, memo, synth)),
        Term::Implies(a, b) => {
            !eval_bool_live(ctx, a, val_of, model, memo, synth)
                || eval_bool_live(ctx, b, val_of, model, memo, synth)
        }
        Term::Iff(a, b) => {
            eval_bool_live(ctx, a, val_of, model, memo, synth)
                == eval_bool_live(ctx, b, val_of, model, memo, synth)
        }
        Term::Eq(a, b) => {
            if ctx.sort(a) == TermSort::Map {
                canon_map_live(ctx, a, val_of, model, memo, synth)
                    == canon_map_live(ctx, b, val_of, model, memo, synth)
            } else {
                eval_populate(ctx, a, val_of, model, memo, synth)
                    == eval_populate(ctx, b, val_of, model, memo, synth)
            }
        }
        Term::Le(a, b) => {
            eval_populate(ctx, a, val_of, model, memo, synth)
                <= eval_populate(ctx, b, val_of, model, memo, synth)
        }
        Term::Lt(a, b) => {
            eval_populate(ctx, a, val_of, model, memo, synth)
                < eval_populate(ctx, b, val_of, model, memo, synth)
        }
        _ => false,
    }
}

/// The canonical (extensional) value of a map term under the model:
/// default plus normalized finite entries (entries equal to the default
/// are dropped, so extensional equality is table equality).
fn canon_map_live(
    ctx: &Ctx,
    t: TermId,
    val_of: &dyn Fn(TermId) -> Option<i64>,
    model: &mut ModelTables,
    memo: &mut HashMap<TermId, i64>,
    synth: &mut i64,
) -> (i64, BTreeMap<i64, i64>) {
    match ctx.term(t).clone() {
        Term::MapVar(n) => {
            let table = model.maps.entry(n).or_default();
            let default = table.default;
            let entries = table
                .entries
                .iter()
                .filter(|&(_, &v)| v != default)
                .map(|(&k, &v)| (k, v))
                .collect();
            (default, entries)
        }
        Term::Write(m, i, v) => {
            let (default, mut entries) = canon_map_live(ctx, m, val_of, model, memo, synth);
            let iv = eval_populate(ctx, i, val_of, model, memo, synth);
            let vv = eval_populate(ctx, v, val_of, model, memo, synth);
            if vv == default {
                entries.remove(&iv);
            } else {
                entries.insert(iv, vv);
            }
            (default, entries)
        }
        Term::Ite(c, a, b) => {
            let cond = eval_bool_live(ctx, c, val_of, model, memo, synth);
            let chosen = if cond { a } else { b };
            canon_map_live(ctx, chosen, val_of, model, memo, synth)
        }
        _ => (0, BTreeMap::new()),
    }
}

/// Structural evaluator over *serialized* certificate data — the
/// engine-side twin of the independent checker's evaluator, used for
/// the pre-emission self-check.
pub struct Evaluator<'a> {
    terms: &'a BTreeMap<u32, TermNode>,
    model: &'a ModelTables,
    int_memo: HashMap<u32, i64>,
}

impl<'a> Evaluator<'a> {
    /// An evaluator over the given term table and model.
    pub fn new(terms: &'a BTreeMap<u32, TermNode>, model: &'a ModelTables) -> Evaluator<'a> {
        Evaluator {
            terms,
            model,
            int_memo: HashMap::new(),
        }
    }

    /// Evaluates a boolean term (`None` on malformed data).
    pub fn eval_bool(&mut self, t: u32) -> Option<bool> {
        Some(match self.terms.get(&t)?.clone() {
            TermNode::True => true,
            TermNode::False => false,
            TermNode::BoolVar(n) => self.model.bools.get(&n).copied().unwrap_or(false),
            TermNode::Not(a) => !self.eval_bool(a)?,
            TermNode::And(ps) => {
                for p in ps {
                    if !self.eval_bool(p)? {
                        return Some(false);
                    }
                }
                true
            }
            TermNode::Or(ps) => {
                for p in ps {
                    if self.eval_bool(p)? {
                        return Some(true);
                    }
                }
                false
            }
            TermNode::Implies(a, b) => !self.eval_bool(a)? || self.eval_bool(b)?,
            TermNode::Iff(a, b) => self.eval_bool(a)? == self.eval_bool(b)?,
            TermNode::Eq(a, b) => {
                if self.is_map(a) {
                    self.canon_map(a)? == self.canon_map(b)?
                } else {
                    self.eval_int(a)? == self.eval_int(b)?
                }
            }
            TermNode::Le(a, b) => self.eval_int(a)? <= self.eval_int(b)?,
            TermNode::Lt(a, b) => self.eval_int(a)? < self.eval_int(b)?,
            TermNode::Ite(c, a, b) => {
                if self.eval_bool(c)? {
                    self.eval_bool(a)?
                } else {
                    self.eval_bool(b)?
                }
            }
            _ => return None,
        })
    }

    fn is_map(&self, t: u32) -> bool {
        match self.terms.get(&t) {
            Some(TermNode::MapVar(_) | TermNode::Write(..)) => true,
            Some(TermNode::Ite(_, a, _)) => self.is_map(*a),
            _ => false,
        }
    }

    /// Evaluates an integer term (`None` on malformed data).
    pub fn eval_int(&mut self, t: u32) -> Option<i64> {
        if let Some(&v) = self.int_memo.get(&t) {
            return Some(v);
        }
        let v = match self.terms.get(&t)?.clone() {
            TermNode::IntConst(c) => c,
            TermNode::IntVar(n) => self.model.ints.get(&n).copied().unwrap_or(0),
            TermNode::Add(ps) => {
                let mut s = 0i64;
                for p in ps {
                    s = s.wrapping_add(self.eval_int(p)?);
                }
                s
            }
            TermNode::MulC(c, a) => c.wrapping_mul(self.eval_int(a)?),
            TermNode::Ite(c, a, b) => {
                if self.eval_bool(c)? {
                    self.eval_int(a)?
                } else {
                    self.eval_int(b)?
                }
            }
            TermNode::App(f, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval_int(a)?);
                }
                match self.model.funcs.get(&f) {
                    Some(fv) => fv.entries.get(&vals).copied().unwrap_or(fv.default),
                    None => 0,
                }
            }
            TermNode::Read(m, i) => {
                let iv = self.eval_int(i)?;
                let (default, entries) = self.canon_map(m)?;
                entries.get(&iv).copied().unwrap_or(default)
            }
            _ => return None,
        };
        self.int_memo.insert(t, v);
        Some(v)
    }

    /// Canonical extensional map value: (default, normalized entries).
    pub fn canon_map(&mut self, t: u32) -> Option<(i64, BTreeMap<i64, i64>)> {
        Some(match self.terms.get(&t)?.clone() {
            TermNode::MapVar(n) => match self.model.maps.get(&n) {
                Some(mv) => {
                    let entries = mv
                        .entries
                        .iter()
                        .filter(|&(_, &v)| v != mv.default)
                        .map(|(&k, &v)| (k, v))
                        .collect();
                    (mv.default, entries)
                }
                None => (0, BTreeMap::new()),
            },
            TermNode::Write(m, i, v) => {
                let (default, mut entries) = self.canon_map(m)?;
                let iv = self.eval_int(i)?;
                let vv = self.eval_int(v)?;
                if vv == default {
                    entries.remove(&iv);
                } else {
                    entries.insert(iv, vv);
                }
                (default, entries)
            }
            TermNode::Ite(c, a, b) => {
                if self.eval_bool(c)? {
                    self.canon_map(a)?
                } else {
                    self.canon_map(b)?
                }
            }
            _ => return None,
        })
    }
}
