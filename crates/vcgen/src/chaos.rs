//! Deterministic fault injection for the analysis runtime.
//!
//! A production triage service must survive solver misbehavior: queries
//! that come back `Unknown`, queries that burn the whole conflict pool,
//! queries that stall, and outright panics in the engine. The chaos
//! harness simulates all four *deterministically*: a [`ChaosConfig`]
//! seeds a splitmix64 stream, [`ChaosConfig::for_proc`] derives an
//! independent stream per procedure (so injection is reproducible
//! regardless of how the `ProgramAnalysis` thread pool schedules
//! procedures), and the analyzer draws from the stream once per
//! `check()`.
//!
//! With `rate = 0.0` the engine draws nothing and the analyzer's
//! behavior is bit-for-bit identical to a run without the harness —
//! the chaos-equivalence test in `acspec-core` pins this down.

use crate::stage::FaultReason;

/// One splitmix64 step: advances the state and returns a well-mixed
/// 64-bit output. Small, fast, and reproducible everywhere — exactly
/// what a deterministic chaos stream needs (vendored-`rand` not
/// required).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over a procedure name, for mixing into the seed.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Configuration for the fault-injection harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Base seed for the deterministic fault stream.
    pub seed: u64,
    /// Probability in `[0, 1]` that any given `check()` draws a fault.
    /// `0.0` injects nothing (and the analyzer behaves identically to a
    /// run without the harness).
    pub rate: f64,
}

impl ChaosConfig {
    /// A harness with the given seed and per-query fault rate.
    pub fn new(seed: u64, rate: f64) -> Self {
        ChaosConfig {
            seed,
            rate: rate.clamp(0.0, 1.0),
        }
    }

    /// Derives the per-procedure configuration: same rate, seed mixed
    /// with the procedure name. Each procedure then owns an independent
    /// deterministic stream, so the injected faults do not depend on
    /// thread scheduling or on which other procedures ran first.
    pub fn for_proc(&self, proc_name: &str) -> ChaosConfig {
        let mut state = self.seed ^ fnv1a(proc_name);
        ChaosConfig {
            seed: splitmix64(&mut state),
            rate: self.rate,
        }
    }
}

/// A fault drawn from the chaos stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosFault {
    /// The query "returns" `Unknown` (reason [`FaultReason::Chaos`]).
    Unknown,
    /// A large slice of the remaining conflict budget is burned before
    /// the query runs, simulating a pathological solver call.
    BudgetBlowup,
    /// A short stall is inserted before the query, simulating latency.
    Latency,
    /// The engine panics, exercising the `catch_unwind` isolation in
    /// the `ProgramAnalysis` worker loop.
    Panic,
}

impl ChaosFault {
    const ALL: [ChaosFault; 4] = [
        ChaosFault::Unknown,
        ChaosFault::BudgetBlowup,
        ChaosFault::Latency,
        ChaosFault::Panic,
    ];

    /// Stable lowercase name (telemetry counter suffixes).
    pub fn name(self) -> &'static str {
        match self {
            ChaosFault::Unknown => "unknown",
            ChaosFault::BudgetBlowup => "blowup",
            ChaosFault::Latency => "latency",
            ChaosFault::Panic => "panic",
        }
    }

    /// The reason carried by query outcomes this fault aborts.
    pub fn reason(self) -> FaultReason {
        FaultReason::Chaos
    }
}

/// Monotone counters for injected faults (telemetry's `chaos.*`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Queries that consulted the stream.
    pub draws: u64,
    /// Injected `Unknown` outcomes.
    pub unknowns: u64,
    /// Injected budget blowups.
    pub blowups: u64,
    /// Injected latency stalls.
    pub latencies: u64,
    /// Injected panics.
    pub panics: u64,
}

impl ChaosStats {
    /// Total faults injected (excludes fault-free draws).
    pub fn injected(&self) -> u64 {
        self.unknowns + self.blowups + self.latencies + self.panics
    }

    /// The counter deltas accumulated since `earlier`.
    pub fn since(&self, earlier: &ChaosStats) -> ChaosStats {
        ChaosStats {
            draws: self.draws - earlier.draws,
            unknowns: self.unknowns - earlier.unknowns,
            blowups: self.blowups - earlier.blowups,
            latencies: self.latencies - earlier.latencies,
            panics: self.panics - earlier.panics,
        }
    }
}

/// The per-analyzer fault stream: wraps the solver's `check()` path,
/// deciding before each query whether to inject a fault and which kind.
#[derive(Debug)]
pub struct ChaosSolver {
    state: u64,
    rate: f64,
    stats: ChaosStats,
}

impl ChaosSolver {
    /// Builds the stream for one analyzer from its (already
    /// per-procedure-mixed) configuration.
    pub fn new(config: ChaosConfig) -> Self {
        ChaosSolver {
            state: config.seed,
            rate: config.rate.clamp(0.0, 1.0),
            stats: ChaosStats::default(),
        }
    }

    /// Draws the next decision: `None` (let the query run) or a fault.
    /// Exactly one or two splitmix64 steps per call, so the stream is a
    /// pure function of the seed and the number of prior draws.
    pub fn next_fault(&mut self) -> Option<ChaosFault> {
        self.stats.draws += 1;
        if self.rate <= 0.0 {
            return None;
        }
        // 53 mantissa bits give a uniform draw in [0, 1).
        let u = (splitmix64(&mut self.state) >> 11) as f64 / (1u64 << 53) as f64;
        if u >= self.rate {
            return None;
        }
        let kind = ChaosFault::ALL[(splitmix64(&mut self.state) % 4) as usize];
        match kind {
            ChaosFault::Unknown => self.stats.unknowns += 1,
            ChaosFault::BudgetBlowup => self.stats.blowups += 1,
            ChaosFault::Latency => self.stats.latencies += 1,
            ChaosFault::Panic => self.stats.panics += 1,
        }
        Some(kind)
    }

    /// The monotone injection counters.
    pub fn stats(&self) -> ChaosStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let cfg = ChaosConfig::new(7, 0.5);
        let mut a = ChaosSolver::new(cfg);
        let mut b = ChaosSolver::new(cfg);
        let sa: Vec<_> = (0..256).map(|_| a.next_fault()).collect();
        let sb: Vec<_> = (0..256).map(|_| b.next_fault()).collect();
        assert_eq!(sa, sb);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn zero_rate_never_injects() {
        let mut s = ChaosSolver::new(ChaosConfig::new(42, 0.0));
        for _ in 0..1000 {
            assert_eq!(s.next_fault(), None);
        }
        assert_eq!(s.stats().injected(), 0);
        assert_eq!(s.stats().draws, 1000);
    }

    #[test]
    fn full_rate_injects_every_kind() {
        let mut s = ChaosSolver::new(ChaosConfig::new(42, 1.0));
        for _ in 0..1000 {
            assert!(s.next_fault().is_some());
        }
        let st = s.stats();
        assert_eq!(st.injected(), 1000);
        assert!(st.unknowns > 0 && st.blowups > 0 && st.latencies > 0 && st.panics > 0);
    }

    #[test]
    fn per_proc_streams_are_independent_and_deterministic() {
        let base = ChaosConfig::new(42, 0.3);
        let f = base.for_proc("foo");
        let g = base.for_proc("bar");
        assert_ne!(f.seed, g.seed);
        assert_eq!(f, base.for_proc("foo"));

        let mut sf = ChaosSolver::new(f);
        let mut sg = ChaosSolver::new(g);
        let a: Vec<_> = (0..64).map(|_| sf.next_fault()).collect();
        let b: Vec<_> = (0..64).map(|_| sg.next_fault()).collect();
        assert_ne!(a, b, "distinct procedures should see distinct streams");
    }

    #[test]
    fn rate_is_roughly_respected() {
        let mut s = ChaosSolver::new(ChaosConfig::new(1, 0.1));
        let injected = (0..10_000).filter(|_| s.next_fault().is_some()).count();
        assert!(
            (500..1500).contains(&injected),
            "expected ~1000 of 10000, got {injected}"
        );
    }
}
