//! Deterministic fault injection for the analysis runtime.
//!
//! A production triage service must survive solver misbehavior: queries
//! that come back `Unknown`, queries that burn the whole conflict pool,
//! queries that stall, and outright panics in the engine. The chaos
//! harness simulates all four *deterministically*: a [`ChaosConfig`]
//! seeds a splitmix64 stream, [`ChaosConfig::for_proc`] derives an
//! independent stream per procedure (so injection is reproducible
//! regardless of how the `ProgramAnalysis` thread pool schedules
//! procedures), and the analyzer draws from the stream once per
//! `check()`.
//!
//! With `rate = 0.0` the engine draws nothing and the analyzer's
//! behavior is bit-for-bit identical to a run without the harness —
//! the chaos-equivalence test in `acspec-core` pins this down.

use crate::stage::FaultReason;

/// One splitmix64 step: advances the state and returns a well-mixed
/// 64-bit output. Small, fast, and reproducible everywhere — exactly
/// what a deterministic chaos stream needs (vendored-`rand` not
/// required).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over a procedure name, for mixing into the seed.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Configuration for the fault-injection harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Base seed for the deterministic fault stream.
    pub seed: u64,
    /// Probability in `[0, 1]` that any given `check()` draws a fault.
    /// `0.0` injects nothing (and the analyzer behaves identically to a
    /// run without the harness).
    pub rate: f64,
}

impl ChaosConfig {
    /// A harness with the given seed and per-query fault rate.
    pub fn new(seed: u64, rate: f64) -> Self {
        ChaosConfig {
            seed,
            rate: rate.clamp(0.0, 1.0),
        }
    }

    /// Derives the per-procedure configuration: same rate, seed mixed
    /// with the procedure name. Each procedure then owns an independent
    /// deterministic stream, so the injected faults do not depend on
    /// thread scheduling or on which other procedures ran first.
    pub fn for_proc(&self, proc_name: &str) -> ChaosConfig {
        let mut state = self.seed ^ fnv1a(proc_name);
        ChaosConfig {
            seed: splitmix64(&mut state),
            rate: self.rate,
        }
    }

    /// Derives the per-fork configuration for parallel search workers
    /// (portfolio forks, cube-and-conquer lanes): same rate, seed mixed
    /// with the fork index. Each worker owns an independent stream that
    /// is a pure function of `(parent seed, index)`, so injection stays
    /// schedule-independent no matter which thread runs which fork.
    pub fn for_fork(&self, index: u64) -> ChaosConfig {
        let mut state = self.seed ^ index;
        ChaosConfig {
            seed: splitmix64(&mut state),
            rate: self.rate,
        }
    }
}

/// A fault drawn from the chaos stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosFault {
    /// The query "returns" `Unknown` (reason [`FaultReason::Chaos`]).
    Unknown,
    /// A large slice of the remaining conflict budget is burned before
    /// the query runs, simulating a pathological solver call.
    BudgetBlowup,
    /// A short stall is inserted before the query, simulating latency.
    Latency,
    /// The engine panics, exercising the `catch_unwind` isolation in
    /// the `ProgramAnalysis` worker loop.
    Panic,
}

impl ChaosFault {
    const ALL: [ChaosFault; 4] = [
        ChaosFault::Unknown,
        ChaosFault::BudgetBlowup,
        ChaosFault::Latency,
        ChaosFault::Panic,
    ];

    /// Stable lowercase name (telemetry counter suffixes).
    pub fn name(self) -> &'static str {
        match self {
            ChaosFault::Unknown => "unknown",
            ChaosFault::BudgetBlowup => "blowup",
            ChaosFault::Latency => "latency",
            ChaosFault::Panic => "panic",
        }
    }

    /// The reason carried by query outcomes this fault aborts.
    pub fn reason(self) -> FaultReason {
        FaultReason::Chaos
    }
}

/// Monotone counters for injected faults (telemetry's `chaos.*`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Queries that consulted the stream.
    pub draws: u64,
    /// Injected `Unknown` outcomes.
    pub unknowns: u64,
    /// Injected budget blowups.
    pub blowups: u64,
    /// Injected latency stalls.
    pub latencies: u64,
    /// Injected panics.
    pub panics: u64,
}

impl ChaosStats {
    /// Total faults injected (excludes fault-free draws).
    pub fn injected(&self) -> u64 {
        self.unknowns + self.blowups + self.latencies + self.panics
    }

    /// The counter deltas accumulated since `earlier`.
    pub fn since(&self, earlier: &ChaosStats) -> ChaosStats {
        ChaosStats {
            draws: self.draws - earlier.draws,
            unknowns: self.unknowns - earlier.unknowns,
            blowups: self.blowups - earlier.blowups,
            latencies: self.latencies - earlier.latencies,
            panics: self.panics - earlier.panics,
        }
    }
}

/// The per-analyzer fault stream: wraps the solver's `check()` path,
/// deciding before each query whether to inject a fault and which kind.
#[derive(Debug)]
pub struct ChaosSolver {
    state: u64,
    rate: f64,
    stats: ChaosStats,
}

impl ChaosSolver {
    /// Builds the stream for one analyzer from its (already
    /// per-procedure-mixed) configuration.
    pub fn new(config: ChaosConfig) -> Self {
        ChaosSolver {
            state: config.seed,
            rate: config.rate.clamp(0.0, 1.0),
            stats: ChaosStats::default(),
        }
    }

    /// Draws the next decision: `None` (let the query run) or a fault.
    /// Exactly one or two splitmix64 steps per call, so the stream is a
    /// pure function of the seed and the number of prior draws.
    pub fn next_fault(&mut self) -> Option<ChaosFault> {
        self.stats.draws += 1;
        if self.rate <= 0.0 {
            return None;
        }
        // 53 mantissa bits give a uniform draw in [0, 1).
        let u = (splitmix64(&mut self.state) >> 11) as f64 / (1u64 << 53) as f64;
        if u >= self.rate {
            return None;
        }
        let kind = ChaosFault::ALL[(splitmix64(&mut self.state) % 4) as usize];
        match kind {
            ChaosFault::Unknown => self.stats.unknowns += 1,
            ChaosFault::BudgetBlowup => self.stats.blowups += 1,
            ChaosFault::Latency => self.stats.latencies += 1,
            ChaosFault::Panic => self.stats.panics += 1,
        }
        Some(kind)
    }

    /// The monotone injection counters.
    pub fn stats(&self) -> ChaosStats {
        self.stats
    }
}

/// An I/O fault drawn by the store chaos stream ([`ChaosStore`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreFault {
    /// The entry is truncated mid-write (the writer "crashed" after
    /// flushing a prefix of the temp file).
    TornWrite,
    /// One bit of the written entry is flipped (media corruption).
    BitFlip,
    /// The write fails outright, as if the disk were full.
    Enospc,
    /// The read fails transiently; the store retries with backoff.
    ReadError,
}

impl StoreFault {
    const ALL: [StoreFault; 4] = [
        StoreFault::TornWrite,
        StoreFault::BitFlip,
        StoreFault::Enospc,
        StoreFault::ReadError,
    ];

    /// Stable lowercase name (telemetry counter suffixes).
    pub fn name(self) -> &'static str {
        match self {
            StoreFault::TornWrite => "torn_write",
            StoreFault::BitFlip => "bit_flip",
            StoreFault::Enospc => "enospc",
            StoreFault::ReadError => "read_error",
        }
    }
}

/// Monotone counters for injected store faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStoreStats {
    /// Store operations that consulted the stream.
    pub draws: u64,
    /// Injected torn writes.
    pub torn_writes: u64,
    /// Injected bit flips.
    pub bit_flips: u64,
    /// Injected full-disk write failures.
    pub enospcs: u64,
    /// Injected transient read errors.
    pub read_errors: u64,
}

impl ChaosStoreStats {
    /// Total faults injected (excludes fault-free draws).
    pub fn injected(&self) -> u64 {
        self.torn_writes + self.bit_flips + self.enospcs + self.read_errors
    }
}

/// Salt separating the load stream from the save stream for one key.
const STORE_OP_LOAD: u64 = 0x1b87_3c55_a05e_9d31;
/// Salt for the save stream.
const STORE_OP_SAVE: u64 = 0x7f4c_a9e3_5d21_66b7;

/// The store's deterministic I/O fault stream.
///
/// Unlike [`ChaosSolver`] (one stream per analyzer, advanced per query)
/// the store is shared across worker threads, so a single advancing
/// stream would make injection depend on thread scheduling. Instead
/// every decision is a *pure function* of `(seed, entry key, operation,
/// attempt)`: the same entry sees the same faults no matter which
/// thread touches it or in what order.
#[derive(Debug)]
pub struct ChaosStore {
    seed: u64,
    rate: f64,
    stats: ChaosStoreStats,
}

impl ChaosStore {
    /// Builds the stream from the shared chaos configuration (same seed
    /// and rate as the solver harness).
    pub fn new(config: ChaosConfig) -> Self {
        ChaosStore {
            seed: config.seed,
            rate: config.rate.clamp(0.0, 1.0),
            stats: ChaosStoreStats::default(),
        }
    }

    fn draw(&mut self, key: &str, op: u64, attempt: u64) -> Option<StoreFault> {
        self.stats.draws += 1;
        if self.rate <= 0.0 {
            return None;
        }
        let mut state = self.seed ^ fnv1a(key) ^ op ^ attempt.wrapping_mul(0x9e37_79b9);
        // 53 mantissa bits give a uniform draw in [0, 1).
        let u = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
        if u >= self.rate {
            return None;
        }
        let kind = StoreFault::ALL[(splitmix64(&mut state) % 4) as usize];
        match kind {
            StoreFault::TornWrite => self.stats.torn_writes += 1,
            StoreFault::BitFlip => self.stats.bit_flips += 1,
            StoreFault::Enospc => self.stats.enospcs += 1,
            StoreFault::ReadError => self.stats.read_errors += 1,
        }
        Some(kind)
    }

    /// Decides the fault (if any) for saving `key`. Read-class faults
    /// never fire on the save path.
    pub fn save_fault(&mut self, key: &str) -> Option<StoreFault> {
        match self.draw(key, STORE_OP_SAVE, 0) {
            Some(StoreFault::ReadError) | None => None,
            f => f,
        }
    }

    /// Decides whether loading `key` (retry number `attempt`, starting
    /// at 0) fails transiently. Write-class faults never fire on the
    /// load path — corruption is injected at write time so a damaged
    /// entry stays damaged across retries, like real media.
    pub fn load_fault(&mut self, key: &str, attempt: u64) -> bool {
        matches!(
            self.draw(key, STORE_OP_LOAD, attempt),
            Some(StoreFault::ReadError)
        )
    }

    /// Mutates `bytes` according to a write-class fault: truncation
    /// point or flipped bit is drawn deterministically from the same
    /// `(seed, key)` stream.
    pub fn corrupt(&mut self, key: &str, fault: StoreFault, bytes: &mut Vec<u8>) {
        if bytes.is_empty() {
            return;
        }
        let mut state = self.seed ^ fnv1a(key) ^ STORE_OP_SAVE ^ 0x5bd1_e995;
        let r = splitmix64(&mut state);
        match fault {
            StoreFault::TornWrite => {
                bytes.truncate((r % bytes.len() as u64) as usize);
            }
            StoreFault::BitFlip => {
                let bit = (r % (bytes.len() as u64 * 8)) as usize;
                bytes[bit / 8] ^= 1 << (bit % 8);
            }
            StoreFault::Enospc | StoreFault::ReadError => {}
        }
    }

    /// The monotone injection counters.
    pub fn stats(&self) -> ChaosStoreStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let cfg = ChaosConfig::new(7, 0.5);
        let mut a = ChaosSolver::new(cfg);
        let mut b = ChaosSolver::new(cfg);
        let sa: Vec<_> = (0..256).map(|_| a.next_fault()).collect();
        let sb: Vec<_> = (0..256).map(|_| b.next_fault()).collect();
        assert_eq!(sa, sb);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn zero_rate_never_injects() {
        let mut s = ChaosSolver::new(ChaosConfig::new(42, 0.0));
        for _ in 0..1000 {
            assert_eq!(s.next_fault(), None);
        }
        assert_eq!(s.stats().injected(), 0);
        assert_eq!(s.stats().draws, 1000);
    }

    #[test]
    fn full_rate_injects_every_kind() {
        let mut s = ChaosSolver::new(ChaosConfig::new(42, 1.0));
        for _ in 0..1000 {
            assert!(s.next_fault().is_some());
        }
        let st = s.stats();
        assert_eq!(st.injected(), 1000);
        assert!(st.unknowns > 0 && st.blowups > 0 && st.latencies > 0 && st.panics > 0);
    }

    #[test]
    fn per_proc_streams_are_independent_and_deterministic() {
        let base = ChaosConfig::new(42, 0.3);
        let f = base.for_proc("foo");
        let g = base.for_proc("bar");
        assert_ne!(f.seed, g.seed);
        assert_eq!(f, base.for_proc("foo"));

        let mut sf = ChaosSolver::new(f);
        let mut sg = ChaosSolver::new(g);
        let a: Vec<_> = (0..64).map(|_| sf.next_fault()).collect();
        let b: Vec<_> = (0..64).map(|_| sg.next_fault()).collect();
        assert_ne!(a, b, "distinct procedures should see distinct streams");
    }

    #[test]
    fn store_zero_rate_never_injects() {
        let mut s = ChaosStore::new(ChaosConfig::new(42, 0.0));
        for i in 0..500 {
            assert_eq!(s.save_fault(&format!("k{i}")), None);
            assert!(!s.load_fault(&format!("k{i}"), 0));
        }
        assert_eq!(s.stats().injected(), 0);
    }

    #[test]
    fn store_faults_are_key_deterministic_and_order_independent() {
        let cfg = ChaosConfig::new(9, 0.7);
        let keys: Vec<String> = (0..64).map(|i| format!("proc{i}")).collect();
        let mut a = ChaosStore::new(cfg);
        let fa: Vec<_> = keys.iter().map(|k| a.save_fault(k)).collect();
        // Same keys drawn in reverse order from a fresh stream: each
        // key's decision must be unchanged.
        let mut b = ChaosStore::new(cfg);
        let mut fb: Vec<_> = keys.iter().rev().map(|k| b.save_fault(k)).collect();
        fb.reverse();
        assert_eq!(fa, fb);
        assert!(fa.iter().any(Option::is_some));
        assert!(!fa.iter().any(|f| matches!(f, Some(StoreFault::ReadError))));
    }

    #[test]
    fn store_read_retries_draw_independent_attempts() {
        let mut s = ChaosStore::new(ChaosConfig::new(3, 0.5));
        let per_attempt: Vec<bool> = (0..8).map(|a| s.load_fault("k", a)).collect();
        // Not all attempts agree at rate 0.5 over 8 draws (seeded so the
        // stream mixes); a stuck stream would make retries pointless.
        assert!(per_attempt.iter().any(|&x| x) && per_attempt.iter().any(|&x| !x));
        let mut t = ChaosStore::new(ChaosConfig::new(3, 0.5));
        let again: Vec<bool> = (0..8).map(|a| t.load_fault("k", a)).collect();
        assert_eq!(per_attempt, again);
    }

    #[test]
    fn corrupt_truncates_or_flips_exactly_one_bit() {
        let mut s = ChaosStore::new(ChaosConfig::new(11, 1.0));
        let golden: Vec<u8> = (0..=255).collect();
        let mut torn = golden.clone();
        s.corrupt("k", StoreFault::TornWrite, &mut torn);
        assert!(torn.len() < golden.len());
        assert_eq!(&golden[..torn.len()], &torn[..]);
        let mut flipped = golden.clone();
        s.corrupt("k", StoreFault::BitFlip, &mut flipped);
        assert_eq!(flipped.len(), golden.len());
        let diff_bits: u32 = golden
            .iter()
            .zip(&flipped)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff_bits, 1);
    }

    #[test]
    fn rate_is_roughly_respected() {
        let mut s = ChaosSolver::new(ChaosConfig::new(1, 0.1));
        let injected = (0..10_000).filter(|_| s.next_fault().is_some()).count();
        assert!(
            (500..1500).contains(&injected),
            "expected ~1000 of 10000, got {injected}"
        );
    }
}
