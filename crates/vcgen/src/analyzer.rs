//! The `Dead(f)` / `Fail(f)` query engine (§2.3).
//!
//! A desugared procedure is encoded once into the SMT solver by symbolic
//! execution with ite-merging at joins: every execution is characterized
//! by the initial values of inputs, the values of ν-constants, the values
//! chosen by `havoc`, and fresh boolean choice variables for `if (*)`.
//! Each tracked location `l` and assertion `a` gets a *guard literal*:
//!
//! * `g_l → pc_l` — forcing `g_l` asks for an execution reaching `l`;
//! * `g_a → pc_a ∧ ¬cond_a` — forcing `g_a` asks for an execution that
//!   reaches `a` and fails it.
//!
//! Input-state sets `f` (environment specifications) are installed as
//! *selector literals* `s → f`; `Dead`/`Fail` for any clause subset is then
//! a sequence of incremental SMT checks under assumptions — the
//! incremental interface the paper's prototype lacked (§5).
//!
//! Per §2.3, an execution blocked by a later `assume` still *reached*
//! earlier locations, and assertions terminate failing executions, so an
//! assertion contributes its condition to the path constraint of
//! everything after it.

use std::collections::BTreeSet;

use acspec_ir::arena::{TermArena, TermId as IrTermId, TermStats};
use acspec_ir::desugar::DesugaredProc;
use acspec_ir::expr::Formula;
use acspec_ir::locs::{enumerate_locations, LocId};
use acspec_ir::stmt::{AssertId, BranchCond, Stmt};
use acspec_ir::Sort;
use acspec_smt::{
    Ctx, PortfolioConfig, SearchPool, SearchSummary, SmtResult, Solver, SolverConfig,
    SolverCounters, TermId,
};

use crate::cache::{CacheStats, QueryCache};
use crate::chaos::{ChaosConfig, ChaosFault, ChaosSolver, ChaosStats};
use crate::evidence::CertStore;
use crate::stage::{Budget, Deadline, FaultReason, Stage, StageError, StageTable};
use crate::translate::{expr_to_term, formula_to_term, interned_to_term, Env, TranslateError};

/// A selector literal standing for an installed environment specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Selector(TermId);

/// Analysis failure: the per-procedure budget was exhausted (the paper's
/// timeouts, Figure 6/8 "TO" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timeout;

impl std::fmt::Display for Timeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "analysis budget exhausted")
    }
}

impl std::error::Error for Timeout {}

impl Timeout {
    /// Tags the timeout with the pipeline stage it interrupted,
    /// assuming conflict exhaustion. Callers holding the analyzer
    /// should prefer [`ProcAnalyzer::stage_error`], which carries the
    /// actual [`FaultReason`].
    pub fn at(self, stage: Stage) -> StageError {
        StageError {
            stage,
            reason: FaultReason::Conflicts,
        }
    }
}

/// How one SMT `check()` ended (telemetry's view of
/// [`SmtResult`](acspec_smt::SmtResult), plus budget pre-exhaustion,
/// deadline expiry, and injected faults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryOutcome {
    /// Satisfiable.
    Sat,
    /// Unsatisfiable.
    Unsat,
    /// No answer — the reason says which resource ran out (conflicts,
    /// wall-clock deadline, a structural cap, or an injected fault).
    Unknown {
        /// Why the query gave up.
        reason: FaultReason,
    },
}

impl QueryOutcome {
    /// Stable lowercase name for sinks.
    pub fn name(self) -> &'static str {
        match self {
            QueryOutcome::Sat => "sat",
            QueryOutcome::Unsat => "unsat",
            QueryOutcome::Unknown { .. } => "unknown",
        }
    }

    /// The fault reason, for `Unknown` outcomes.
    pub fn reason(self) -> Option<FaultReason> {
        match self {
            QueryOutcome::Unknown { reason } => Some(reason),
            _ => None,
        }
    }
}

/// One record per SMT `check()`: the solver-query hook's payload.
/// Captures the per-query delta of the SAT core's work counters and the
/// theory-conflict count, the outcome, and the query's wall-clock
/// latency, attributed to the pipeline stage active when it was issued.
#[derive(Debug, Clone, Copy)]
pub struct QueryRecord {
    /// The stage charged for the query.
    pub stage: Stage,
    /// Query index within this analyzer (0-based, issue order).
    pub seq: u32,
    /// How the query ended.
    pub outcome: QueryOutcome,
    /// Wall-clock seconds inside the solver.
    pub seconds: f64,
    /// Work-counter deltas for this query alone.
    pub counters: SolverCounters,
    /// CDCL search summary for this query alone (`Some` only when
    /// search recording is on, see
    /// [`ProcAnalyzer::set_search_recording`]).
    pub search: Option<SearchSummary>,
}

/// Configuration for a [`ProcAnalyzer`].
#[derive(Debug, Clone, Copy)]
pub struct AnalyzerConfig {
    /// Total SAT-conflict budget across all queries for this procedure
    /// (`None` = unlimited). This is the deterministic analogue of the
    /// paper's 10-second timeout.
    pub conflict_budget: Option<u64>,
    /// Enables the monotone dominance cache ([`crate::cache`]): queries
    /// answered by §2.3 monotonicity skip the solver. On by default;
    /// the `ACSPEC_NO_QUERY_CACHE` environment variable (set non-empty,
    /// not `0`) or the CLI `--no-query-cache` flag disables it. Reports
    /// are byte-identical either way — only query counts and wall time
    /// change.
    pub query_cache: bool,
    /// Wall-clock deadline per budget grant (`None` = unlimited, the
    /// default). The literal analogue of the paper's 10-second Z3
    /// timeout; off by default because wall-clock limits make runs
    /// nondeterministic. Checked before each query and surfaced as
    /// [`QueryOutcome::Unknown`] with [`FaultReason::Deadline`].
    pub deadline: Option<std::time::Duration>,
    /// Deterministic fault injection ([`crate::chaos`]); `None` (the
    /// default) runs without the harness. With `Some` and `rate = 0.0`
    /// the analyzer behaves identically to `None`.
    pub chaos: Option<ChaosConfig>,
    /// Luby restart base interval for every solver this analyzer builds
    /// (the incremental solver, witness replays, cube workers). Part of
    /// the options digest: changing it may change witness models.
    pub restart_base: u64,
    /// Races diversified solver forks on hard verdict-only queries
    /// ([`acspec_smt::Solver::check_portfolio`]). Off by default.
    /// Verdicts, merged counters, and reports are independent of thread
    /// count and scheduling; only wall time changes with parallelism.
    pub portfolio: bool,
    /// Cube-and-conquer split depth for ALL-SAT enumeration: `2^k`
    /// disjoint cubes over the `k` most active indicator variables, each
    /// enumerated on its own worker. `0` (the default) keeps the
    /// sequential session. The merged cover is bit-identical to the
    /// sequential one.
    pub cube_split: u32,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            conflict_budget: Some(2_000_000),
            query_cache: std::env::var("ACSPEC_NO_QUERY_CACHE")
                .map_or(true, |v| v.is_empty() || v == "0"),
            deadline: None,
            chaos: None,
            restart_base: SolverConfig::default().restart_base,
            portfolio: false,
            cube_split: 0,
        }
    }
}

/// Upper bound on the cube-split depth (`2^12 = 4096` cubes dwarfs any
/// useful worker count; deeper splits only multiply replay overhead).
pub const MAX_CUBE_SPLIT: u32 = 12;

/// Bucket upper bounds (exclusive, microseconds) for the portfolio
/// win-latency histogram in [`ParallelStats`]; the last bucket is
/// unbounded.
pub const WIN_LATENCY_BOUNDS_US: [u64; 5] = [100, 1_000, 10_000, 100_000, 1_000_000];

/// Monotone counters for the parallel-search machinery (`portfolio.*` /
/// `cube.*` telemetry). All zero when portfolio and cube splitting are
/// off, so sinks can gate emission on activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParallelStats {
    /// Queries routed through the portfolio path.
    pub portfolio_queries: u64,
    /// Portfolio queries that escalated past the sequential attempt.
    pub portfolio_forked: u64,
    /// Total escalation rounds across all portfolio queries.
    pub portfolio_rounds: u64,
    /// Portfolio queries decided by a raced fork.
    pub portfolio_wins: u64,
    /// Injected solver faults masked by the race: the poisoned primary
    /// was skipped and a fork answered the query anyway.
    pub portfolio_rescues: u64,
    /// Total wall-clock microseconds of fork-decided queries.
    pub portfolio_win_micros: u64,
    /// Win-latency histogram over [`WIN_LATENCY_BOUNDS_US`] (six
    /// buckets; the last is unbounded).
    pub portfolio_win_latency: [u64; 6],
    /// Cube-split ALL-SAT sessions run.
    pub cube_sessions: u64,
    /// Cube workers launched (one per cube).
    pub cube_workers: u64,
    /// Models enumerated by cube workers (after merging).
    pub cube_models: u64,
}

impl ParallelStats {
    /// True when nothing parallel happened (sinks skip emission).
    pub fn is_zero(&self) -> bool {
        *self == ParallelStats::default()
    }

    /// Folds another snapshot into this one (histograms add bucketwise).
    pub fn add(&mut self, other: &ParallelStats) {
        self.portfolio_queries += other.portfolio_queries;
        self.portfolio_forked += other.portfolio_forked;
        self.portfolio_rounds += other.portfolio_rounds;
        self.portfolio_wins += other.portfolio_wins;
        self.portfolio_rescues += other.portfolio_rescues;
        self.portfolio_win_micros += other.portfolio_win_micros;
        for (a, b) in self
            .portfolio_win_latency
            .iter_mut()
            .zip(other.portfolio_win_latency)
        {
            *a += b;
        }
        self.cube_sessions += other.cube_sessions;
        self.cube_workers += other.cube_workers;
        self.cube_models += other.cube_models;
    }

    /// The per-window delta `self - earlier` (saturating; counters are
    /// monotone).
    pub fn since(&self, earlier: &ParallelStats) -> ParallelStats {
        let mut hist = [0u64; 6];
        for (i, h) in hist.iter_mut().enumerate() {
            *h = self.portfolio_win_latency[i].saturating_sub(earlier.portfolio_win_latency[i]);
        }
        ParallelStats {
            portfolio_queries: self
                .portfolio_queries
                .saturating_sub(earlier.portfolio_queries),
            portfolio_forked: self
                .portfolio_forked
                .saturating_sub(earlier.portfolio_forked),
            portfolio_rounds: self
                .portfolio_rounds
                .saturating_sub(earlier.portfolio_rounds),
            portfolio_wins: self.portfolio_wins.saturating_sub(earlier.portfolio_wins),
            portfolio_rescues: self
                .portfolio_rescues
                .saturating_sub(earlier.portfolio_rescues),
            portfolio_win_micros: self
                .portfolio_win_micros
                .saturating_sub(earlier.portfolio_win_micros),
            portfolio_win_latency: hist,
            cube_sessions: self.cube_sessions.saturating_sub(earlier.cube_sessions),
            cube_workers: self.cube_workers.saturating_sub(earlier.cube_workers),
            cube_models: self.cube_models.saturating_sub(earlier.cube_models),
        }
    }

    fn record_win(&mut self, seconds: f64) {
        self.portfolio_wins += 1;
        let micros = (seconds * 1e6) as u64;
        self.portfolio_win_micros += micros;
        let bucket = WIN_LATENCY_BOUNDS_US
            .iter()
            .position(|&b| micros < b)
            .unwrap_or(WIN_LATENCY_BOUNDS_US.len());
        self.portfolio_win_latency[bucket] += 1;
    }
}

/// The per-procedure query engine.
#[derive(Debug)]
pub struct ProcAnalyzer {
    /// Term context (public so callers can build predicate terms).
    pub ctx: Ctx,
    solver: Solver,
    /// Guard literal per tracked location.
    loc_guards: Vec<(LocId, TermId)>,
    /// Raw path condition per tracked location (for path profiling).
    loc_pcs: Vec<(LocId, TermId)>,
    /// Lazily created indicators `b ⇔ pc_l` (for path profiling).
    loc_indicators: Vec<TermId>,
    /// Guard literal per assertion.
    assert_guards: Vec<(AssertId, TermId)>,
    /// Guard literal for "some assertion fails" (`¬wp(pr, true)`).
    fail_any: TermId,
    /// Input environment (initial incarnations + ν-constants), used to
    /// translate environment specifications and predicates.
    input_env: Env,
    budget: Budget,
    /// Wall-clock deadline alongside the conflict budget.
    deadline: Deadline,
    /// Deterministic fault-injection stream (`None` when disabled).
    chaos: Option<ChaosSolver>,
    /// Why the most recent `Err(Timeout)` happened. Conflicts until
    /// some query says otherwise; callers turning a [`Timeout`] into a
    /// [`StageError`] read it via [`ProcAnalyzer::stage_error`].
    last_fault: FaultReason,
    /// The stage queries are currently attributed to.
    stage: Stage,
    /// Per-stage query/time accounting.
    stages: StageTable,
    /// Count of SMT queries issued (statistics).
    pub queries: u64,
    /// When set, every `check()` appends a [`QueryRecord`]. Off by
    /// default so un-instrumented runs pay nothing but this flag test.
    record_queries: bool,
    /// When set (implies `record_queries` effects at the solver level),
    /// the SAT core's search instrumentation is enabled and every
    /// recorded query carries its [`SearchSummary`]. Off by default.
    record_search: bool,
    /// Recorded queries awaiting [`ProcAnalyzer::take_query_records`].
    query_log: Vec<QueryRecord>,
    /// The monotone dominance cache (`None` when disabled).
    cache: Option<QueryCache>,
    /// One selector literal per distinct body term: re-installing the
    /// same specification returns the original selector, so repeated
    /// queries share an assumption key. Unconditional (not gated on the
    /// dominance cache) so both cache modes install identical assertion
    /// streams and issue identically-keyed queries.
    selector_memo: std::collections::HashMap<TermId, Selector>,
    /// Memoized [`ProcAnalyzer::failure_witness`] answers by canonical
    /// assumption key. Sound because the witness oracle is a pure
    /// function of the base assertion stream and the key; unconditional
    /// so both cache modes report the witness computed at the same
    /// pipeline point.
    witness_memo:
        std::collections::HashMap<Vec<TermId>, Option<std::collections::BTreeMap<String, i64>>>,
    /// Every assertion installed unconditionally, in order: the encode
    /// guard implications plus selector/indicator definitions, but *not*
    /// session-scoped ALL-SAT blocking clauses. Replaying this stream
    /// into a fresh solver reproduces the query semantics (blocking
    /// clauses are ¬session-guarded and session literals occur nowhere
    /// else), making witness models a pure function of the encoding and
    /// the query — identical whether or not the cache pruned earlier
    /// queries.
    base_asserts: Vec<TermId>,
    /// Session-scoped hash-consing arena for IR-level formulas: every
    /// specification/predicate translated through this analyzer is
    /// interned here, so repeated subterms across configurations and
    /// ALL-SAT rounds share ids (and memoized work).
    arena: TermArena,
    /// Memoized IR-term → solver-term translation against the fixed
    /// `input_env` (sound: the environment never changes post-encode).
    xlate_memo: std::collections::HashMap<IrTermId, TermId>,
    /// Per-claim certificate store (`None` until
    /// [`ProcAnalyzer::enable_certs`]). Certification replays queries
    /// into fresh solvers *outside* the budget, deadline, chaos stream,
    /// and query counters, so enabling it never perturbs reported
    /// results.
    certs: Option<CertStore>,
    /// The solver configuration every fresh replay solver (witness
    /// queries, cube workers) is built with, so they search exactly
    /// like the incremental solver.
    solver_config: SolverConfig,
    /// Portfolio racing config (`None` when off).
    portfolio: Option<PortfolioConfig>,
    /// Cube-and-conquer split depth (0 = sequential ALL-SAT).
    cube_split: u32,
    /// The chaos configuration as given (fork streams for cube workers
    /// derive from its seed, not from the advanced main stream).
    chaos_cfg: Option<ChaosConfig>,
    /// Shared worker-permit pool: procedure-level and query-level
    /// parallelism draw from one budget. Defaults to an empty private
    /// pool (every parallel construct runs inline on the caller).
    pool: std::sync::Arc<SearchPool>,
    /// Parallel-search telemetry counters.
    parallel: ParallelStats,
}

/// What one cube worker brought back, merged in cube-index order.
struct CubeOut {
    /// Indicator truth vectors, one per enumerated model.
    models: Vec<Vec<bool>>,
    /// Per-query log entries (outcome, seconds, counter deltas, search).
    records: Vec<(QueryOutcome, f64, SolverCounters, Option<SearchSummary>)>,
    /// Conflicts spent by the worker's solver (charged to the budget).
    conflicts: u64,
    /// Worker wall-clock seconds (stage accounting).
    seconds: f64,
    /// Why the worker stopped early, if it did.
    gave_up: Option<FaultReason>,
}

struct EncodeState {
    env: Env,
    /// Path constraint to the current point.
    pc: TermId,
    /// Accumulated fail guards (built as encoding proceeds).
    fails: Vec<(AssertId, TermId)>,
    locs: Vec<(LocId, TermId)>,
    next_loc: u32,
}

impl ProcAnalyzer {
    /// Encodes a desugared procedure.
    ///
    /// # Errors
    ///
    /// Returns a [`TranslateError`] if the body refers to unbound names
    /// (indicates a front-end bug).
    pub fn new(
        proc: &DesugaredProc,
        config: AnalyzerConfig,
    ) -> Result<ProcAnalyzer, TranslateError> {
        let encode_start = std::time::Instant::now();
        let mut ctx = Ctx::new();
        let solver_config = SolverConfig {
            restart_base: config.restart_base.max(1),
            ..SolverConfig::default()
        };
        let mut solver = Solver::with_config(solver_config);

        // Initial incarnations: every named variable (params, returns,
        // locals, globals) is an unconstrained symbol; ν-constants too.
        let mut env = Env::default();
        for (name, sort) in &proc.vars {
            let t = match sort {
                Sort::Int => ctx.mk_int_var(format!("{name}!0")),
                Sort::Map => ctx.mk_map_var(format!("{name}!0")),
            };
            env.vars.insert(name.clone(), t);
        }
        for (nu, sort) in &proc.nus {
            let t = match sort {
                Sort::Int => ctx.mk_int_var(format!("{nu}")),
                Sort::Map => ctx.mk_map_var(format!("{nu}")),
            };
            env.nus.insert(nu.clone(), t);
        }
        let input_env = env.clone();

        let mut st = EncodeState {
            env,
            pc: ctx.mk_bool(true),
            fails: Vec::new(),
            locs: Vec::new(),
            next_loc: 0,
        };
        encode(&mut ctx, &mut st, &proc.body)?;
        debug_assert_eq!(
            st.locs.len(),
            enumerate_locations(&proc.body).len(),
            "location enumeration must match the canonical walk"
        );

        // Materialize guard literals.
        let loc_pcs = st.locs.clone();
        let mut base_asserts = Vec::new();
        let mut loc_guards = Vec::with_capacity(st.locs.len());
        for (id, pc) in st.locs {
            let g = ctx.fresh_bool_var(&format!("reach_L{}", id.0));
            let imp = ctx.mk_implies(g, pc);
            solver.assert_term(&mut ctx, imp);
            base_asserts.push(imp);
            loc_guards.push((id, g));
        }
        let mut assert_guards = Vec::with_capacity(st.fails.len());
        let mut fail_disjuncts = Vec::new();
        for (id, cond) in st.fails {
            let g = ctx.fresh_bool_var(&format!("fail_{id}"));
            let imp = ctx.mk_implies(g, cond);
            solver.assert_term(&mut ctx, imp);
            base_asserts.push(imp);
            assert_guards.push((id, g));
            fail_disjuncts.push(g);
        }
        let fail_any = ctx.fresh_bool_var("fail_any");
        let disj = ctx.mk_or(fail_disjuncts);
        let imp = ctx.mk_implies(fail_any, disj);
        solver.assert_term(&mut ctx, imp);
        base_asserts.push(imp);

        let mut stages = StageTable::default();
        stages.record(Stage::Encode, encode_start.elapsed().as_secs_f64(), 0);

        Ok(ProcAnalyzer {
            ctx,
            solver,
            loc_guards,
            loc_pcs,
            loc_indicators: Vec::new(),
            assert_guards,
            fail_any,
            input_env,
            budget: Budget::new(config.conflict_budget),
            deadline: Deadline::new(config.deadline),
            chaos: config.chaos.map(ChaosSolver::new),
            last_fault: FaultReason::Conflicts,
            stage: Stage::Screen,
            stages,
            queries: 0,
            record_queries: false,
            record_search: false,
            query_log: Vec::new(),
            cache: config.query_cache.then(QueryCache::new),
            selector_memo: std::collections::HashMap::new(),
            witness_memo: std::collections::HashMap::new(),
            base_asserts,
            arena: TermArena::new(),
            xlate_memo: std::collections::HashMap::new(),
            certs: None,
            solver_config,
            portfolio: config.portfolio.then(PortfolioConfig::default),
            cube_split: config.cube_split.min(MAX_CUBE_SPLIT),
            chaos_cfg: config.chaos,
            pool: std::sync::Arc::new(SearchPool::new(0)),
            parallel: ParallelStats::default(),
        })
    }

    /// Installs the shared worker-permit pool ([`SearchPool`]): spare
    /// threads for portfolio races and cube workers come from here, so
    /// procedure-level and query-level parallelism share one budget.
    /// Results never depend on how many permits are available.
    pub fn set_pool(&mut self, pool: std::sync::Arc<SearchPool>) {
        self.pool = pool;
    }

    /// Whether portfolio racing is enabled for hard verdict-only
    /// queries.
    pub fn portfolio_enabled(&self) -> bool {
        self.portfolio.is_some()
    }

    /// The configured cube-and-conquer split depth (0 = sequential
    /// ALL-SAT enumeration).
    pub fn cube_split(&self) -> u32 {
        self.cube_split
    }

    /// The parallel-search telemetry counters accumulated so far.
    pub fn parallel_stats(&self) -> ParallelStats {
        self.parallel
    }

    /// Whether the monotone dominance cache is enabled.
    pub fn cache_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// The cache's monotone hit/miss counters (all zero when the cache
    /// is disabled).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache
            .as_ref()
            .map(QueryCache::stats)
            .unwrap_or_default()
    }

    /// Exports the dominance cache's antichains for persistence (`None`
    /// when the cache is disabled).
    pub fn cache_snapshot(&self) -> Option<crate::cache::CacheSnapshot> {
        self.cache.as_ref().map(QueryCache::snapshot)
    }

    /// Warms the dominance cache from a persisted snapshot. No-op when
    /// the cache is disabled. Only sound against the identical encoding
    /// that produced the snapshot (the result store keys snapshots by
    /// procedure fingerprint to guarantee this).
    pub fn seed_cache(&mut self, snapshot: crate::cache::CacheSnapshot) {
        if let Some(cache) = &mut self.cache {
            cache.seed(snapshot);
        }
    }

    /// Enables (or disables) per-query [`QueryRecord`] collection — the
    /// solver-query hook. Disabled by default; when disabled, `check()`
    /// pays only a branch.
    pub fn set_query_recording(&mut self, on: bool) {
        self.record_queries = on;
    }

    /// Whether per-query recording is on.
    pub fn query_recording(&self) -> bool {
        self.record_queries
    }

    /// Enables (or disables) CDCL search recording: the SAT core's
    /// [`acspec_smt::SearchObserver`] is installed and every recorded
    /// query carries a per-query [`SearchSummary`]. Independent of
    /// (but only observable through) query recording; off by default so
    /// the solver search loop stays instrumentation-free.
    pub fn set_search_recording(&mut self, on: bool) {
        self.record_search = on;
        if on {
            self.solver.enable_search();
        }
    }

    /// Whether CDCL search recording is on.
    pub fn search_recording(&self) -> bool {
        self.record_search
    }

    /// Drains the recorded queries (issue order).
    pub fn take_query_records(&mut self) -> Vec<QueryRecord> {
        std::mem::take(&mut self.query_log)
    }

    /// A snapshot of the underlying solver's monotone work counters.
    pub fn solver_counters(&self) -> SolverCounters {
        self.solver.counters()
    }

    /// Sets the stage subsequent queries are attributed to.
    pub fn set_stage(&mut self, stage: Stage) {
        self.stage = stage;
    }

    /// The stage currently charged for queries.
    pub fn stage(&self) -> Stage {
        self.stage
    }

    /// The per-stage query/time accounting so far.
    pub fn stage_stats(&self) -> StageTable {
        self.stages
    }

    /// Attributes wall-clock time spent *outside* the solver (e.g.
    /// clause pruning, normal-form bookkeeping) to a stage, so the
    /// stage table reflects real elapsed time and not just query time.
    pub fn record_external(&mut self, stage: Stage, seconds: f64) {
        self.stages.record(stage, seconds, 0);
    }

    /// Resets the conflict pool to its configured size. A session
    /// sharing one analyzer across configurations calls this between
    /// configurations, so each gets the same pool the old
    /// one-analyzer-per-config drivers granted. The wall-clock deadline
    /// (when one is configured) restarts with the pool.
    pub fn refill_budget(&mut self) {
        self.budget.refill();
        self.deadline.restart();
    }

    /// Why the most recent `Err(Timeout)` happened ([`FaultReason::Conflicts`]
    /// if no query has given up yet).
    pub fn last_fault(&self) -> FaultReason {
        self.last_fault
    }

    /// Marks the pending fault as a structural-cap overrun. Callers
    /// enforcing their own caps (cover clause limits, search node
    /// limits) note this before returning [`Timeout`], so the resulting
    /// [`StageError`] names the right resource.
    pub fn note_cap_fault(&mut self) {
        self.last_fault = FaultReason::Cap;
    }

    /// Tags a [`Timeout`] with the interrupted stage and the reason the
    /// analyzer recorded for it.
    pub fn stage_error(&self, stage: Stage) -> StageError {
        StageError {
            stage,
            reason: self.last_fault,
        }
    }

    /// Number of entries currently held by the dominance cache (0 when
    /// disabled). Diagnostic: the Unknown-is-never-cached test keys off
    /// this.
    pub fn cache_entries(&self) -> usize {
        self.cache.as_ref().map_or(0, QueryCache::len)
    }

    /// The chaos harness's monotone injection counters (all zero when
    /// the harness is disabled).
    pub fn chaos_stats(&self) -> ChaosStats {
        self.chaos
            .as_ref()
            .map(ChaosSolver::stats)
            .unwrap_or_default()
    }

    /// Pre-query fault gate shared by [`ProcAnalyzer::check`] and
    /// [`ProcAnalyzer::witness_check`]: budget pre-exhaustion, deadline
    /// expiry, then a draw from the chaos stream. Returns `Err` to
    /// abort the query, `Ok(true)` to stall it first (injected
    /// latency), `Ok(false)` to run it normally.
    fn pre_query_gate(&mut self) -> Result<bool, Timeout> {
        if self.budget.exhausted() {
            self.last_fault = FaultReason::Conflicts;
            return Err(Timeout);
        }
        if self.deadline.exceeded() {
            return Err(self.give_up(FaultReason::Deadline));
        }
        if let Some(chaos) = &mut self.chaos {
            match chaos.next_fault() {
                None => {}
                // Fail-stop faults (a lost verdict, a crashed engine)
                // are absorbed when portfolio racing is on: the solver
                // pool is redundant, so the query is simply retried on
                // a surviving lane — here, deterministically, by
                // proceeding. Without redundancy they stop the query.
                Some(ChaosFault::Unknown) => {
                    if self.portfolio.is_some() {
                        self.parallel.portfolio_rescues += 1;
                    } else {
                        return Err(self.give_up(FaultReason::Chaos));
                    }
                }
                Some(ChaosFault::Panic) => {
                    if self.portfolio.is_some() {
                        self.parallel.portfolio_rescues += 1;
                    } else {
                        panic!("chaos: injected panic before query {}", self.queries)
                    }
                }
                Some(ChaosFault::BudgetBlowup) => {
                    // Simulate one pathological query burning (at least)
                    // half the remaining pool.
                    if let Some(left) = self.budget.left() {
                        self.budget.charge((left / 2).max(1_000));
                    }
                    if self.budget.exhausted() {
                        self.last_fault = FaultReason::Chaos;
                        return Err(Timeout);
                    }
                }
                Some(ChaosFault::Latency) => return Ok(true),
            }
        }
        Ok(false)
    }

    /// Records a query-shaped `Unknown { reason }` (the ISSUE's
    /// "surfaced from the solver instead of a hard stop"): counts as a
    /// query, lands in the stage table and the query log, but never in
    /// the dominance cache — callers see `Err(Timeout)` and the cache
    /// insert only happens on `Ok`.
    fn give_up(&mut self, reason: FaultReason) -> Timeout {
        self.last_fault = reason;
        self.queries += 1;
        self.stages.record(self.stage, 0.0, 1);
        if self.record_queries {
            self.query_log.push(QueryRecord {
                stage: self.stage,
                seq: (self.queries - 1) as u32,
                outcome: QueryOutcome::Unknown { reason },
                seconds: 0.0,
                counters: SolverCounters::default(),
                // The solver was never consulted: no search to report.
                search: None,
            });
        }
        Timeout
    }

    /// The tracked locations.
    pub fn locations(&self) -> Vec<LocId> {
        self.loc_guards.iter().map(|&(id, _)| id).collect()
    }

    /// The assertions.
    pub fn assertions(&self) -> Vec<AssertId> {
        self.assert_guards.iter().map(|&(id, _)| id).collect()
    }

    /// The input environment (initial incarnations and ν-constants) —
    /// predicates and specifications are translated against this.
    pub fn input_env(&self) -> &Env {
        &self.input_env
    }

    /// Installs an environment specification (a formula over inputs) and
    /// returns its selector. The formula constrains inputs only while its
    /// selector is passed in the active set.
    ///
    /// # Errors
    ///
    /// Returns a [`TranslateError`] if the formula refers to names outside
    /// the input vocabulary.
    pub fn add_selector(&mut self, spec: &Formula) -> Result<Selector, TranslateError> {
        let fid = self.arena.intern_formula(spec);
        let body = self.translate_interned(fid)?;
        Ok(self.add_selector_term(body))
    }

    /// The session's hash-consing arena (predicates, specifications, and
    /// mined formulas intern here so memoized transforms are shared
    /// across stages and configurations).
    pub fn arena_mut(&mut self) -> &mut TermArena {
        &mut self.arena
    }

    /// Arena instrumentation (intern counts, memo hits per transformer),
    /// including the analyzer-owned translation memo.
    pub fn term_stats(&self) -> TermStats {
        self.arena.stats()
    }

    /// Translates an interned formula/expression to a solver term against
    /// the fixed input environment, memoized per interned id: each shared
    /// subterm is walked once per session.
    ///
    /// # Errors
    ///
    /// Returns a [`TranslateError`] if the term refers to names outside
    /// the input vocabulary.
    pub fn translate_interned(&mut self, t: IrTermId) -> Result<TermId, TranslateError> {
        interned_to_term(
            &mut self.ctx,
            &self.input_env,
            &mut self.arena,
            t,
            &mut self.xlate_memo,
        )
    }

    /// Interns a formula and installs an indicator for its translation
    /// (see [`ProcAnalyzer::add_indicator`]); the translation is memoized
    /// against the session arena.
    ///
    /// # Errors
    ///
    /// Returns a [`TranslateError`] if the formula refers to names outside
    /// the input vocabulary.
    pub fn add_indicator_formula(&mut self, f: &Formula) -> Result<TermId, TranslateError> {
        let fid = self.arena.intern_formula(f);
        let body = self.translate_interned(fid)?;
        Ok(self.add_indicator(body))
    }

    /// Installs a boolean term (over input-vocabulary terms) as a
    /// selector. A fresh-literal definition: cached answers survive it.
    /// Terms are hash-consed, so re-installing a previously installed
    /// body returns its existing selector instead of asserting a
    /// duplicate implication — repeated specifications (e.g. prune
    /// variants that pruned nothing) then share one assumption key.
    pub fn add_selector_term(&mut self, body: TermId) -> Selector {
        if let Some(&s) = self.selector_memo.get(&body) {
            return s;
        }
        let s = self.ctx.fresh_bool_var("sel");
        let imp = self.ctx.mk_implies(s, body);
        self.solver.assert_term(&mut self.ctx, imp);
        self.base_asserts.push(imp);
        self.selector_memo.insert(body, Selector(s));
        Selector(s)
    }

    /// Registers an indicator for a boolean term: a literal forced equal
    /// to the term's truth value in every model (used for ALL-SAT
    /// enumeration by the predicate-cover construction). A fresh-literal
    /// definition: cached answers survive it.
    pub fn add_indicator(&mut self, body: TermId) -> TermId {
        let b = self.ctx.fresh_bool_var("ind");
        let iff = self.ctx.mk_iff(b, body);
        self.solver.assert_term(&mut self.ctx, iff);
        self.base_asserts.push(iff);
        b
    }

    /// Adds a permanent clause over boolean terms (used for ALL-SAT
    /// blocking). The formula strengthens, so known-satisfiable cache
    /// entries are dropped (known-unsatisfiable ones survive).
    pub fn add_clause(&mut self, parts: &[TermId]) {
        self.solver.add_clause_terms(&mut self.ctx, parts);
        if let Some(cache) = &mut self.cache {
            cache.invalidate_sat();
        }
    }

    /// The truth value of a term in the last model (after a `Sat` query).
    pub fn model_bool(&self, t: TermId) -> Option<bool> {
        self.solver.bool_value(t)
    }

    /// A concrete environment witness from the last satisfiable query:
    /// integer values for the integer-sorted inputs and ν-constants that
    /// were relevant to the query. Call right after a query returned
    /// `true` (e.g. [`ProcAnalyzer::can_fail`]) to obtain the input state
    /// that exhibits the behavior.
    pub fn input_witness(&self) -> std::collections::BTreeMap<String, i64> {
        let mut out = std::collections::BTreeMap::new();
        for (name, &t) in &self.input_env.vars {
            if let Some(v) = self.solver.int_value(t) {
                out.insert(name.clone(), v);
            }
        }
        for (nu, &t) in &self.input_env.nus {
            if let Some(v) = self.solver.int_value(t) {
                out.insert(nu.to_string(), v);
            }
        }
        out
    }

    /// If `assert` can fail under the active selectors, returns a
    /// concrete input witness for one failing execution.
    ///
    /// The witness query runs against a fresh replay of the base
    /// assertion stream (see `base_asserts`), so the model — and hence
    /// the reported witness — is a pure function of the encoding and the
    /// query, independent of the incremental solver's heuristic state
    /// and of whether the dominance cache pruned earlier queries. A
    /// cached `Unsat` still short-circuits (no model needed to refute);
    /// a cached `Sat` never does (a model is the whole point).
    ///
    /// # Errors
    ///
    /// Returns [`Timeout`] if the budget is exhausted.
    pub fn failure_witness(
        &mut self,
        assert: AssertId,
        active: &[Selector],
    ) -> Result<Option<std::collections::BTreeMap<String, i64>>, Timeout> {
        let g = self
            .assert_guards
            .iter()
            .find(|&&(id, _)| id == assert)
            .map(|&(_, g)| g)
            .expect("unknown assertion");
        let mut assumptions: Vec<TermId> = active.iter().map(|s| s.0).collect();
        assumptions.push(g);
        let key = QueryCache::canonical(&assumptions);
        if let Some(w) = self.witness_memo.get(&key) {
            return Ok(w.clone());
        }
        if let Some(cache) = &mut self.cache {
            if cache.refuted(&key) {
                self.witness_memo.insert(key, None);
                return Ok(None);
            }
        }
        let witness = self.witness_check(&assumptions)?;
        if let Some(cache) = &mut self.cache {
            cache.insert(key.clone(), witness.is_some());
        }
        self.witness_memo.insert(key, witness.clone());
        Ok(witness)
    }

    /// Solves `assumptions` against a fresh solver loaded with the base
    /// assertion stream and, if satisfiable, reads the integer input
    /// witness from that solver's model. Charged to the budget, query
    /// count, stage table, and query log exactly like an incremental
    /// `check()`.
    fn witness_check(
        &mut self,
        assumptions: &[TermId],
    ) -> Result<Option<std::collections::BTreeMap<String, i64>>, Timeout> {
        let stall = self.pre_query_gate()?;
        self.queries += 1;
        let start = std::time::Instant::now();
        if stall {
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        let mut solver = Solver::with_config(self.solver_config);
        if self.record_search {
            // Fresh solver per witness query: install the observer so
            // witness queries report search summaries like any other.
            solver.enable_search();
        }
        for &t in &self.base_asserts {
            solver.assert_term(&mut self.ctx, t);
        }
        solver.set_sat_budget(self.budget.left());
        let result = solver.check(&mut self.ctx, assumptions);
        self.budget.charge(solver.conflicts());
        let seconds = start.elapsed().as_secs_f64();
        self.stages.record(self.stage, seconds, 1);
        let search = solver.take_search_summary();
        if self.record_queries {
            self.query_log.push(QueryRecord {
                stage: self.stage,
                seq: (self.queries - 1) as u32,
                outcome: match result {
                    SmtResult::Sat => QueryOutcome::Sat,
                    SmtResult::Unsat => QueryOutcome::Unsat,
                    SmtResult::Unknown => QueryOutcome::Unknown {
                        reason: FaultReason::Conflicts,
                    },
                },
                seconds,
                counters: solver.counters(),
                search,
            });
        }
        match result {
            SmtResult::Sat => {}
            SmtResult::Unsat => return Ok(None),
            SmtResult::Unknown => {
                self.last_fault = FaultReason::Conflicts;
                return Err(Timeout);
            }
        }
        let mut out = std::collections::BTreeMap::new();
        for (name, &t) in &self.input_env.vars {
            if let Some(v) = solver.int_value(t) {
                out.insert(name.clone(), v);
            }
        }
        for (nu, &t) in &self.input_env.nus {
            if let Some(v) = solver.int_value(t) {
                out.insert(nu.to_string(), v);
            }
        }
        Ok(Some(out))
    }

    /// `check()` behind the dominance cache: answers by lattice
    /// dominance when possible, otherwise solves and records the
    /// verdict. Only used for queries whose assumption set is exactly
    /// selectors-plus-guards — ALL-SAT sessions and model-reading
    /// callers go straight to [`ProcAnalyzer::check`].
    fn check_cached(&mut self, assumptions: &[TermId]) -> Result<bool, Timeout> {
        let key = match &mut self.cache {
            None => return self.check_verdict(assumptions),
            Some(cache) => {
                let key = QueryCache::canonical(assumptions);
                if let Some(answer) = cache.lookup(&key) {
                    return Ok(answer);
                }
                key
            }
        };
        let answer = self.check_verdict(assumptions)?;
        if let Some(cache) = &mut self.cache {
            cache.insert(key, answer);
        }
        Ok(answer)
    }

    /// Solves a verdict-only query: the portfolio path when racing is
    /// enabled, the plain incremental [`ProcAnalyzer::check`] otherwise.
    /// Only reachable from [`ProcAnalyzer::check_cached`] — callers of
    /// this path never read models afterwards (cache hits also return
    /// without one), which is exactly the contract
    /// [`Solver::check_portfolio`] needs.
    fn check_verdict(&mut self, assumptions: &[TermId]) -> Result<bool, Timeout> {
        let Some(pcfg) = self.portfolio else {
            return self.check(assumptions);
        };
        // Inline fault gate: same checks and the same chaos-stream draw
        // as [`ProcAnalyzer::pre_query_gate`], but an injected fail-stop
        // fault (`Unknown`, `Panic`) poisons the primary attempt instead
        // of giving the query up or crashing — the fork race answers it,
        // so the verdict (and everything downstream) matches the
        // un-faulted run.
        if self.budget.exhausted() {
            self.last_fault = FaultReason::Conflicts;
            return Err(Timeout);
        }
        if self.deadline.exceeded() {
            return Err(self.give_up(FaultReason::Deadline));
        }
        let mut stall = false;
        let mut poisoned = false;
        if let Some(chaos) = &mut self.chaos {
            match chaos.next_fault() {
                None => {}
                Some(ChaosFault::Unknown | ChaosFault::Panic) => poisoned = true,
                Some(ChaosFault::BudgetBlowup) => {
                    if let Some(left) = self.budget.left() {
                        self.budget.charge((left / 2).max(1_000));
                    }
                    if self.budget.exhausted() {
                        self.last_fault = FaultReason::Chaos;
                        return Err(Timeout);
                    }
                }
                Some(ChaosFault::Latency) => stall = true,
            }
        }
        self.queries += 1;
        let start = std::time::Instant::now();
        if stall {
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        let before = self.solver.counters();
        self.solver.set_sat_budget(self.budget.left());
        let pool = self.pool.clone();
        let (result, outcome) =
            self.solver
                .check_portfolio(&mut self.ctx, assumptions, pcfg, &pool, poisoned);
        let spent = self.solver.conflicts() - before.conflicts;
        self.budget.charge(spent);
        let seconds = start.elapsed().as_secs_f64();
        self.stages.record(self.stage, seconds, 1);
        let search = self.solver.take_search_summary();
        self.parallel.portfolio_queries += 1;
        if outcome.rounds > 0 {
            self.parallel.portfolio_forked += 1;
            self.parallel.portfolio_rounds += u64::from(outcome.rounds);
        }
        if outcome.winner.is_some() {
            self.parallel.record_win(seconds);
            if poisoned {
                self.parallel.portfolio_rescues += 1;
            }
        }
        if self.record_queries {
            self.query_log.push(QueryRecord {
                stage: self.stage,
                seq: (self.queries - 1) as u32,
                outcome: match result {
                    SmtResult::Sat => QueryOutcome::Sat,
                    SmtResult::Unsat => QueryOutcome::Unsat,
                    SmtResult::Unknown => QueryOutcome::Unknown {
                        reason: FaultReason::Conflicts,
                    },
                },
                seconds,
                counters: self.solver.counters().since(&before),
                search,
            });
        }
        match result {
            SmtResult::Sat => Ok(true),
            SmtResult::Unsat => Ok(false),
            SmtResult::Unknown => {
                self.last_fault = FaultReason::Conflicts;
                Err(Timeout)
            }
        }
    }

    fn check(&mut self, assumptions: &[TermId]) -> Result<bool, Timeout> {
        let stall = self.pre_query_gate()?;
        self.queries += 1;
        let start = std::time::Instant::now();
        if stall {
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        let before = self.solver.counters();
        // Bound this query by the remaining per-procedure pool.
        self.solver.set_sat_budget(self.budget.left());
        let result = self.solver.check(&mut self.ctx, assumptions);
        let spent = self.solver.conflicts() - before.conflicts;
        self.budget.charge(spent);
        let seconds = start.elapsed().as_secs_f64();
        self.stages.record(self.stage, seconds, 1);
        // Taken per query even when the log is off, so the observer's
        // accumulation window always spans exactly one query.
        let search = self.solver.take_search_summary();
        if self.record_queries {
            self.query_log.push(QueryRecord {
                stage: self.stage,
                seq: (self.queries - 1) as u32,
                outcome: match result {
                    SmtResult::Sat => QueryOutcome::Sat,
                    SmtResult::Unsat => QueryOutcome::Unsat,
                    SmtResult::Unknown => QueryOutcome::Unknown {
                        reason: FaultReason::Conflicts,
                    },
                },
                seconds,
                counters: self.solver.counters().since(&before),
                search,
            });
        }
        match result {
            SmtResult::Sat => Ok(true),
            SmtResult::Unsat => Ok(false),
            SmtResult::Unknown => {
                self.last_fault = FaultReason::Conflicts;
                Err(Timeout)
            }
        }
    }

    /// Is the given tracked location reachable under the active selectors?
    ///
    /// # Errors
    ///
    /// Returns [`Timeout`] if the budget is exhausted.
    pub fn is_reachable(&mut self, loc: LocId, active: &[Selector]) -> Result<bool, Timeout> {
        let g = self
            .loc_guards
            .iter()
            .find(|&&(id, _)| id == loc)
            .map(|&(_, g)| g)
            .expect("unknown location");
        let mut assumptions: Vec<TermId> = active.iter().map(|s| s.0).collect();
        assumptions.push(g);
        self.check_cached(&assumptions)
    }

    /// Can the given assertion fail under the active selectors?
    ///
    /// # Errors
    ///
    /// Returns [`Timeout`] if the budget is exhausted.
    pub fn can_fail(&mut self, assert: AssertId, active: &[Selector]) -> Result<bool, Timeout> {
        let g = self
            .assert_guards
            .iter()
            .find(|&&(id, _)| id == assert)
            .map(|&(_, g)| g)
            .expect("unknown assertion");
        let mut assumptions: Vec<TermId> = active.iter().map(|s| s.0).collect();
        assumptions.push(g);
        self.check_cached(&assumptions)
    }

    /// `Dead(f)` for the input set selected by `active` (§2.3): the
    /// tracked locations unreachable from every selected input state.
    ///
    /// # Errors
    ///
    /// Returns [`Timeout`] if the budget is exhausted.
    pub fn dead_set(&mut self, active: &[Selector]) -> Result<BTreeSet<LocId>, Timeout> {
        let locs = self.locations();
        let mut dead = BTreeSet::new();
        for l in locs {
            if !self.is_reachable(l, active)? {
                dead.insert(l);
            }
        }
        Ok(dead)
    }

    /// `Fail(f)` for the input set selected by `active` (§2.3): the
    /// assertions that can fail on at least one execution from a selected
    /// input state.
    ///
    /// # Errors
    ///
    /// Returns [`Timeout`] if the budget is exhausted.
    pub fn fail_set(&mut self, active: &[Selector]) -> Result<BTreeSet<AssertId>, Timeout> {
        let asserts = self.assertions();
        let mut fail = BTreeSet::new();
        for a in asserts {
            if self.can_fail(a, active)? {
                fail.insert(a);
            }
        }
        Ok(fail)
    }

    /// Whether *some* assertion can fail under the active selectors —
    /// i.e. satisfiability of `f ∧ ¬wp(pr, true)`, the `VC(pr)` check of
    /// §4.1. The `extra` assumptions are appended (used by ALL-SAT).
    ///
    /// # Errors
    ///
    /// Returns [`Timeout`] if the budget is exhausted.
    pub fn any_failure(&mut self, active: &[Selector], extra: &[TermId]) -> Result<bool, Timeout> {
        let mut assumptions: Vec<TermId> = active.iter().map(|s| s.0).collect();
        assumptions.push(self.fail_any);
        assumptions.extend_from_slice(extra);
        if extra.is_empty() {
            self.check_cached(&assumptions)
        } else {
            // ALL-SAT sessions read the model afterwards; a dominance
            // answer would leave it stale.
            self.check(&assumptions)
        }
    }

    /// Whether the selected input-state set is non-empty (theory
    /// consistency of the selectors plus `extra` assumptions), with no
    /// reachability or failure forced. Used for semantic normalization of
    /// specifications.
    ///
    /// # Errors
    ///
    /// Returns [`Timeout`] if the budget is exhausted.
    pub fn is_consistent(
        &mut self,
        active: &[Selector],
        extra: &[TermId],
    ) -> Result<bool, Timeout> {
        let mut assumptions: Vec<TermId> = active.iter().map(|s| s.0).collect();
        assumptions.extend_from_slice(extra);
        if extra.is_empty() {
            self.check_cached(&assumptions)
        } else {
            // Callers passing extras (normal-form ALL-SAT, subset
            // implication probes) read models or use session literals.
            self.check(&assumptions)
        }
    }

    /// Enables per-claim certification. Certificates are built by
    /// replaying queries into fresh proof-logging solvers against the
    /// base assertion stream — the same mechanism
    /// [`ProcAnalyzer::failure_witness`] uses — so they are a pure
    /// function of the encoding and the claim, independent of the
    /// dominance cache, the incremental solver's state, and any chaos
    /// faults injected on the query path. Certification charges nothing
    /// to the budget, deadline, chaos stream, or query counters:
    /// enabling it leaves reported results byte-identical.
    pub fn enable_certs(&mut self) {
        if self.certs.is_none() {
            self.certs = Some(CertStore::new());
        }
    }

    /// Whether certification is enabled.
    pub fn certs_enabled(&self) -> bool {
        self.certs.is_some()
    }

    /// The certificate store built so far.
    pub fn cert_store(&self) -> Option<&CertStore> {
        self.certs.as_ref()
    }

    /// Takes ownership of the certificate store (disables further
    /// certification until [`ProcAnalyzer::enable_certs`] again).
    pub fn take_cert_store(&mut self) -> Option<CertStore> {
        self.certs.take()
    }

    /// Certifies the query `base ∧ blocking ∧ assumptions` by fresh
    /// replay and returns the certificate's index in the store, or
    /// `None` when certification is disabled. Deduplicated by canonical
    /// assumption key: a claim answered by the dominance cache
    /// references the certificate of the originating query rather than
    /// fabricating a new one.
    pub fn certify_assumptions(
        &mut self,
        assumptions: &[TermId],
        blocking: &[Vec<TermId>],
    ) -> Option<usize> {
        let mut store = self.certs.take()?;
        let key = QueryCache::canonical(assumptions);
        let idx = store.certify(&mut self.ctx, &self.base_asserts, &key, blocking);
        self.certs = Some(store);
        Some(idx)
    }

    /// Certificate for [`ProcAnalyzer::is_reachable`] on `loc` (Sat =
    /// reachable witness, Unsat = dead-code proof).
    pub fn certify_reachable(&mut self, loc: LocId, active: &[Selector]) -> Option<usize> {
        let g = self
            .loc_guards
            .iter()
            .find(|&&(id, _)| id == loc)
            .map(|&(_, g)| g)
            .expect("unknown location");
        let mut assumptions: Vec<TermId> = active.iter().map(|s| s.0).collect();
        assumptions.push(g);
        self.certify_assumptions(&assumptions, &[])
    }

    /// Certificate for [`ProcAnalyzer::can_fail`] on `assert` (Sat =
    /// failure model, Unsat = suppression proof).
    pub fn certify_can_fail(&mut self, assert: AssertId, active: &[Selector]) -> Option<usize> {
        let g = self
            .assert_guards
            .iter()
            .find(|&&(id, _)| id == assert)
            .map(|&(_, g)| g)
            .expect("unknown assertion");
        let mut assumptions: Vec<TermId> = active.iter().map(|s| s.0).collect();
        assumptions.push(g);
        self.certify_assumptions(&assumptions, &[])
    }

    /// Certificate for [`ProcAnalyzer::any_failure`], optionally under
    /// blocking clauses (the ALL-SAT exhaustion proof passes the cover's
    /// accumulated blocking clauses and expects Unsat).
    pub fn certify_any_failure(
        &mut self,
        active: &[Selector],
        extra: &[TermId],
        blocking: &[Vec<TermId>],
    ) -> Option<usize> {
        let mut assumptions: Vec<TermId> = active.iter().map(|s| s.0).collect();
        assumptions.push(self.fail_any);
        assumptions.extend_from_slice(extra);
        self.certify_assumptions(&assumptions, blocking)
    }

    /// Certificate for [`ProcAnalyzer::is_consistent`].
    pub fn certify_consistent(&mut self, active: &[Selector], extra: &[TermId]) -> Option<usize> {
        let mut assumptions: Vec<TermId> = active.iter().map(|s| s.0).collect();
        assumptions.extend_from_slice(extra);
        self.certify_assumptions(&assumptions, &[])
    }

    /// Remaining conflict budget (diagnostics).
    pub fn budget_left(&self) -> Option<u64> {
        self.budget.left()
    }

    /// Enumerates the *path profiles* feasible under the active
    /// selectors: the distinct truth vectors of the tracked-location
    /// reach conditions over all executions (ALL-SAT, capped at `cap`
    /// profiles). This supports the paper's alternative `Dead` metric
    /// "in terms of path coverage rather than branch coverage" (§2.3):
    /// a specification kills a *path* iff a profile feasible under `true`
    /// disappears.
    ///
    /// # Errors
    ///
    /// Returns [`Timeout`] if the budget or `cap` is exhausted.
    pub fn path_profiles(
        &mut self,
        active: &[Selector],
        cap: usize,
    ) -> Result<BTreeSet<Vec<bool>>, Timeout> {
        // Lazily create an indicator per tracked location: b ⇔ pc_l.
        if self.loc_indicators.is_empty() {
            let guards: Vec<(acspec_ir::locs::LocId, TermId)> = self.loc_pcs.clone();
            for (_, pc) in guards {
                let b = self.add_indicator(pc);
                self.loc_indicators.push(b);
            }
        }
        let session = self.ctx.fresh_bool_var("paths");
        let not_session = self.ctx.mk_not(session);
        let mut profiles = BTreeSet::new();
        loop {
            let mut assumptions: Vec<TermId> = active.iter().map(|s| s.0).collect();
            assumptions.push(session);
            if !self.check(&assumptions)? {
                break;
            }
            let mut vector = Vec::with_capacity(self.loc_indicators.len());
            let mut blocking: Vec<TermId> = vec![not_session];
            for &b in &self.loc_indicators.clone() {
                let v = self.model_bool(b).unwrap_or(false);
                vector.push(v);
                blocking.push(if v { self.ctx.mk_not(b) } else { b });
            }
            self.add_clause(&blocking);
            profiles.insert(vector);
            if profiles.len() > cap {
                self.note_cap_fault();
                return Err(Timeout);
            }
        }
        Ok(profiles)
    }

    /// Cube-and-conquer ALL-SAT over `indicators` (§4.1's predicate
    /// cover, parallel edition): the indicator space is split into
    /// `2^k` disjoint cubes over the `k` most active indicator
    /// variables (`k` = the configured [`AnalyzerConfig::cube_split`],
    /// clamped to the indicator count), and each cube enumerates the
    /// models of `active ∧ fail_any ∧ cube` on its own fresh replay of
    /// the base assertion stream with cube-local blocking clauses.
    ///
    /// Returns the indicator truth vectors of every model, merged in
    /// cube-index order, plus `Some(Timeout)` when a cube gave up or
    /// the model cap was hit — the vectors gathered up to that point
    /// are the salvage, exactly like the sequential session's partial
    /// cover.
    ///
    /// Determinism: each worker is a pure function of the encoding,
    /// its cube index, and the budget snapshot taken before the fan-out
    /// (fresh solver, per-cube chaos stream forked from the *original*
    /// seed via [`ChaosConfig::for_fork`]); the merge order is the cube
    /// index. Worker placement (spare pool permits vs. inline) affects
    /// wall time only. Since full cubes partition the model space, the
    /// merged model *set* equals the sequential enumeration's, so a
    /// sorted cover built from it is bit-identical to the sequential
    /// one.
    ///
    /// The incremental solver is never touched: no session literal, no
    /// blocking clauses, no cache invalidation. (Sequential blocking
    /// clauses are ¬session-guarded and thus inert afterwards anyway;
    /// skipping the conservative cache flush only saves re-solving.)
    pub fn cube_all_failures(
        &mut self,
        active: &[Selector],
        indicators: &[TermId],
        cap: usize,
    ) -> (Vec<Vec<bool>>, Option<Timeout>) {
        // One main-stream fault gate covers the whole session; workers
        // draw faults from per-cube forked streams.
        match self.pre_query_gate() {
            Ok(stall) => {
                if stall {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            }
            Err(t) => return (Vec::new(), Some(t)),
        }

        // Branch variables: the k most active indicators by the
        // incremental solver's VSIDS ranking — a deterministic function
        // of the query history — ties broken by indicator index.
        let k = (self.cube_split.min(MAX_CUBE_SPLIT) as usize).min(indicators.len());
        let mut ranked: Vec<usize> = (0..indicators.len()).collect();
        ranked.sort_by(|&a, &b| {
            self.solver
                .term_activity(indicators[b])
                .partial_cmp(&self.solver.term_activity(indicators[a]))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let branch: Vec<usize> = ranked.into_iter().take(k).collect();
        let ncubes = 1usize << k;

        let mut assumptions_base: Vec<TermId> = active.iter().map(|s| s.0).collect();
        assumptions_base.push(self.fail_any);
        let base = &self.base_asserts;
        let budget_left = self.budget.left();
        let record_search = self.record_search;
        let solver_config = self.solver_config;
        let chaos_cfgs: Vec<Option<ChaosConfig>> = (0..ncubes)
            .map(|c| self.chaos_cfg.map(|cc| cc.for_fork(c as u64)))
            .collect();

        // Race-runner: per-cube input/output cells so any lane can run
        // any cube; results are merged by cube index, never by
        // schedule.
        let inputs: Vec<std::sync::Mutex<Option<Ctx>>> = (0..ncubes)
            .map(|_| std::sync::Mutex::new(Some(self.ctx.clone())))
            .collect();
        let outputs: Vec<std::sync::Mutex<Option<CubeOut>>> =
            (0..ncubes).map(|_| std::sync::Mutex::new(None)).collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let run_lane = || loop {
            let c = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            if c >= ncubes {
                break;
            }
            let mut wctx = inputs[c]
                .lock()
                .expect("cube lane poisoned")
                .take()
                .expect("cube context present");
            let wstart = std::time::Instant::now();
            let mut chaos = chaos_cfgs[c].map(ChaosSolver::new);
            let mut solver = Solver::with_config(solver_config);
            if record_search {
                solver.enable_search();
            }
            for &t in base {
                solver.assert_term(&mut wctx, t);
            }
            let mut assumptions = assumptions_base.clone();
            for (j, &bi) in branch.iter().enumerate() {
                let b = indicators[bi];
                assumptions.push(if (c >> j) & 1 == 1 { b } else { wctx.mk_not(b) });
            }
            let mut local_budget = budget_left;
            let mut out = CubeOut {
                models: Vec::new(),
                records: Vec::new(),
                conflicts: 0,
                seconds: 0.0,
                gave_up: None,
            };
            loop {
                if out.models.len() >= cap {
                    out.gave_up = Some(FaultReason::Cap);
                    break;
                }
                let mut stall = false;
                if let Some(ch) = &mut chaos {
                    match ch.next_fault() {
                        None => {}
                        Some(ChaosFault::Unknown) => {
                            out.gave_up = Some(FaultReason::Chaos);
                            break;
                        }
                        Some(ChaosFault::Panic) => {
                            panic!("chaos: injected panic in cube worker {c}")
                        }
                        Some(ChaosFault::BudgetBlowup) => {
                            if let Some(left) = local_budget {
                                local_budget = Some(left.saturating_sub((left / 2).max(1_000)));
                            }
                        }
                        Some(ChaosFault::Latency) => stall = true,
                    }
                }
                if stall {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                let before = solver.counters();
                let qstart = std::time::Instant::now();
                solver.set_sat_budget(local_budget);
                let result = solver.check(&mut wctx, &assumptions);
                let qsecs = qstart.elapsed().as_secs_f64();
                let delta = solver.counters().since(&before);
                if let Some(left) = local_budget {
                    local_budget = Some(left.saturating_sub(delta.conflicts));
                }
                let search = solver.take_search_summary();
                out.records.push((
                    match result {
                        SmtResult::Sat => QueryOutcome::Sat,
                        SmtResult::Unsat => QueryOutcome::Unsat,
                        SmtResult::Unknown => QueryOutcome::Unknown {
                            reason: FaultReason::Conflicts,
                        },
                    },
                    qsecs,
                    delta,
                    search,
                ));
                match result {
                    SmtResult::Sat => {}
                    SmtResult::Unsat => break,
                    SmtResult::Unknown => {
                        out.gave_up = Some(FaultReason::Conflicts);
                        break;
                    }
                }
                let mut vector = Vec::with_capacity(indicators.len());
                let mut blocking = Vec::with_capacity(indicators.len());
                for &b in indicators {
                    let v = solver.bool_value(b).expect("indicator assigned in model");
                    vector.push(v);
                    blocking.push(if v { wctx.mk_not(b) } else { b });
                }
                out.models.push(vector);
                if indicators.is_empty() {
                    // The empty cube blocks everything (Q = {}).
                    break;
                }
                solver.add_clause_terms(&mut wctx, &blocking);
            }
            out.conflicts = solver.conflicts();
            out.seconds = wstart.elapsed().as_secs_f64();
            *outputs[c].lock().expect("cube lane poisoned") = Some(out);
        };
        let pool = self.pool.clone();
        let extra = pool.try_take(ncubes - 1);
        std::thread::scope(|s| {
            for _ in 0..extra {
                s.spawn(run_lane);
            }
            run_lane();
        });
        pool.give_back(extra);

        // Deterministic merge in cube-index order: budget charges,
        // query numbering, stage accounting, and the model list are all
        // independent of which lane ran which cube.
        self.parallel.cube_sessions += 1;
        self.parallel.cube_workers += ncubes as u64;
        let mut models: Vec<Vec<bool>> = Vec::new();
        let mut err: Option<Timeout> = None;
        for cell in outputs {
            let out = cell
                .into_inner()
                .expect("cube lane poisoned")
                .expect("cube ran");
            self.budget.charge(out.conflicts);
            self.stages
                .record(self.stage, out.seconds, out.records.len() as u64);
            for (outcome, qsecs, counters, search) in out.records {
                self.queries += 1;
                if self.record_queries {
                    self.query_log.push(QueryRecord {
                        stage: self.stage,
                        seq: (self.queries - 1) as u32,
                        outcome,
                        seconds: qsecs,
                        counters,
                        search,
                    });
                }
            }
            models.extend(out.models);
            if models.len() >= cap {
                models.truncate(cap);
                self.note_cap_fault();
                err = Some(Timeout);
                break;
            }
            if let Some(reason) = out.gave_up {
                self.last_fault = reason;
                err = Some(Timeout);
                break;
            }
            if self.budget.exhausted() {
                self.last_fault = FaultReason::Conflicts;
                err = Some(Timeout);
                break;
            }
        }
        self.parallel.cube_models += models.len() as u64;
        (models, err)
    }
}

/// Symbolic execution with ite-merging.
fn encode(ctx: &mut Ctx, st: &mut EncodeState, s: &Stmt) -> Result<(), TranslateError> {
    match s {
        Stmt::Skip => Ok(()),
        Stmt::Assert { id, cond, .. } => {
            let c = formula_to_term(ctx, &st.env, cond)?;
            let id = id.expect("asserts numbered by desugaring");
            let nc = ctx.mk_not(c);
            let fail_cond = ctx.mk_and(vec![st.pc, nc]);
            st.fails.push((id, fail_cond));
            // Execution continues past the assert only if it held.
            st.pc = ctx.mk_and(vec![st.pc, c]);
            Ok(())
        }
        Stmt::Assume(cond) => {
            let c = formula_to_term(ctx, &st.env, cond)?;
            st.pc = ctx.mk_and(vec![st.pc, c]);
            let id = LocId(st.next_loc);
            st.next_loc += 1;
            st.locs.push((id, st.pc));
            Ok(())
        }
        Stmt::Assign(x, e) => {
            let t = expr_to_term(ctx, &st.env, e)?;
            st.env.vars.insert(x.clone(), t);
            Ok(())
        }
        Stmt::Havoc(x) => {
            let old = st
                .env
                .vars
                .get(x)
                .copied()
                .ok_or_else(|| TranslateError::UnboundVar(x.clone()))?;
            let fresh = match ctx.sort(old) {
                acspec_smt::TermSort::Map => ctx.fresh_map_var(&format!("{x}!h")),
                _ => ctx.fresh_int_var(&format!("{x}!h")),
            };
            st.env.vars.insert(x.clone(), fresh);
            Ok(())
        }
        Stmt::Seq(ss) => {
            for s in ss {
                encode(ctx, st, s)?;
            }
            Ok(())
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let c = match cond {
                BranchCond::Det(f) => formula_to_term(ctx, &st.env, f)?,
                BranchCond::NonDet => ctx.fresh_bool_var("choice"),
            };
            let entry_pc = st.pc;
            let entry_env = st.env.clone();

            // Then branch.
            let then_loc = LocId(st.next_loc);
            st.next_loc += 1;
            st.pc = ctx.mk_and(vec![entry_pc, c]);
            st.locs.push((then_loc, st.pc));
            encode(ctx, st, then_branch)?;
            let then_pc = st.pc;
            let then_env = std::mem::take(&mut st.env);

            // Else branch.
            let nc = ctx.mk_not(c);
            let else_loc = LocId(st.next_loc);
            st.next_loc += 1;
            st.env = entry_env;
            st.pc = ctx.mk_and(vec![entry_pc, nc]);
            st.locs.push((else_loc, st.pc));
            encode(ctx, st, else_branch)?;
            let else_pc = st.pc;
            let else_env = std::mem::take(&mut st.env);

            // Join: merge path constraints and variable values.
            st.pc = ctx.mk_or(vec![then_pc, else_pc]);
            let mut merged = Env {
                nus: then_env.nus,
                ..Env::default()
            };
            for (name, &tv) in &then_env.vars {
                let ev = *else_env
                    .vars
                    .get(name)
                    .expect("same variables in both branches");
                let value = if tv == ev { tv } else { ctx.mk_ite(c, tv, ev) };
                merged.vars.insert(name.clone(), value);
            }
            st.env = merged;
            Ok(())
        }
        Stmt::Call { .. } | Stmt::While { .. } => {
            panic!("analyzer requires a core (desugared) body")
        }
    }
}
