//! Monotone dominance cache for assumption-set queries (PR 3).
//!
//! Every query the analyzer issues is the satisfiability of the fixed
//! encoding under a *set* of assumption literals (selectors plus a goal
//! guard). Satisfiability is antitone in that set:
//!
//! * if `A` is satisfiable, so is every `A' ⊆ A` (drop assumptions);
//! * if `A` is unsatisfiable, so is every `A'' ⊇ A` (add assumptions).
//!
//! This is exactly the paper's §2.3 monotonicity property seen from the
//! solver's side — weakening the input-state set (fewer selector
//! conjuncts) only shrinks `Dead` and grows `Fail` — generalized so one
//! store serves `is_reachable`, `can_fail`, `any_failure`, and
//! `is_consistent` uniformly: a satisfiable reachability query under
//! selectors `S` also proves `S` consistent, and an unsatisfiable
//! `can_fail` under the demonic environment (`S = ∅`) refutes that
//! assertion's failure under *every* specification.
//!
//! The store keeps two antichains over canonically sorted keys:
//!
//! * `sat` — maximal known-satisfiable sets; a query hits if it is a
//!   subset of some entry;
//! * `unsat` — minimal known-unsatisfiable sets; a query hits if it is
//!   a superset of some entry.
//!
//! Soundness depends on the solved formula only ever *strengthening*
//! monotonically: asserting a fresh-literal definition (`s → f`,
//! `b ⇔ f`) preserves every cached answer, because a model extends by
//! choosing the fresh literal's value and an unsatisfiable core stays
//! unsatisfiable. Asserting an arbitrary clause (ALL-SAT blocking)
//! can kill models, so [`QueryCache::invalidate_sat`] drops the `sat`
//! antichain while keeping `unsat` (clauses only strengthen).

use acspec_smt::TermId;

/// Monotone hit/miss counters for one [`QueryCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered `Sat` by subset dominance.
    pub hits_sat: u64,
    /// Queries answered `Unsat` by superset dominance.
    pub hits_unsat: u64,
    /// Queries that fell through to the solver.
    pub misses: u64,
    /// Times the `sat` antichain was dropped (ALL-SAT blocking clauses).
    pub invalidations: u64,
}

impl CacheStats {
    /// Total dominance hits.
    pub fn hits(&self) -> u64 {
        self.hits_sat + self.hits_unsat
    }

    /// The counter deltas accumulated since `earlier` (all counters are
    /// monotone).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits_sat: self.hits_sat - earlier.hits_sat,
            hits_unsat: self.hits_unsat - earlier.hits_unsat,
            misses: self.misses - earlier.misses,
            invalidations: self.invalidations - earlier.invalidations,
        }
    }
}

/// Is sorted, deduped `a` a subset of sorted, deduped `b`?
fn is_subset(a: &[TermId], b: &[TermId]) -> bool {
    if a.len() > b.len() {
        return false;
    }
    let mut bi = b.iter();
    'outer: for x in a {
        for y in bi.by_ref() {
            match y.cmp(x) {
                std::cmp::Ordering::Less => {}
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// An owned export of a cache's antichains, for persistence (the
/// result store serializes these and warms a fresh session's cache on
/// reload). Entries are canonical sorted keys of raw [`TermId`]s; they
/// are only meaningful against the *identical* encoding that produced
/// them, which the store guarantees by keying on the procedure
/// fingerprint.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Maximal known-satisfiable assumption sets.
    pub sat: Vec<Vec<TermId>>,
    /// Minimal known-unsatisfiable assumption sets.
    pub unsat: Vec<Vec<TermId>>,
}

impl CacheSnapshot {
    /// Whether the snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.sat.is_empty() && self.unsat.is_empty()
    }
}

/// The subset-keyed dominance store (see the module docs for the
/// soundness argument).
#[derive(Debug, Default)]
pub struct QueryCache {
    /// Maximal known-satisfiable assumption sets (each sorted).
    sat: Vec<Vec<TermId>>,
    /// Minimal known-unsatisfiable assumption sets (each sorted).
    unsat: Vec<Vec<TermId>>,
    stats: CacheStats,
}

impl QueryCache {
    /// An empty cache.
    pub fn new() -> QueryCache {
        QueryCache::default()
    }

    /// The canonical (sorted, deduped) key for an assumption slice.
    pub fn canonical(assumptions: &[TermId]) -> Vec<TermId> {
        let mut key = assumptions.to_vec();
        key.sort_unstable();
        key.dedup();
        key
    }

    /// Answers `key` by dominance, or records a miss. `key` must be
    /// canonical (see [`QueryCache::canonical`]).
    pub fn lookup(&mut self, key: &[TermId]) -> Option<bool> {
        if self.sat.iter().any(|s| is_subset(key, s)) {
            self.stats.hits_sat += 1;
            return Some(true);
        }
        if self.unsat.iter().any(|u| is_subset(u, key)) {
            self.stats.hits_unsat += 1;
            return Some(false);
        }
        self.stats.misses += 1;
        None
    }

    /// Answers `key` only if it is dominated by a known-unsatisfiable
    /// entry. Unlike [`QueryCache::lookup`] this never counts a miss —
    /// it serves callers (witness extraction) that need a model and so
    /// cannot use a cached `Sat`.
    pub fn refuted(&mut self, key: &[TermId]) -> bool {
        if self.unsat.iter().any(|u| is_subset(u, key)) {
            self.stats.hits_unsat += 1;
            return true;
        }
        false
    }

    /// Records a solver verdict for a canonical key, keeping the
    /// antichain property (dominated entries are dropped; dominated
    /// inserts are no-ops).
    pub fn insert(&mut self, key: Vec<TermId>, sat: bool) {
        if sat {
            if self.sat.iter().any(|s| is_subset(&key, s)) {
                return;
            }
            self.sat.retain(|s| !is_subset(s, &key));
            self.sat.push(key);
        } else {
            if self.unsat.iter().any(|u| is_subset(u, &key)) {
                return;
            }
            self.unsat.retain(|u| !is_subset(&key, u));
            self.unsat.push(key);
        }
    }

    /// Drops every known-satisfiable set. Call after asserting a clause
    /// that is not a fresh-literal definition (ALL-SAT blocking): the
    /// formula strengthened, so `Unsat` entries survive but models may
    /// not.
    pub fn invalidate_sat(&mut self) {
        if !self.sat.is_empty() {
            self.stats.invalidations += 1;
            self.sat.clear();
        }
    }

    /// Exports the antichains for persistence. The stats are not part
    /// of the snapshot — a warmed cache starts its counters at zero.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            sat: self.sat.clone(),
            unsat: self.unsat.clone(),
        }
    }

    /// Seeds the cache from a persisted snapshot by replaying each
    /// entry through [`QueryCache::insert`], restoring the antichain
    /// invariants even if the snapshot was hand-edited. Counters are
    /// untouched, so hit/miss telemetry reflects only this run.
    pub fn seed(&mut self, snapshot: CacheSnapshot) {
        for key in snapshot.sat {
            self.insert(QueryCache::canonical(&key), true);
        }
        for key in snapshot.unsat {
            self.insert(QueryCache::canonical(&key), false);
        }
    }

    /// The hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of stored entries (diagnostics).
    pub fn len(&self) -> usize {
        self.sat.len() + self.unsat.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.sat.is_empty() && self.unsat.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(ids: &[u32]) -> Vec<TermId> {
        QueryCache::canonical(&ids.iter().map(|&i| TermId(i)).collect::<Vec<_>>())
    }

    #[test]
    fn sat_answers_subsets_and_unsat_answers_supersets() {
        let mut c = QueryCache::new();
        c.insert(k(&[1, 2, 3]), true);
        c.insert(k(&[7, 8]), false);
        assert_eq!(c.lookup(&k(&[2])), Some(true));
        assert_eq!(c.lookup(&k(&[1, 3])), Some(true));
        assert_eq!(c.lookup(&k(&[7, 8, 9])), Some(false));
        // Neither direction dominates: miss.
        assert_eq!(c.lookup(&k(&[1, 2, 3, 4])), None);
        assert_eq!(c.lookup(&k(&[7])), None);
        assert_eq!(
            c.stats(),
            CacheStats {
                hits_sat: 2,
                hits_unsat: 1,
                misses: 2,
                invalidations: 0
            }
        );
    }

    #[test]
    fn antichains_keep_only_extremal_entries() {
        let mut c = QueryCache::new();
        c.insert(k(&[1, 2]), true);
        c.insert(k(&[1, 2, 3]), true); // subsumes the first
        c.insert(k(&[1]), true); // dominated: no-op
        assert_eq!(c.len(), 1);
        c.insert(k(&[5, 6]), false);
        c.insert(k(&[5]), false); // subsumes the first
        c.insert(k(&[5, 6, 7]), false); // dominated: no-op
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup(&k(&[3])), Some(true));
        assert_eq!(c.lookup(&k(&[5, 9])), Some(false));
    }

    #[test]
    fn invalidation_drops_sat_but_keeps_unsat() {
        let mut c = QueryCache::new();
        c.insert(k(&[1]), true);
        c.insert(k(&[2]), false);
        c.invalidate_sat();
        assert_eq!(c.lookup(&k(&[1])), None);
        assert_eq!(c.lookup(&k(&[2, 3])), Some(false));
        assert_eq!(c.stats().invalidations, 1);
        // Idempotent when already empty: not double-counted.
        c.invalidate_sat();
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn snapshot_seed_roundtrip_restores_dominance() {
        let mut c = QueryCache::new();
        c.insert(k(&[1, 2, 3]), true);
        c.insert(k(&[7, 8]), false);
        let snap = c.snapshot();
        let mut warm = QueryCache::new();
        warm.seed(snap.clone());
        assert_eq!(warm.snapshot(), snap);
        assert_eq!(warm.lookup(&k(&[2])), Some(true));
        assert_eq!(warm.lookup(&k(&[7, 8, 9])), Some(false));
        // Seeding replays through insert, so a redundant snapshot
        // collapses back to the antichain.
        let mut redundant = QueryCache::new();
        redundant.seed(CacheSnapshot {
            sat: vec![k(&[1]), k(&[1, 2])],
            unsat: vec![k(&[5, 6]), k(&[5])],
        });
        assert_eq!(redundant.len(), 2);
    }

    #[test]
    fn refuted_consults_unsat_only_and_never_counts_misses() {
        let mut c = QueryCache::new();
        c.insert(k(&[1, 2]), true);
        c.insert(k(&[4]), false);
        assert!(!c.refuted(&k(&[1]))); // sat-dominated, but refuted() ignores that
        assert!(c.refuted(&k(&[4, 5])));
        assert_eq!(c.stats().misses, 0);
        assert_eq!(c.stats().hits_unsat, 1);
    }
}
