//! Translation from IR expressions/formulas to solver terms.

use std::collections::{BTreeMap, HashMap};

use acspec_ir::arena::{Node, TermArena, TermId as IrTermId};
use acspec_ir::expr::{Expr, Formula, NuConst, RelOp};
use acspec_smt::term::{Term, TermSort};
use acspec_smt::{Ctx, TermId};

/// A variable environment: current solver term for each named variable and
/// ν-constant. Ordered maps so that every walk over an environment (branch
/// merges, witness extraction) visits entries in the same order in every
/// session — term creation order, and therefore model enumeration, stays
/// deterministic across repeated encodes of the same procedure.
#[derive(Debug, Clone, Default)]
pub struct Env {
    /// Terms for named variables.
    pub vars: BTreeMap<String, TermId>,
    /// Terms for ν-constants.
    pub nus: BTreeMap<NuConst, TermId>,
}

/// Errors during translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslateError {
    /// A variable had no binding in the environment.
    UnboundVar(String),
    /// A ν-constant had no binding in the environment.
    UnboundNu(String),
    /// `old(..)` survived desugaring.
    UnexpectedOld,
}

impl std::fmt::Display for TranslateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranslateError::UnboundVar(v) => write!(f, "unbound variable `{v}`"),
            TranslateError::UnboundNu(n) => write!(f, "unbound ν-constant `{n}`"),
            TranslateError::UnexpectedOld => write!(f, "unexpected `old(..)`"),
        }
    }
}

impl std::error::Error for TranslateError {}

/// Translates an IR expression to a term under `env`.
///
/// Non-linear multiplications are mapped to the uninterpreted symbol
/// `mul` (congruence still applies); everything else is precise.
///
/// # Errors
///
/// Returns [`TranslateError`] for unbound names or stray `old(..)`.
pub fn expr_to_term(ctx: &mut Ctx, env: &Env, e: &Expr) -> Result<TermId, TranslateError> {
    match e {
        Expr::Var(v) => env
            .vars
            .get(v)
            .copied()
            .ok_or_else(|| TranslateError::UnboundVar(v.clone())),
        Expr::Nu(nu) => env
            .nus
            .get(nu)
            .copied()
            .ok_or_else(|| TranslateError::UnboundNu(nu.to_string())),
        Expr::Int(n) => Ok(ctx.mk_int(*n)),
        Expr::App(f, args) => {
            let args: Result<Vec<TermId>, _> =
                args.iter().map(|a| expr_to_term(ctx, env, a)).collect();
            Ok(ctx.mk_app(format!("uf:{f}"), args?))
        }
        Expr::Add(a, b) => {
            let ta = expr_to_term(ctx, env, a)?;
            let tb = expr_to_term(ctx, env, b)?;
            Ok(ctx.mk_add(vec![ta, tb]))
        }
        Expr::Sub(a, b) => {
            let ta = expr_to_term(ctx, env, a)?;
            let tb = expr_to_term(ctx, env, b)?;
            Ok(ctx.mk_sub(ta, tb))
        }
        Expr::Mul(a, b) => {
            let ta = expr_to_term(ctx, env, a)?;
            let tb = expr_to_term(ctx, env, b)?;
            if let Term::IntConst(c) = *ctx.term(ta) {
                Ok(ctx.mk_mulc(c, tb))
            } else if let Term::IntConst(c) = *ctx.term(tb) {
                Ok(ctx.mk_mulc(c, ta))
            } else {
                // Non-linear: uninterpreted.
                Ok(ctx.mk_app("mul", vec![ta, tb]))
            }
        }
        Expr::Neg(a) => {
            let ta = expr_to_term(ctx, env, a)?;
            Ok(ctx.mk_mulc(-1, ta))
        }
        Expr::Read(m, i) => {
            let tm = expr_to_term(ctx, env, m)?;
            let ti = expr_to_term(ctx, env, i)?;
            Ok(ctx.mk_read(tm, ti))
        }
        Expr::Write(m, i, v) => {
            let tm = expr_to_term(ctx, env, m)?;
            let ti = expr_to_term(ctx, env, i)?;
            let tv = expr_to_term(ctx, env, v)?;
            Ok(ctx.mk_write(tm, ti, tv))
        }
        Expr::Ite(c, t, el) => {
            let tc = formula_to_term(ctx, env, c)?;
            let tt = expr_to_term(ctx, env, t)?;
            let te = expr_to_term(ctx, env, el)?;
            Ok(ctx.mk_ite(tc, tt, te))
        }
        Expr::Old(_) => Err(TranslateError::UnexpectedOld),
    }
}

/// Translates an IR formula to a boolean term under `env`.
///
/// # Errors
///
/// Returns [`TranslateError`] for unbound names or stray `old(..)`.
pub fn formula_to_term(ctx: &mut Ctx, env: &Env, f: &Formula) -> Result<TermId, TranslateError> {
    match f {
        Formula::True => Ok(ctx.mk_bool(true)),
        Formula::False => Ok(ctx.mk_bool(false)),
        Formula::Rel(op, a, b) => {
            let ta = expr_to_term(ctx, env, a)?;
            let tb = expr_to_term(ctx, env, b)?;
            // Map-sorted equality is fine; orderings require ints (the IR
            // typechecker enforces this upstream).
            Ok(match op {
                RelOp::Eq => {
                    if ctx.sort(ta) == TermSort::Bool {
                        ctx.mk_iff(ta, tb)
                    } else {
                        ctx.mk_eq(ta, tb)
                    }
                }
                RelOp::Ne => {
                    let e = ctx.mk_eq(ta, tb);
                    ctx.mk_not(e)
                }
                RelOp::Lt => ctx.mk_lt(ta, tb),
                RelOp::Le => ctx.mk_le(ta, tb),
                RelOp::Gt => ctx.mk_lt(tb, ta),
                RelOp::Ge => ctx.mk_le(tb, ta),
            })
        }
        Formula::Not(g) => {
            let t = formula_to_term(ctx, env, g)?;
            Ok(ctx.mk_not(t))
        }
        Formula::And(fs) => {
            let ts: Result<Vec<TermId>, _> =
                fs.iter().map(|g| formula_to_term(ctx, env, g)).collect();
            Ok(ctx.mk_and(ts?))
        }
        Formula::Or(fs) => {
            let ts: Result<Vec<TermId>, _> =
                fs.iter().map(|g| formula_to_term(ctx, env, g)).collect();
            Ok(ctx.mk_or(ts?))
        }
        Formula::Implies(a, b) => {
            let ta = formula_to_term(ctx, env, a)?;
            let tb = formula_to_term(ctx, env, b)?;
            Ok(ctx.mk_implies(ta, tb))
        }
        Formula::Iff(a, b) => {
            let ta = formula_to_term(ctx, env, a)?;
            let tb = formula_to_term(ctx, env, b)?;
            Ok(ctx.mk_iff(ta, tb))
        }
    }
}

/// Translates an interned IR term (expression or formula) to a solver
/// term under `env`, memoized per [`IrTermId`] so each shared subterm is
/// encoded once per session.
///
/// Produces the same solver term as [`expr_to_term`]/[`formula_to_term`]
/// on the externalized tree: the solver [`Ctx`] hash-conses its own
/// terms, so the memo changes only how much tree is walked, never which
/// [`TermId`] comes back. Memoization is sound because `env` is the
/// fixed per-session input environment (PR 1's one-encode design): a
/// given interned term always translates to the same solver term.
///
/// # Errors
///
/// Returns [`TranslateError`] for unbound names or stray `old(..)`.
pub fn interned_to_term(
    ctx: &mut Ctx,
    env: &Env,
    arena: &mut TermArena,
    t: IrTermId,
    memo: &mut HashMap<IrTermId, TermId>,
) -> Result<TermId, TranslateError> {
    if let Some(&out) = memo.get(&t) {
        arena.note_translate(true);
        return Ok(out);
    }
    let node = arena.node(t).clone();
    let out = match node {
        Node::Var(s) => {
            let name = arena.sym_name(s).to_string();
            env.vars
                .get(&name)
                .copied()
                .ok_or(TranslateError::UnboundVar(name))?
        }
        Node::Nu(n) => {
            let nu = arena.nu_const(n).clone();
            env.nus
                .get(&nu)
                .copied()
                .ok_or_else(|| TranslateError::UnboundNu(nu.to_string()))?
        }
        Node::Int(n) => ctx.mk_int(n),
        Node::App(f, args) => {
            let ts: Result<Vec<TermId>, _> = args
                .iter()
                .map(|&a| interned_to_term(ctx, env, arena, a, memo))
                .collect();
            let name = format!("uf:{}", arena.sym_name(f));
            ctx.mk_app(name, ts?)
        }
        Node::Add(a, b) => {
            let ta = interned_to_term(ctx, env, arena, a, memo)?;
            let tb = interned_to_term(ctx, env, arena, b, memo)?;
            ctx.mk_add(vec![ta, tb])
        }
        Node::Sub(a, b) => {
            let ta = interned_to_term(ctx, env, arena, a, memo)?;
            let tb = interned_to_term(ctx, env, arena, b, memo)?;
            ctx.mk_sub(ta, tb)
        }
        Node::Mul(a, b) => {
            let ta = interned_to_term(ctx, env, arena, a, memo)?;
            let tb = interned_to_term(ctx, env, arena, b, memo)?;
            if let Term::IntConst(c) = *ctx.term(ta) {
                ctx.mk_mulc(c, tb)
            } else if let Term::IntConst(c) = *ctx.term(tb) {
                ctx.mk_mulc(c, ta)
            } else {
                // Non-linear: uninterpreted.
                ctx.mk_app("mul", vec![ta, tb])
            }
        }
        Node::Neg(a) => {
            let ta = interned_to_term(ctx, env, arena, a, memo)?;
            ctx.mk_mulc(-1, ta)
        }
        Node::Read(m, i) => {
            let tm = interned_to_term(ctx, env, arena, m, memo)?;
            let ti = interned_to_term(ctx, env, arena, i, memo)?;
            ctx.mk_read(tm, ti)
        }
        Node::Write(m, i, v) => {
            let tm = interned_to_term(ctx, env, arena, m, memo)?;
            let ti = interned_to_term(ctx, env, arena, i, memo)?;
            let tv = interned_to_term(ctx, env, arena, v, memo)?;
            ctx.mk_write(tm, ti, tv)
        }
        Node::IteE(c, a, b) => {
            let tc = interned_to_term(ctx, env, arena, c, memo)?;
            let ta = interned_to_term(ctx, env, arena, a, memo)?;
            let tb = interned_to_term(ctx, env, arena, b, memo)?;
            ctx.mk_ite(tc, ta, tb)
        }
        Node::Old(_) => return Err(TranslateError::UnexpectedOld),
        Node::True => ctx.mk_bool(true),
        Node::False => ctx.mk_bool(false),
        Node::Rel(op, a, b) => {
            let ta = interned_to_term(ctx, env, arena, a, memo)?;
            let tb = interned_to_term(ctx, env, arena, b, memo)?;
            // Map-sorted equality is fine; orderings require ints (the IR
            // typechecker enforces this upstream).
            match op {
                RelOp::Eq => {
                    if ctx.sort(ta) == TermSort::Bool {
                        ctx.mk_iff(ta, tb)
                    } else {
                        ctx.mk_eq(ta, tb)
                    }
                }
                RelOp::Ne => {
                    let e = ctx.mk_eq(ta, tb);
                    ctx.mk_not(e)
                }
                RelOp::Lt => ctx.mk_lt(ta, tb),
                RelOp::Le => ctx.mk_le(ta, tb),
                RelOp::Gt => ctx.mk_lt(tb, ta),
                RelOp::Ge => ctx.mk_le(tb, ta),
            }
        }
        Node::Not(g) => {
            let tg = interned_to_term(ctx, env, arena, g, memo)?;
            ctx.mk_not(tg)
        }
        Node::And(fs) => {
            let ts: Result<Vec<TermId>, _> = fs
                .iter()
                .map(|&g| interned_to_term(ctx, env, arena, g, memo))
                .collect();
            ctx.mk_and(ts?)
        }
        Node::Or(fs) => {
            let ts: Result<Vec<TermId>, _> = fs
                .iter()
                .map(|&g| interned_to_term(ctx, env, arena, g, memo))
                .collect();
            ctx.mk_or(ts?)
        }
        Node::Implies(a, b) => {
            let ta = interned_to_term(ctx, env, arena, a, memo)?;
            let tb = interned_to_term(ctx, env, arena, b, memo)?;
            ctx.mk_implies(ta, tb)
        }
        Node::Iff(a, b) => {
            let ta = interned_to_term(ctx, env, arena, a, memo)?;
            let tb = interned_to_term(ctx, env, arena, b, memo)?;
            ctx.mk_iff(ta, tb)
        }
    };
    memo.insert(t, out);
    arena.note_translate(false);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acspec_ir::parse::{parse_expr, parse_formula};

    fn env_with(ctx: &mut Ctx, ints: &[&str], maps: &[&str]) -> Env {
        let mut env = Env::default();
        for v in ints {
            let t = ctx.mk_int_var(format!("{v}!0"));
            env.vars.insert((*v).to_string(), t);
        }
        for v in maps {
            let t = ctx.mk_map_var(format!("{v}!0"));
            env.vars.insert((*v).to_string(), t);
        }
        env
    }

    #[test]
    fn translates_reads_and_relations() {
        let mut ctx = Ctx::new();
        let env = env_with(&mut ctx, &["c"], &["Freed"]);
        let f = parse_formula("Freed[c] == 0").expect("parses");
        let t = formula_to_term(&mut ctx, &env, &f).expect("translates");
        assert_eq!(ctx.sort(t), TermSort::Bool);
    }

    #[test]
    fn unbound_variable_errors() {
        let mut ctx = Ctx::new();
        let env = Env::default();
        let f = parse_formula("x == 0").expect("parses");
        assert_eq!(
            formula_to_term(&mut ctx, &env, &f),
            Err(TranslateError::UnboundVar("x".into()))
        );
    }

    #[test]
    fn interned_translation_matches_tree_translation() {
        let mut ctx = Ctx::new();
        let env = env_with(&mut ctx, &["c", "buf", "cmd", "x", "y"], &["Freed", "m"]);
        let mut arena = TermArena::new();
        let mut memo = HashMap::new();
        for src in [
            "Freed[c] == 0 && Freed[buf] == 0",
            "write(Freed, c, 1)[buf] == 0 ==> c != buf",
            "x * y < 3 * x || !(cmd >= 1) || m[x + y] == 0",
            "true <==> (false || x <= -y)",
            // Repeats share both the arena node and the translation memo.
            "Freed[c] == 0 && Freed[buf] == 0",
        ] {
            let f = parse_formula(src).expect("parses");
            let expected = formula_to_term(&mut ctx, &env, &f).expect("translates");
            let fid = arena.intern_formula(&f);
            let got =
                interned_to_term(&mut ctx, &env, &mut arena, fid, &mut memo).expect("translates");
            assert_eq!(got, expected, "{src}");
        }
        assert!(arena.stats().translate_hits > 0, "repeat must hit the memo");
    }

    #[test]
    fn nonlinear_mul_becomes_uninterpreted() {
        let mut ctx = Ctx::new();
        let env = env_with(&mut ctx, &["x", "y"], &[]);
        let e = parse_expr("x * y").expect("parses");
        let t = expr_to_term(&mut ctx, &env, &e).expect("translates");
        assert!(matches!(ctx.term(t), Term::App(f, _) if f == "mul"));
        let e = parse_expr("3 * y").expect("parses");
        let t = expr_to_term(&mut ctx, &env, &e).expect("translates");
        assert!(matches!(ctx.term(t), Term::MulC(3, _)));
    }
}
