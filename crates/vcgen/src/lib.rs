#![warn(missing_docs)]

//! VC generation and the `Dead`/`Fail` query engine for ACSpec.
//!
//! This crate plays the role BOOGIE's VC pipeline plays for the paper's
//! prototype:
//!
//! * [`translate`] — IR expressions/formulas to solver terms;
//! * [`wp`] — the textbook weakest-precondition transformer of §2.2
//!   (used for readable specs and as a semantic cross-check);
//! * [`analyzer`] — an efficient single-encoding query engine answering
//!   `Dead(f)` and `Fail(f)` (§2.3) incrementally under selector
//!   assumptions, with a deterministic per-procedure budget standing in
//!   for the paper's 10-second timeout;
//! * [`cache`] — the monotone dominance cache answering queries by
//!   §2.3 monotonicity (subset/superset lattice dominance) before
//!   falling back to the solver;
//! * [`chaos`] — deterministic fault injection (seeded unknowns, budget
//!   blowups, latency, panics) for exercising the fault-tolerant
//!   runtime above this crate.
//!
//! # Example
//!
//! ```
//! use acspec_ir::parse::parse_program;
//! use acspec_ir::{desugar_procedure, DesugarOptions};
//! use acspec_vcgen::analyzer::{AnalyzerConfig, ProcAnalyzer};
//!
//! let prog = parse_program(
//!     "procedure f(x: int) { assert x != 0; }",
//! ).expect("parses");
//! let proc = prog.procedures[0].clone();
//! let d = desugar_procedure(&prog, &proc, DesugarOptions::default()).expect("desugars");
//! let mut az = ProcAnalyzer::new(&d, AnalyzerConfig::default()).expect("encodes");
//! // Under the demonic (unconstrained) environment the assert can fail…
//! assert_eq!(az.fail_set(&[]).expect("within budget").len(), 1);
//! // …but under the spec x != 0 it cannot.
//! let spec = acspec_ir::parse::parse_formula("x != 0").expect("parses");
//! let sel = az.add_selector(&spec).expect("input vocabulary");
//! assert!(az.fail_set(&[sel]).expect("within budget").is_empty());
//! ```

pub mod analyzer;
pub mod cache;
pub mod chaos;
pub mod evidence;
pub mod stage;
pub mod translate;
pub mod wp;

pub use analyzer::{AnalyzerConfig, ProcAnalyzer, QueryOutcome, QueryRecord, Selector, Timeout};
pub use cache::{CacheSnapshot, CacheStats, QueryCache};
pub use chaos::{
    ChaosConfig, ChaosFault, ChaosSolver, ChaosStats, ChaosStore, ChaosStoreStats, StoreFault,
};
pub use evidence::{
    CertEvent, CertOutcome, CertStore, CertTag, Evaluator, FuncValue, MapValue, ModelTables,
    ProofData, QueryCert, TermNode,
};
pub use stage::{Budget, Deadline, FaultReason, Stage, StageError, StageMetrics, StageTable};
pub use translate::{expr_to_term, formula_to_term, Env, TranslateError};
pub use wp::{wp, WpResult};
