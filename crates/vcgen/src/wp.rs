//! The textbook weakest-precondition transformer of §2.2.
//!
//! ```text
//! wp(skip, φ)              = φ
//! wp(assume f, φ)          = f ⇒ φ
//! wp(assert f, φ)          = f ∧ φ
//! wp(x := e, φ)            = φ[e/x]
//! wp(havoc x, φ)           = ∀x. φ          (skolemized: φ[x'/x], x' fresh)
//! wp(s; t, φ)              = wp(s, wp(t, φ))
//! wp(if c then s else t, φ) = (c ⇒ wp(s, φ)) ∧ (¬c ⇒ wp(t, φ))
//! ```
//!
//! The result is a quantifier-free formula over inputs plus a set of
//! *universal* fresh variables standing for havocked values and
//! non-deterministic branch choices; `¬wp` with those variables read
//! existentially is equisatisfiable with "some execution fails", which is
//! exactly the check `VC(pr) ≡ ¬wp(body, true)` of §4.1.
//!
//! As a *tree* transformer this is exponential in the worst case (the
//! paper notes the same, which is why verifiers passify first): every
//! branch duplicates the postcondition. The default entry point therefore
//! runs over a hash-consed [`TermArena`] ([`wp_interned`]), where both
//! branches reference one interned postcondition and the per-branch
//! substitutions are memoized by id — a depth-N diamond chain costs O(N)
//! interned nodes instead of O(2^N) tree nodes. [`wp`] externalizes the
//! interned result, so callers that want the boxed tree (examples, tests)
//! still pay the tree's size, but only once at the end. The original tree
//! recursion is kept as [`wp_reference`] for equivalence tests and
//! benchmarks.

use acspec_ir::arena::{TermArena, TermId};
use acspec_ir::expr::{Expr, Formula};
use acspec_ir::stmt::{BranchCond, Stmt};

/// The result of a weakest-precondition computation.
#[derive(Debug, Clone)]
pub struct WpResult {
    /// The (quantifier-free) weakest precondition.
    pub formula: Formula,
    /// Fresh variables introduced for `havoc` and `if (*)`; they are
    /// implicitly universally quantified in `formula`.
    pub universals: Vec<String>,
}

/// The result of an arena-backed weakest-precondition computation.
#[derive(Debug, Clone)]
pub struct WpInterned {
    /// The (quantifier-free) weakest precondition as an interned term.
    pub formula: TermId,
    /// Fresh variables introduced for `havoc` and `if (*)`; they are
    /// implicitly universally quantified in `formula`.
    pub universals: Vec<String>,
}

/// Computes `wp(body, post)` as a boxed formula tree.
///
/// Internally delegates to [`wp_interned`] over a scratch arena and
/// externalizes the result; the output is byte-identical to the
/// historical tree recursion ([`wp_reference`], pinned by tests).
///
/// # Panics
///
/// Panics if the body is not core (contains `call`/`while`).
pub fn wp(body: &Stmt, post: &Formula) -> WpResult {
    let mut arena = TermArena::new();
    let post_id = arena.intern_formula(post);
    let r = wp_interned(&mut arena, body, post_id);
    WpResult {
        formula: arena.extern_formula(r.formula),
        universals: r.universals,
    }
}

/// Computes `wp(body, post)` over a hash-consed arena: `if` branches
/// share the single interned postcondition and substitution is memoized
/// per `(term, var, replacement)`, so repeated subterms are transformed
/// once.
///
/// # Panics
///
/// Panics if the body is not core (contains `call`/`while`).
pub fn wp_interned(arena: &mut TermArena, body: &Stmt, post: TermId) -> WpInterned {
    let mut fresh = FreshNames::default();
    let formula = go_interned(arena, body, post, &mut fresh);
    WpInterned {
        formula,
        universals: fresh.names,
    }
}

fn go_interned(arena: &mut TermArena, s: &Stmt, post: TermId, fresh: &mut FreshNames) -> TermId {
    match s {
        Stmt::Skip => post,
        Stmt::Assume(f) => {
            let fid = arena.intern_formula(f);
            let nf = arena.not(fid);
            arena.or(vec![nf, post])
        }
        Stmt::Assert { cond, .. } => {
            let cid = arena.intern_formula(cond);
            arena.and(vec![cid, post])
        }
        Stmt::Assign(x, e) => {
            let eid = arena.intern_expr(e);
            arena.subst(post, x, eid)
        }
        Stmt::Havoc(x) => {
            let x2 = fresh.fresh(x);
            let vid = arena.intern_expr(&Expr::var(x2));
            arena.subst(post, x, vid)
        }
        Stmt::Seq(ss) => ss
            .iter()
            .rev()
            .fold(post, |acc, stmt| go_interned(arena, stmt, acc, fresh)),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let wt = go_interned(arena, then_branch, post, fresh);
            let we = go_interned(arena, else_branch, post, fresh);
            match cond {
                BranchCond::Det(c) => {
                    let cid = arena.intern_formula(c);
                    let ncid = arena.not(cid);
                    let left = arena.or(vec![ncid, wt]);
                    let right = arena.or(vec![cid, we]);
                    arena.and(vec![left, right])
                }
                BranchCond::NonDet => arena.and(vec![wt, we]),
            }
        }
        Stmt::Call { .. } | Stmt::While { .. } => {
            panic!("wp requires a core (desugared) body")
        }
    }
}

/// The historical tree-cloning recursion, kept as the equivalence oracle
/// for [`wp`] (and as the exponential side of the diamond benchmark).
/// Exponential in branch depth: do not call on deep branching code.
pub fn wp_reference(body: &Stmt, post: &Formula) -> WpResult {
    let mut fresh = FreshNames::default();
    let formula = go(body, post.clone(), &mut fresh);
    WpResult {
        formula,
        universals: fresh.names,
    }
}

#[derive(Default)]
struct FreshNames {
    names: Vec<String>,
    counter: u32,
}

impl FreshNames {
    fn fresh(&mut self, base: &str) -> String {
        self.counter += 1;
        let name = format!("%wp_{base}_{}", self.counter);
        self.names.push(name.clone());
        name
    }
}

fn go(s: &Stmt, post: Formula, fresh: &mut FreshNames) -> Formula {
    match s {
        Stmt::Skip => post,
        Stmt::Assume(f) => Formula::or(vec![Formula::not(f.clone()), post]),
        Stmt::Assert { cond, .. } => Formula::and(vec![cond.clone(), post]),
        Stmt::Assign(x, e) => post.subst(x, e),
        Stmt::Havoc(x) => {
            let x2 = fresh.fresh(x);
            post.subst(x, &Expr::var(x2))
        }
        Stmt::Seq(ss) => ss.iter().rev().fold(post, |acc, stmt| go(stmt, acc, fresh)),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let wt = go(then_branch, post.clone(), fresh);
            let we = go(else_branch, post, fresh);
            match cond {
                BranchCond::Det(c) => Formula::and(vec![
                    Formula::or(vec![Formula::not(c.clone()), wt]),
                    Formula::or(vec![c.clone(), we]),
                ]),
                BranchCond::NonDet => Formula::and(vec![wt, we]),
            }
        }
        Stmt::Call { .. } | Stmt::While { .. } => {
            panic!("wp requires a core (desugared) body")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acspec_ir::interp::{State, Value};
    use acspec_ir::parse::parse_program;
    use acspec_ir::{desugar_procedure, DesugarOptions};

    fn core_body(src: &str) -> Stmt {
        let prog = parse_program(src).expect("parses");
        let proc = prog.procedures[0].clone();
        desugar_procedure(&prog, &proc, DesugarOptions::default())
            .expect("desugars")
            .body
    }

    #[test]
    fn wp_of_assert_is_condition() {
        let body = core_body("procedure f(x: int) { assert x != 0; }");
        let r = wp(&body, &Formula::True);
        assert_eq!(
            r.formula,
            acspec_ir::parse::parse_formula("x != 0").expect("f")
        );
        assert!(r.universals.is_empty());
    }

    #[test]
    fn wp_of_guarded_assert() {
        // if (x == 0) { assert y != 0 } → wp = (x != 0 || y != 0).
        let body = core_body(
            "procedure f(x: int, y: int) {
               if (x == 0) { assert y != 0; }
             }",
        );
        let r = wp(&body, &Formula::True);
        // Check semantically via the interpreter: wp holds iff no failure.
        for x in -1..=1 {
            for y in -1..=1 {
                let mut st = State::new();
                st.set("x", Value::Int(x));
                st.set("y", Value::Int(y));
                let wp_holds = acspec_ir::interp::eval_formula(&st, &r.formula).expect("evaluates");
                let expected = !(x == 0 && y == 0);
                assert_eq!(wp_holds, expected, "at x={x}, y={y}");
            }
        }
    }

    #[test]
    fn wp_agrees_with_interpreter_on_deterministic_programs() {
        let srcs = [
            "procedure f(x: int, y: int) {
               y := x + 1;
               assert y != 0;
             }",
            "procedure f(x: int, y: int) {
               if (x < y) { assert x != 0; } else { assert y != 0; }
             }",
            "procedure f(x: int, y: int) {
               assume x >= 0;
               assert x + y >= y;
             }",
        ];
        for src in srcs {
            let body = core_body(src);
            let r = wp(&body, &Formula::True);
            assert!(r.universals.is_empty(), "deterministic program");
            for x in -2..=2 {
                for y in -2..=2 {
                    let mut st = State::new();
                    st.set("x", Value::Int(x));
                    st.set("y", Value::Int(y));
                    let wp_holds =
                        acspec_ir::interp::eval_formula(&st, &r.formula).expect("evaluates");
                    // Oracle: run all executions from this single state.
                    let mut report = acspec_ir::interp::ExecReport::default();
                    acspec_ir::interp::run_all(&body, &st, &[0], &mut report);
                    let fails = !report.failed.is_empty();
                    assert_eq!(wp_holds, !fails, "src={src} x={x} y={y}");
                }
            }
        }
    }

    #[test]
    fn wp_of_nondet_branch_is_conjunction() {
        let body = core_body(
            "procedure f(x: int) {
               if (*) { assert x != 0; } else { assert x != 1; }
             }",
        );
        let r = wp(&body, &Formula::True);
        // Both branches must be safe: wp = x != 0 && x != 1.
        let mut report_ok = true;
        for x in -1..=2 {
            let mut st = State::new();
            st.set("x", Value::Int(x));
            let wp_holds = acspec_ir::interp::eval_formula(&st, &r.formula).expect("evaluates");
            report_ok &= wp_holds == (x != 0 && x != 1);
        }
        assert!(report_ok);
    }

    #[test]
    fn wp_havoc_introduces_universal() {
        let body = core_body(
            "procedure f() {
               var x: int;
               havoc x;
               assert x != 0;
             }",
        );
        let r = wp(&body, &Formula::True);
        assert_eq!(r.universals.len(), 1);
        // wp = ∀x'. x' != 0, which is false; check one witness.
        let mut st = State::new();
        st.set(r.universals[0].clone(), Value::Int(0));
        assert!(!acspec_ir::interp::eval_formula(&st, &r.formula).expect("evaluates"));
    }

    /// N guarded asserts over a shared continuation: the boxed-tree wp
    /// duplicates the postcondition at every level (O(2^N) tree) while the
    /// arena shares it by id (O(N) interned nodes).
    fn diamond_src(depth: usize) -> String {
        let mut body = String::new();
        for i in 0..depth {
            body.push_str(&format!("if (x == {i}) {{ assert y > {i}; }}\n"));
        }
        format!("procedure diamond(x: int, y: int) {{\n{body}}}")
    }

    #[test]
    fn wp_matches_reference_tree_recursion() {
        let srcs = [
            "procedure f(x: int, y: int) {
               y := x + 1;
               if (x < y) { assert x != 0; } else { havoc y; assert y != 0; }
               if (*) { assume x >= 0; assert x + y >= y; }
             }",
            "procedure f(m: map, i: int) {
               m[i] := 1;
               assert m[i + 1] == 0;
             }",
        ];
        for src in srcs.iter().map(|s| s.to_string()).chain([diamond_src(6)]) {
            let body = core_body(&src);
            for post in [
                Formula::True,
                acspec_ir::parse::parse_formula("x >= 0").expect("f"),
            ] {
                let fast = wp(&body, &post);
                let slow = wp_reference(&body, &post);
                assert_eq!(fast.formula, slow.formula, "src={src}");
                assert_eq!(fast.universals, slow.universals, "src={src}");
            }
        }
    }

    #[test]
    fn diamond_wp_is_linear_in_the_arena_and_exponential_as_a_tree() {
        let depth = 24;
        let body = core_body(&diamond_src(depth));
        let mut arena = TermArena::new();
        let post = arena.intern_formula(&Formula::True);
        let r = wp_interned(&mut arena, &body, post);
        let interned = arena.stats().interned_nodes;
        // Linear: a small constant number of distinct nodes per level.
        assert!(
            interned <= 24 * depth as u64,
            "expected O(depth) interned nodes, got {interned} at depth {depth}"
        );
        // The same result expanded as a tree is exponential — the tree
        // recursion would have materialized all of these nodes.
        assert!(
            arena.tree_size(r.formula) > 1u64 << depth,
            "diamond tree must double per level"
        );
        assert!(arena.stats().subst_hits + arena.stats().intern_hits > 0);
    }

    #[test]
    fn figure1_wp_shape() {
        // The double-free example's WP should require cmd != READ(1),
        // unfreed pointers, and no aliasing (§1.1.1). We verify
        // semantically: the four-conjunct spec implies wp and each
        // three-conjunct weakening does not.
        let src = "
            global Freed: map;
            procedure Foo(c: int, buf: int, cmd: int) {
              if (*) {
                assert Freed[c] == 0;  Freed[c] := 1;
                assert Freed[buf] == 0; Freed[buf] := 1;
              } else {
                if (cmd == 1) {
                  if (*) {
                    assert Freed[c] == 0;  Freed[c] := 1;
                    assert Freed[buf] == 0; Freed[buf] := 1;
                  }
                }
                assert Freed[c] == 0;  Freed[c] := 1;
                assert Freed[buf] == 0; Freed[buf] := 1;
              }
            }";
        let body = core_body(src);
        let r = wp(&body, &Formula::True);
        let eval_wp = |c: i64, buf: i64, cmd: i64, freed_default: i64| -> bool {
            let mut st = State::new();
            st.set("c", Value::Int(c));
            st.set("buf", Value::Int(buf));
            st.set("cmd", Value::Int(cmd));
            st.set("Freed", Value::const_map(freed_default));
            acspec_ir::interp::eval_formula(&st, &r.formula).expect("evaluates")
        };
        // Good inputs: distinct unfreed pointers, cmd != 1.
        assert!(eval_wp(10, 20, 0, 0));
        // cmd == 1 → the missing-return path double-frees.
        assert!(!eval_wp(10, 20, 1, 0));
        // Aliased pointers fail.
        assert!(!eval_wp(10, 10, 0, 0));
        // Already-freed inputs fail.
        assert!(!eval_wp(10, 20, 0, 1));
    }
}
