//! Pipeline stages, the per-procedure conflict budget, and per-stage
//! query/time accounting.
//!
//! The analysis session runs one [`ProcAnalyzer`](crate::ProcAnalyzer)
//! through a fixed sequence of stages (encode once, then screen / mine /
//! cover / search / evaluate per configuration). The analyzer attributes
//! every query and its wall-clock time to the stage active when it was
//! issued, so reports can break Figure 9's single `T` column into real
//! per-stage columns, and budget exhaustion carries the stage it
//! happened in instead of a bare [`Timeout`](crate::Timeout).

use std::fmt;
use std::time::{Duration, Instant};

/// A stage of the per-procedure analysis pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Desugaring + symbolic execution into the solver (no queries).
    Encode,
    /// The demonic baseline: `Fail(true)` and the `Dead` baseline.
    Screen,
    /// Predicate mining for a configuration's vocabulary.
    Mine,
    /// The predicate cover `β_Q(wp)` (ALL-SAT enumeration).
    Cover,
    /// Algorithm 2's greedy weakening search.
    Search,
    /// Re-evaluating `Fail`/witnesses under pruned specifications.
    Evaluate,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 6] = [
        Stage::Encode,
        Stage::Screen,
        Stage::Mine,
        Stage::Cover,
        Stage::Search,
        Stage::Evaluate,
    ];

    /// A short lowercase name (stable; used in reports and JSON).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Encode => "encode",
            Stage::Screen => "screen",
            Stage::Mine => "mine",
            Stage::Cover => "cover",
            Stage::Search => "search",
            Stage::Evaluate => "evaluate",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a query (or a whole stage) gave up without a definite answer.
///
/// One taxonomy serves both levels: the analyzer tags each aborted
/// query (`QueryOutcome::Unknown { reason }`) and the session tags the
/// resulting [`StageError`] with the same value, so a report's
/// `timeout_stage` can say not just *where* the pipeline stopped but
/// *what* resource ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultReason {
    /// The deterministic conflict [`Budget`] ran dry.
    Conflicts,
    /// The wall-clock [`Deadline`] passed.
    Deadline,
    /// A structural cap (cover clauses, search nodes, path profiles)
    /// was exceeded.
    Cap,
    /// A fault injected by the chaos harness ([`crate::chaos`]).
    Chaos,
}

impl FaultReason {
    /// Stable lowercase name (used in reports and JSON).
    pub fn name(self) -> &'static str {
        match self {
            FaultReason::Conflicts => "conflicts",
            FaultReason::Deadline => "deadline",
            FaultReason::Cap => "cap",
            FaultReason::Chaos => "chaos",
        }
    }

    /// Human phrasing for diagnostics.
    fn describe(self) -> &'static str {
        match self {
            FaultReason::Conflicts => "analysis budget exhausted",
            FaultReason::Deadline => "analysis deadline exceeded",
            FaultReason::Cap => "analysis cap exceeded",
            FaultReason::Chaos => "injected fault",
        }
    }
}

impl fmt::Display for FaultReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Budget exhaustion, tagged with the stage it happened in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageError {
    /// The stage whose query exhausted the budget.
    pub stage: Stage,
    /// What resource ran out (conflicts, wall clock, a cap, or an
    /// injected fault).
    pub reason: FaultReason,
}

impl fmt::Display for StageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} during {}", self.reason.describe(), self.stage)
    }
}

impl std::error::Error for StageError {}

/// A wall-clock deadline running alongside the conflict [`Budget`] —
/// the literal analogue of the paper's 10-second Z3 timeout, for
/// deployments where wall time (not determinism) is the constraint.
///
/// `None` = unlimited, which is the default: wall-clock limits make
/// runs nondeterministic, so every reproduction path leaves the
/// deadline off and relies on the conflict budget alone.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    start: Instant,
    limit: Option<Duration>,
}

impl Deadline {
    /// A deadline of `limit` from now (`None` = unlimited).
    pub fn new(limit: Option<Duration>) -> Self {
        Deadline {
            start: Instant::now(),
            limit,
        }
    }

    /// An unlimited deadline (never exceeded).
    pub fn unlimited() -> Self {
        Deadline::new(None)
    }

    /// The configured limit (`None` = unlimited).
    pub fn limit(&self) -> Option<Duration> {
        self.limit
    }

    /// True once the wall clock has passed the limit.
    pub fn exceeded(&self) -> bool {
        match self.limit {
            None => false,
            Some(limit) => self.start.elapsed() >= limit,
        }
    }

    /// Restarts the clock (granting a fresh limit), mirroring
    /// [`Budget::refill`] when a session shares one analyzer across
    /// configurations.
    pub fn restart(&mut self) {
        self.start = Instant::now();
    }
}

impl Default for Deadline {
    fn default() -> Self {
        Deadline::unlimited()
    }
}

/// The per-procedure conflict pool — the deterministic analogue of the
/// paper's 10-second timeout. Refillable, so a session sharing one
/// analyzer across configurations can grant each configuration the same
/// pool the old one-analyzer-per-config drivers did.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    initial: Option<u64>,
    left: Option<u64>,
}

impl Budget {
    /// A pool of `conflicts` SAT conflicts (`None` = unlimited).
    pub fn new(conflicts: Option<u64>) -> Self {
        Budget {
            initial: conflicts,
            left: conflicts,
        }
    }

    /// Remaining conflicts (`None` = unlimited).
    pub fn left(&self) -> Option<u64> {
        self.left
    }

    /// True once the pool is empty.
    pub fn exhausted(&self) -> bool {
        matches!(self.left, Some(0))
    }

    /// Resets the pool to its initial size.
    pub fn refill(&mut self) {
        self.left = self.initial;
    }

    /// Deducts `spent` conflicts (at least one per query, so query-heavy
    /// but conflict-free workloads still terminate), saturating at zero.
    pub fn charge(&mut self, spent: u64) {
        if let Some(left) = &mut self.left {
            *left = left.saturating_sub(spent.max(1));
        }
    }
}

/// Accumulated cost of one stage.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageMetrics {
    /// Wall-clock seconds spent in the stage.
    pub seconds: f64,
    /// SMT queries issued by the stage.
    pub queries: u64,
}

/// Per-stage metrics for one procedure/configuration run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTable {
    metrics: [StageMetrics; Stage::ALL.len()],
}

impl StageTable {
    /// The metrics of one stage.
    pub fn get(&self, stage: Stage) -> StageMetrics {
        self.metrics[stage.index()]
    }

    /// Adds cost to a stage.
    pub fn record(&mut self, stage: Stage, seconds: f64, queries: u64) {
        let m = &mut self.metrics[stage.index()];
        m.seconds += seconds;
        m.queries += queries;
    }

    /// Adds every stage of `other` into `self`.
    pub fn merge(&mut self, other: &StageTable) {
        for stage in Stage::ALL {
            let m = other.get(stage);
            self.record(stage, m.seconds, m.queries);
        }
    }

    /// `(stage, metrics)` pairs in pipeline order.
    pub fn iter(&self) -> impl Iterator<Item = (Stage, StageMetrics)> + '_ {
        Stage::ALL.iter().map(|&s| (s, self.get(s)))
    }

    /// The per-stage difference `self - baseline`, for carving one
    /// configuration's share out of a shared analyzer's cumulative
    /// table. Saturates at zero (float noise aside, `baseline` is
    /// expected to be a prefix snapshot of `self`).
    pub fn since(&self, baseline: &StageTable) -> StageTable {
        let mut delta = StageTable::default();
        for stage in Stage::ALL {
            let now = self.get(stage);
            let then = baseline.get(stage);
            delta.record(
                stage,
                (now.seconds - then.seconds).max(0.0),
                now.queries.saturating_sub(then.queries),
            );
        }
        delta
    }

    /// Total seconds across stages (Figure 9's `T` column).
    pub fn total_seconds(&self) -> f64 {
        self.metrics.iter().map(|m| m.seconds).sum()
    }

    /// Total queries across stages.
    pub fn total_queries(&self) -> u64 {
        self.metrics.iter().map(|m| m.queries).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_charges_at_least_one_and_refills() {
        let mut b = Budget::new(Some(3));
        assert!(!b.exhausted());
        b.charge(0);
        assert_eq!(b.left(), Some(2));
        b.charge(10);
        assert!(b.exhausted());
        b.refill();
        assert_eq!(b.left(), Some(3));

        let mut unlimited = Budget::new(None);
        unlimited.charge(u64::MAX);
        assert!(!unlimited.exhausted());
        assert_eq!(unlimited.left(), None);
    }

    #[test]
    fn table_records_and_totals() {
        let mut t = StageTable::default();
        t.record(Stage::Screen, 0.5, 10);
        t.record(Stage::Search, 1.0, 5);
        t.record(Stage::Screen, 0.25, 2);
        assert_eq!(t.get(Stage::Screen).queries, 12);
        assert_eq!(t.total_queries(), 17);
        assert!((t.total_seconds() - 1.75).abs() < 1e-9);

        let mut sum = StageTable::default();
        sum.merge(&t);
        sum.merge(&t);
        assert_eq!(sum.total_queries(), 34);
    }

    #[test]
    fn stage_error_names_the_stage_and_reason() {
        let e = StageError {
            stage: Stage::Cover,
            reason: FaultReason::Conflicts,
        };
        assert_eq!(e.to_string(), "analysis budget exhausted during cover");
        let e = StageError {
            stage: Stage::Search,
            reason: FaultReason::Deadline,
        };
        assert_eq!(e.to_string(), "analysis deadline exceeded during search");
    }

    #[test]
    fn deadline_unlimited_never_fires_and_zero_fires_immediately() {
        let unlimited = Deadline::unlimited();
        assert!(!unlimited.exceeded());
        assert_eq!(unlimited.limit(), None);

        let mut zero = Deadline::new(Some(Duration::from_secs(0)));
        assert!(zero.exceeded());
        // Restart grants a fresh (still zero) window.
        zero.restart();
        assert!(zero.exceeded());

        let generous = Deadline::new(Some(Duration::from_secs(3600)));
        assert!(!generous.exceeded());
    }
}
