//! Pipeline stages, the per-procedure conflict budget, and per-stage
//! query/time accounting.
//!
//! The analysis session runs one [`ProcAnalyzer`](crate::ProcAnalyzer)
//! through a fixed sequence of stages (encode once, then screen / mine /
//! cover / search / evaluate per configuration). The analyzer attributes
//! every query and its wall-clock time to the stage active when it was
//! issued, so reports can break Figure 9's single `T` column into real
//! per-stage columns, and budget exhaustion carries the stage it
//! happened in instead of a bare [`Timeout`](crate::Timeout).

use std::fmt;

/// A stage of the per-procedure analysis pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Desugaring + symbolic execution into the solver (no queries).
    Encode,
    /// The demonic baseline: `Fail(true)` and the `Dead` baseline.
    Screen,
    /// Predicate mining for a configuration's vocabulary.
    Mine,
    /// The predicate cover `β_Q(wp)` (ALL-SAT enumeration).
    Cover,
    /// Algorithm 2's greedy weakening search.
    Search,
    /// Re-evaluating `Fail`/witnesses under pruned specifications.
    Evaluate,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 6] = [
        Stage::Encode,
        Stage::Screen,
        Stage::Mine,
        Stage::Cover,
        Stage::Search,
        Stage::Evaluate,
    ];

    /// A short lowercase name (stable; used in reports and JSON).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Encode => "encode",
            Stage::Screen => "screen",
            Stage::Mine => "mine",
            Stage::Cover => "cover",
            Stage::Search => "search",
            Stage::Evaluate => "evaluate",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Budget exhaustion, tagged with the stage it happened in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageError {
    /// The stage whose query exhausted the budget.
    pub stage: Stage,
}

impl fmt::Display for StageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "analysis budget exhausted during {}", self.stage)
    }
}

impl std::error::Error for StageError {}

/// The per-procedure conflict pool — the deterministic analogue of the
/// paper's 10-second timeout. Refillable, so a session sharing one
/// analyzer across configurations can grant each configuration the same
/// pool the old one-analyzer-per-config drivers did.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    initial: Option<u64>,
    left: Option<u64>,
}

impl Budget {
    /// A pool of `conflicts` SAT conflicts (`None` = unlimited).
    pub fn new(conflicts: Option<u64>) -> Self {
        Budget {
            initial: conflicts,
            left: conflicts,
        }
    }

    /// Remaining conflicts (`None` = unlimited).
    pub fn left(&self) -> Option<u64> {
        self.left
    }

    /// True once the pool is empty.
    pub fn exhausted(&self) -> bool {
        matches!(self.left, Some(0))
    }

    /// Resets the pool to its initial size.
    pub fn refill(&mut self) {
        self.left = self.initial;
    }

    /// Deducts `spent` conflicts (at least one per query, so query-heavy
    /// but conflict-free workloads still terminate), saturating at zero.
    pub fn charge(&mut self, spent: u64) {
        if let Some(left) = &mut self.left {
            *left = left.saturating_sub(spent.max(1));
        }
    }
}

/// Accumulated cost of one stage.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageMetrics {
    /// Wall-clock seconds spent in the stage.
    pub seconds: f64,
    /// SMT queries issued by the stage.
    pub queries: u64,
}

/// Per-stage metrics for one procedure/configuration run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTable {
    metrics: [StageMetrics; Stage::ALL.len()],
}

impl StageTable {
    /// The metrics of one stage.
    pub fn get(&self, stage: Stage) -> StageMetrics {
        self.metrics[stage.index()]
    }

    /// Adds cost to a stage.
    pub fn record(&mut self, stage: Stage, seconds: f64, queries: u64) {
        let m = &mut self.metrics[stage.index()];
        m.seconds += seconds;
        m.queries += queries;
    }

    /// Adds every stage of `other` into `self`.
    pub fn merge(&mut self, other: &StageTable) {
        for stage in Stage::ALL {
            let m = other.get(stage);
            self.record(stage, m.seconds, m.queries);
        }
    }

    /// `(stage, metrics)` pairs in pipeline order.
    pub fn iter(&self) -> impl Iterator<Item = (Stage, StageMetrics)> + '_ {
        Stage::ALL.iter().map(|&s| (s, self.get(s)))
    }

    /// The per-stage difference `self - baseline`, for carving one
    /// configuration's share out of a shared analyzer's cumulative
    /// table. Saturates at zero (float noise aside, `baseline` is
    /// expected to be a prefix snapshot of `self`).
    pub fn since(&self, baseline: &StageTable) -> StageTable {
        let mut delta = StageTable::default();
        for stage in Stage::ALL {
            let now = self.get(stage);
            let then = baseline.get(stage);
            delta.record(
                stage,
                (now.seconds - then.seconds).max(0.0),
                now.queries.saturating_sub(then.queries),
            );
        }
        delta
    }

    /// Total seconds across stages (Figure 9's `T` column).
    pub fn total_seconds(&self) -> f64 {
        self.metrics.iter().map(|m| m.seconds).sum()
    }

    /// Total queries across stages.
    pub fn total_queries(&self) -> u64 {
        self.metrics.iter().map(|m| m.queries).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_charges_at_least_one_and_refills() {
        let mut b = Budget::new(Some(3));
        assert!(!b.exhausted());
        b.charge(0);
        assert_eq!(b.left(), Some(2));
        b.charge(10);
        assert!(b.exhausted());
        b.refill();
        assert_eq!(b.left(), Some(3));

        let mut unlimited = Budget::new(None);
        unlimited.charge(u64::MAX);
        assert!(!unlimited.exhausted());
        assert_eq!(unlimited.left(), None);
    }

    #[test]
    fn table_records_and_totals() {
        let mut t = StageTable::default();
        t.record(Stage::Screen, 0.5, 10);
        t.record(Stage::Search, 1.0, 5);
        t.record(Stage::Screen, 0.25, 2);
        assert_eq!(t.get(Stage::Screen).queries, 12);
        assert_eq!(t.total_queries(), 17);
        assert!((t.total_seconds() - 1.75).abs() < 1e-9);

        let mut sum = StageTable::default();
        sum.merge(&t);
        sum.merge(&t);
        assert_eq!(sum.total_queries(), 34);
    }

    #[test]
    fn stage_error_names_the_stage() {
        let e = StageError {
            stage: Stage::Cover,
        };
        assert_eq!(e.to_string(), "analysis budget exhausted during cover");
    }
}
