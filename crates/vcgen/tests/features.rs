//! Unit tests for analyzer features beyond the core Dead/Fail queries:
//! failure witnesses, path profiles, and budget exhaustion.

use acspec_ir::parse::{parse_formula, parse_program};
use acspec_ir::{desugar_procedure, DesugarOptions, DesugaredProc};
use acspec_vcgen::analyzer::{AnalyzerConfig, ProcAnalyzer};
use acspec_vcgen::stage::FaultReason;

fn desugared(src: &str) -> DesugaredProc {
    let prog = parse_program(src).expect("parses");
    let proc = prog.procedures.last().expect("proc").clone();
    desugar_procedure(&prog, &proc, DesugarOptions::default()).expect("desugars")
}

fn analyzer(d: &DesugaredProc) -> ProcAnalyzer {
    ProcAnalyzer::new(d, AnalyzerConfig::default()).expect("encodes")
}

#[test]
fn witness_satisfies_the_failing_condition() {
    let d = desugared(
        "procedure f(x: int, y: int) {
           assume x > 10;
           assert x + y != 12;
         }",
    );
    let mut az = analyzer(&d);
    let a = az.assertions()[0];
    let w = az
        .failure_witness(a, &[])
        .expect("in budget")
        .expect("can fail");
    let x = w["x"];
    let y = w["y"];
    assert!(x > 10, "assume respected: x = {x}");
    assert_eq!(x + y, 12, "failure condition met: x = {x}, y = {y}");
}

#[test]
fn witness_respects_selectors() {
    let d = desugared("procedure f(x: int) { assert x != 7; }");
    let mut az = analyzer(&d);
    let spec = parse_formula("x > 5").expect("parses");
    let sel = az.add_selector(&spec).expect("inputs");
    let a = az.assertions()[0];
    let w = az
        .failure_witness(a, &[sel])
        .expect("in budget")
        .expect("x = 7 is in the spec");
    assert_eq!(w["x"], 7);
}

#[test]
fn no_witness_when_assert_cannot_fail() {
    let d = desugared(
        "procedure f(x: int) {
           assume x == 1;
           assert x == 1;
         }",
    );
    let mut az = analyzer(&d);
    let a = az.assertions()[0];
    assert!(az.failure_witness(a, &[]).expect("in budget").is_none());
}

#[test]
fn path_profiles_count_feasible_combinations() {
    // Two independent branches → 4 profiles; correlated branches → 2.
    let independent = desugared(
        "procedure f(x: int, y: int) {
           if (x == 0) { skip; } else { skip; }
           if (y == 0) { skip; } else { skip; }
         }",
    );
    let mut az = analyzer(&independent);
    let profiles = az.path_profiles(&[], 64).expect("in budget");
    assert_eq!(profiles.len(), 4);

    let correlated = desugared(
        "procedure f(x: int) {
           if (x == 0) { skip; } else { skip; }
           if (x == 0) { skip; } else { skip; }
         }",
    );
    let mut az = analyzer(&correlated);
    let profiles = az.path_profiles(&[], 64).expect("in budget");
    assert_eq!(
        profiles.len(),
        2,
        "branches on the same predicate correlate"
    );
}

#[test]
fn path_profiles_shrink_under_selectors() {
    let d = desugared(
        "procedure f(x: int, y: int) {
           if (x == 0) { skip; } else { skip; }
           if (y == 0) { skip; } else { skip; }
         }",
    );
    let mut az = analyzer(&d);
    let baseline = az.path_profiles(&[], 64).expect("ok");
    let spec = parse_formula("x != 0 || y != 0").expect("parses");
    let sel = az.add_selector(&spec).expect("inputs");
    let constrained = az.path_profiles(&[sel], 64).expect("ok");
    assert!(constrained.is_subset(&baseline));
    assert_eq!(baseline.len() - constrained.len(), 1, "(then,then) dies");
}

#[test]
fn profile_cap_exhaustion_is_a_timeout() {
    // 2^6 = 64 profiles with a cap of 8.
    let d = desugared(
        "procedure f(a: int, b: int, c: int, d2: int, e: int, g: int) {
           if (a == 0) { skip; }
           if (b == 0) { skip; }
           if (c == 0) { skip; }
           if (d2 == 0) { skip; }
           if (e == 0) { skip; }
           if (g == 0) { skip; }
         }",
    );
    let mut az = analyzer(&d);
    assert!(az.path_profiles(&[], 8).is_err());
}

#[test]
fn zero_budget_times_out_immediately() {
    let d = desugared("procedure f(x: int) { assert x != 0; }");
    let mut az = ProcAnalyzer::new(
        &d,
        AnalyzerConfig {
            conflict_budget: Some(0),
            ..AnalyzerConfig::default()
        },
    )
    .expect("encodes");
    // The first query consumes at least one budget unit; subsequent ones
    // must report Timeout rather than looping.
    let _ = az.fail_set(&[]);
    assert!(az.fail_set(&[]).is_err(), "budget exhausted");
}

#[test]
fn queries_counter_increments() {
    let d = desugared(
        "procedure f(x: int) {
           if (x == 0) { skip; }
           assert x != 1;
         }",
    );
    let mut az = analyzer(&d);
    assert_eq!(az.queries, 0);
    let _ = az.dead_set(&[]).expect("ok");
    let after_dead = az.queries;
    assert!(after_dead >= 2, "two tracked locations");
    let _ = az.fail_set(&[]).expect("ok");
    assert!(az.queries > after_dead);
}

#[test]
fn expired_deadline_reports_unknown_with_reason() {
    let d = desugared("procedure f(x: int) { assert x != 0; }");
    let mut az = ProcAnalyzer::new(
        &d,
        AnalyzerConfig {
            deadline: Some(std::time::Duration::ZERO),
            ..AnalyzerConfig::default()
        },
    )
    .expect("encodes");
    az.set_query_recording(true);
    let a = az.assertions()[0];
    assert!(az.can_fail(a, &[]).is_err(), "deadline already expired");
    assert_eq!(az.last_fault(), FaultReason::Deadline);
    let records = az.take_query_records();
    assert!(!records.is_empty(), "the gated query is still recorded");
    assert!(records
        .iter()
        .all(|r| r.outcome.reason() == Some(FaultReason::Deadline)));
}

/// The cache-soundness half of the failure model: an `Unknown` outcome
/// carries no monotone information, so it must never be admitted into
/// the dominance cache — a cached Unknown would corrupt every dominated
/// query. Exhausting the deadline before any query leaves the cache
/// provably empty.
#[test]
fn unknown_is_never_admitted_into_the_query_cache() {
    let d = desugared(
        "procedure f(x: int) {
           if (x == 0) { skip; }
           assert x != 1;
         }",
    );
    let mut az = ProcAnalyzer::new(
        &d,
        AnalyzerConfig {
            query_cache: true,
            deadline: Some(std::time::Duration::ZERO),
            ..AnalyzerConfig::default()
        },
    )
    .expect("encodes");
    let locs = az.locations();
    let asserts = az.assertions();
    for l in locs {
        assert!(az.is_reachable(l, &[]).is_err());
    }
    for a in asserts {
        assert!(az.can_fail(a, &[]).is_err());
    }
    assert_eq!(
        az.cache_entries(),
        0,
        "Unknown outcomes must not populate the dominance cache"
    );

    // Control: the same queries under no deadline do populate it.
    let mut az = ProcAnalyzer::new(
        &d,
        AnalyzerConfig {
            query_cache: true,
            ..AnalyzerConfig::default()
        },
    )
    .expect("encodes");
    let _ = az.dead_set(&[]).expect("ok");
    let _ = az.fail_set(&[]).expect("ok");
    assert!(az.cache_entries() > 0, "decided queries are cached");
}
