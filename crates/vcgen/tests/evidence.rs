//! Certification sanity: fresh-replay certificates carry evidence that
//! matches the incremental verdicts, self-check under their own
//! serialized data, and are shared (not fabricated) across
//! dominance-cache hits.

use acspec_ir::parse::{parse_formula, parse_program};
use acspec_ir::{desugar_procedure, DesugarOptions, DesugaredProc};
use acspec_vcgen::analyzer::{AnalyzerConfig, ProcAnalyzer};
use acspec_vcgen::evidence::CertOutcome;

fn desugared(src: &str) -> DesugaredProc {
    let prog = parse_program(src).expect("parses");
    let proc = prog.procedures.last().expect("proc").clone();
    desugar_procedure(&prog, &proc, DesugarOptions::default()).expect("desugars")
}

fn analyzer(d: &DesugaredProc) -> ProcAnalyzer {
    let mut az = ProcAnalyzer::new(d, AnalyzerConfig::default()).expect("encodes");
    az.enable_certs();
    az
}

#[test]
fn sat_cert_carries_a_self_checking_model() {
    let d = desugared(
        "procedure f(x: int, y: int) {
           assume x > 10;
           assert x + y != 12;
         }",
    );
    let mut az = analyzer(&d);
    let a = az.assertions()[0];
    assert!(az.can_fail(a, &[]).expect("in budget"));
    let idx = az.certify_can_fail(a, &[]).expect("certs enabled");
    let store = az.cert_store().expect("enabled");
    let cert = &store.certs[idx];
    match &cert.outcome {
        CertOutcome::Sat(model) => {
            let x = model.ints["x!0"];
            let y = model.ints["y!0"];
            assert!(x > 10, "model respects the assume: x = {x}");
            assert_eq!(x + y, 12, "model hits the failure");
        }
        other => panic!("expected sat, got {}", other.name()),
    }
    assert!(cert.self_checked, "model must satisfy every asserted root");
}

#[test]
fn unsat_cert_carries_core_and_proof() {
    let d = desugared(
        "procedure f(x: int) {
           assume x == 1;
           assert x == 1;
         }",
    );
    let mut az = analyzer(&d);
    let a = az.assertions()[0];
    assert!(!az.can_fail(a, &[]).expect("in budget"));
    let idx = az.certify_can_fail(a, &[]).expect("certs enabled");
    let store = az.cert_store().expect("enabled");
    let cert = &store.certs[idx];
    match &cert.outcome {
        CertOutcome::Unsat(proof) => {
            assert!(!proof.events.is_empty(), "clause log must be present");
            for c in &proof.core {
                assert!(
                    cert.assumptions.contains(c),
                    "core must be a subset of the assumptions"
                );
            }
        }
        other => panic!("expected unsat, got {}", other.name()),
    }
}

#[test]
fn map_heavy_sat_cert_self_checks() {
    let d = desugared(
        "procedure f(m: map, i: int, j: int) {
           assume i != j;
           m[i] := 1;
           assert m[j] != 5;
         }",
    );
    let mut az = analyzer(&d);
    let a = az.assertions()[0];
    assert!(az.can_fail(a, &[]).expect("in budget"));
    let idx = az.certify_can_fail(a, &[]).expect("certs enabled");
    let store = az.cert_store().expect("enabled");
    assert!(store.certs[idx].self_checked, "map model must evaluate");
}

#[test]
fn cache_hits_reference_the_originating_certificate() {
    let d = desugared("procedure f(x: int) { assert x != 7; }");
    let mut az = analyzer(&d);
    let spec = parse_formula("x > 5").expect("parses");
    let sel = az.add_selector(&spec).expect("inputs");
    let a = az.assertions()[0];
    assert!(az.can_fail(a, &[sel]).expect("in budget"));
    let first = az.certify_can_fail(a, &[sel]).expect("certs enabled");
    // The same claim again — answered by memo, same certificate.
    let second = az.certify_can_fail(a, &[sel]).expect("certs enabled");
    assert_eq!(first, second, "repeat claims share one certificate");
    assert_eq!(az.cert_store().expect("enabled").certs.len(), 1);
}

#[test]
fn certification_does_not_perturb_counters() {
    let d = desugared("procedure f(x: int) { assert x != 7; }");
    let mut az = analyzer(&d);
    let a = az.assertions()[0];
    assert!(az.can_fail(a, &[]).expect("in budget"));
    let queries = az.queries;
    let budget = az.budget_left();
    az.certify_can_fail(a, &[]).expect("certs enabled");
    assert_eq!(az.queries, queries, "certification is off the query path");
    assert_eq!(az.budget_left(), budget, "certification is budget-free");
}
