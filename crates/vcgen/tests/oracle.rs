//! Validates the VC-based `Dead`/`Fail` engine against the brute-force
//! reference interpreter and against the paper's worked examples.

use acspec_ir::interp::brute_force;
use acspec_ir::locs::LocId;
use acspec_ir::parse::{parse_formula, parse_program};
use acspec_ir::stmt::AssertId;
use acspec_ir::{desugar_procedure, DesugarOptions, DesugaredProc};
use acspec_vcgen::analyzer::{AnalyzerConfig, ProcAnalyzer};

fn desugared(src: &str) -> DesugaredProc {
    let prog = parse_program(src).expect("parses");
    acspec_ir::typecheck::check_program(&prog).expect("well sorted");
    let proc = prog.procedures.last().expect("has procedure").clone();
    desugar_procedure(&prog, &proc, DesugarOptions::default()).expect("desugars")
}

fn analyzer(d: &DesugaredProc) -> ProcAnalyzer {
    ProcAnalyzer::new(d, AnalyzerConfig::default()).expect("encodes")
}

/// Figure 1 of the paper, with the missing `return` modeled by branch
/// structure (our core language has no returns; HAVOC-style lowering
/// produces the same shape). Shared with the scenario corpus.
use acspec_corpus::fixtures::FIGURE1_INLINED as FIGURE1;

#[test]
fn figure1_demonic_environment_fails_everything() {
    let d = desugared(FIGURE1);
    let mut az = analyzer(&d);
    // The conservative verifier reports all six asserts (§1.1.1).
    let fails = az.fail_set(&[]).expect("in budget");
    assert_eq!(fails.len(), 6);
    // No dead code under `true`.
    assert!(az.dead_set(&[]).expect("in budget").is_empty());
}

#[test]
fn figure1_wp_spec_kills_code() {
    let d = desugared(FIGURE1);
    let mut az = analyzer(&d);
    // The weakest precondition (§1.1.1):
    // cmd != READ && !Freed[c] && !Freed[buf] && c != buf
    let wp_spec =
        parse_formula("cmd != 1 && Freed[c] == 0 && Freed[buf] == 0 && c != buf").expect("parses");
    let sel = az.add_selector(&wp_spec).expect("inputs");
    let fails = az.fail_set(&[sel]).expect("in budget");
    assert!(fails.is_empty(), "WP fails nothing: {fails:?}");
    let dead = az.dead_set(&[sel]).expect("in budget");
    assert!(!dead.is_empty(), "WP creates dead code (A3/A4 branch)");
}

#[test]
fn figure1_almost_correct_spec_fails_exactly_a5() {
    let d = desugared(FIGURE1);
    let mut az = analyzer(&d);
    // The paper's almost-correct specification:
    // !Freed[c] && !Freed[buf] && c != buf
    let ac = parse_formula("Freed[c] == 0 && Freed[buf] == 0 && c != buf").expect("parses");
    let sel = az.add_selector(&ac).expect("inputs");
    let dead = az.dead_set(&[sel]).expect("in budget");
    assert!(
        dead.is_empty(),
        "almost-correct spec kills no code: {dead:?}"
    );
    let fails = az.fail_set(&[sel]).expect("in budget");
    // Exactly one failure: A5 (the true double-free; footnote 1 explains
    // why A6 cannot also fail).
    assert_eq!(fails.len(), 1, "got {fails:?}");
    let a5 = d.asserts.iter().map(|m| m.id).nth(4).expect("six asserts");
    assert!(fails.contains(&a5));
}

#[test]
fn assume_locations_are_tracked() {
    let d = desugared(
        "procedure f(x: int) {
           assume x > 0;
           if (x < 0) { skip; } else { skip; }
         }",
    );
    let mut az = analyzer(&d);
    let dead = az.dead_set(&[]).expect("in budget");
    // L0 (after assume) live; L1 (then of x<0) dead; L2 (else) live.
    assert_eq!(dead.into_iter().collect::<Vec<_>>(), vec![LocId(1)]);
}

#[test]
fn blocked_execution_still_reaches_earlier_locations() {
    // The location after the first assume is reachable even though the
    // second assume always blocks.
    let d = desugared(
        "procedure f(x: int) {
           assume x > 0;
           assume x < 0;
         }",
    );
    let mut az = analyzer(&d);
    let dead = az.dead_set(&[]).expect("in budget");
    assert_eq!(dead.into_iter().collect::<Vec<_>>(), vec![LocId(1)]);
}

#[test]
fn failing_assert_blocks_later_failures_on_same_path() {
    // assert x != 0; assert x != 0 — the second can never be the first
    // failure.
    let d = desugared(
        "procedure f(x: int) {
           assert x != 0;
           assert x != 0;
         }",
    );
    let mut az = analyzer(&d);
    let fails = az.fail_set(&[]).expect("in budget");
    assert_eq!(fails.into_iter().collect::<Vec<_>>(), vec![AssertId(0)]);
}

#[test]
fn nu_constants_are_inputs() {
    let d = desugared(
        "procedure malloc() returns (p: int);
         procedure f() {
           var p: int;
           call p := malloc();
           assert p != 0;
         }",
    );
    assert_eq!(d.nus.len(), 1);
    let mut az = analyzer(&d);
    assert_eq!(az.fail_set(&[]).expect("in budget").len(), 1);
    // Selecting ν != 0 suppresses the failure.
    let nu = d.nus[0].0.clone();
    let spec = acspec_ir::Formula::ne(acspec_ir::Expr::Nu(nu), acspec_ir::Expr::Int(0));
    let sel = az.add_selector(&spec).expect("nu is an input");
    assert!(az.fail_set(&[sel]).expect("in budget").is_empty());
}

#[test]
fn matches_interpreter_on_random_programs() {
    // Deterministic random programs over small int domains; compare
    // Dead/Fail with brute force. No maps (brute force enumerates const
    // maps only) and deterministic value domain {-1, 0, 1}.
    let mut seed = 0xabcdef12u64;
    let mut rng = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    let vars = ["x", "y", "z"];
    for case in 0..40 {
        let mut stmts = Vec::new();
        let n = 3 + (rng() % 4) as usize;
        for _ in 0..n {
            let v = vars[(rng() % 3) as usize];
            let w = vars[(rng() % 3) as usize];
            let c = (rng() % 3) as i64 - 1;
            match rng() % 6 {
                0 => stmts.push(format!("assert {v} != {c};")),
                1 => stmts.push(format!("assume {v} <= {w};")),
                2 => stmts.push(format!("{v} := {w} + {c};")),
                3 => stmts.push(format!("havoc {v};")),
                4 => stmts.push(format!(
                    "if ({v} == {c}) {{ {v} := {w}; }} else {{ assert {w} >= {c}; }}"
                )),
                _ => stmts.push(format!("if (*) {{ {v} := {c}; }}")),
            }
        }
        let src = format!(
            "procedure f(x: int, y: int, z: int) {{ {} }}",
            stmts.join("\n")
        );
        let d = desugared(&src);
        let mut az = analyzer(&d);
        let got_dead = az.dead_set(&[]).expect("in budget");
        let got_fail = az.fail_set(&[]).expect("in budget");
        let report = brute_force(&d.body, &["x", "y", "z"], &[], &[], &[-1, 0, 1], None);
        // The brute-force domain {-1,0,1} under-approximates the integer
        // semantics: everything brute force reaches/fails, the analyzer
        // must also reach/fail.
        for l in report.reached.iter() {
            assert!(
                !got_dead.contains(l),
                "case {case}: analyzer says {l} dead but interpreter reached it\n{src}"
            );
        }
        for a in report.failed.iter() {
            assert!(
                got_fail.contains(a),
                "case {case}: analyzer misses failure {a}\n{src}"
            );
        }
        // For havoc-free programs, boxing the *inputs* to the brute-force
        // domain makes the two semantics coincide exactly (intermediate
        // values are deterministic functions of the inputs either way).
        if !src.contains("havoc") {
            let box_spec =
                parse_formula("x >= -1 && x <= 1 && y >= -1 && y <= 1 && z >= -1 && z <= 1")
                    .expect("parses");
            let sel = az.add_selector(&box_spec).expect("inputs");
            let boxed_dead = az.dead_set(&[sel]).expect("in budget");
            let boxed_fail = az.fail_set(&[sel]).expect("in budget");
            let all_locs: std::collections::BTreeSet<LocId> = az.locations().into_iter().collect();
            let brute_dead: std::collections::BTreeSet<LocId> =
                all_locs.difference(&report.reached).copied().collect();
            assert_eq!(
                boxed_dead, brute_dead,
                "case {case}: dead sets differ\n{src}"
            );
            assert_eq!(
                boxed_fail, report.failed,
                "case {case}: fail sets differ\n{src}"
            );
        }
    }
}

#[test]
fn wp_cross_check_no_failure_iff_wp_valid() {
    // ¬wp(body,true) satisfiable ⇔ some assertion can fail (any_failure).
    let srcs = [
        "procedure f(x: int) { assert x != 0; }",
        "procedure f(x: int) { assume x > 0; assert x > -1; }",
        "procedure f(x: int) { if (x == 0) { assert x == 0; } }",
        "procedure f(x: int, y: int) { if (*) { assert x != y; } }",
    ];
    let expect_fail = [true, false, false, true];
    for (src, want) in srcs.iter().zip(expect_fail) {
        let d = desugared(src);
        let mut az = analyzer(&d);
        let got = az.any_failure(&[], &[]).expect("in budget");
        assert_eq!(got, want, "src={src}");
    }
}

#[test]
fn selector_sets_compose_conjunctively() {
    let d = desugared(
        "procedure f(x: int, y: int) {
           assert x != 0;
           assert y != 0;
         }",
    );
    let mut az = analyzer(&d);
    let s1 = az
        .add_selector(&parse_formula("x != 0").expect("f"))
        .expect("inputs");
    let s2 = az
        .add_selector(&parse_formula("y != 0").expect("f"))
        .expect("inputs");
    assert_eq!(az.fail_set(&[]).expect("ok").len(), 2);
    assert_eq!(az.fail_set(&[s1]).expect("ok").len(), 1);
    assert_eq!(az.fail_set(&[s2]).expect("ok").len(), 1);
    assert_eq!(az.fail_set(&[s1, s2]).expect("ok").len(), 0);
}

#[test]
fn lemma1_monotonicity_on_figure1() {
    // C1 ⊆ C2 ⇒ Dead(C1) ⊆ Dead(C2) and Fail(C2) ⊆ Fail(C1).
    let d = desugared(FIGURE1);
    let mut az = analyzer(&d);
    let clauses = [
        parse_formula("Freed[c] == 0").expect("f"),
        parse_formula("Freed[buf] == 0").expect("f"),
        parse_formula("c != buf").expect("f"),
        parse_formula("cmd != 1").expect("f"),
    ];
    let sels: Vec<_> = clauses
        .iter()
        .map(|c| az.add_selector(c).expect("inputs"))
        .collect();
    for k in 0..=sels.len() {
        let smaller = &sels[..k.saturating_sub(1)];
        let larger = &sels[..k];
        let dead_small = az.dead_set(smaller).expect("ok");
        let dead_large = az.dead_set(larger).expect("ok");
        assert!(dead_small.is_subset(&dead_large));
        let fail_small = az.fail_set(smaller).expect("ok");
        let fail_large = az.fail_set(larger).expect("ok");
        assert!(fail_large.is_subset(&fail_small));
    }
}
