//! Boolean clause simplification (`Normalize`, §4.3) and clause pruning
//! (`PruneClauses`, §4.3).

use std::collections::BTreeSet;

use crate::clause::QClause;

/// Applies the three rules of §4.3 to a fix-point:
///
/// 1. **Resolution**: from `(c ∨ l)` and `(d ∨ ¬l)` add `(c ∨ d)`;
/// 2. **Subsumption**: if `c` and `(c ∨ l)` are present, remove `(c ∨ l)`;
/// 3. **Tautologies**: remove `(c ∨ l ∨ ¬l)`.
///
/// Resolution can blow up exponentially; `max_clauses` caps the working
/// set (when hit, the current simplified set is returned — still
/// equivalent to the input, just not fully normalized).
pub fn normalize(clauses: &[QClause], max_clauses: usize) -> Vec<QClause> {
    let mut set: BTreeSet<QClause> = clauses
        .iter()
        .filter(|c| !c.is_tautology())
        .cloned()
        .collect();
    loop {
        // Subsumption pass.
        set = remove_subsumed(set);
        // One resolution round: collect new resolvents.
        let list: Vec<QClause> = set.iter().cloned().collect();
        let mut added = false;
        'outer: for i in 0..list.len() {
            for j in 0..list.len() {
                if i == j {
                    continue;
                }
                for lit in list[i].lits() {
                    if !lit.positive {
                        continue;
                    }
                    if let Some(r) = list[i].resolve(&list[j], lit.pred) {
                        if r.is_tautology() {
                            continue;
                        }
                        // Only keep resolvents that subsume something or
                        // are new and not subsumed (avoids runaway growth
                        // while reaching the same fix-point for
                        // subsumption-based simplification).
                        if set.iter().any(|c| c.subsumes_fast(&r)) {
                            continue;
                        }
                        set.insert(r);
                        added = true;
                        if set.len() > max_clauses {
                            break 'outer;
                        }
                    }
                }
            }
        }
        if !added || set.len() > max_clauses {
            return remove_subsumed(set).into_iter().collect();
        }
    }
}

fn remove_subsumed(set: BTreeSet<QClause>) -> BTreeSet<QClause> {
    let list: Vec<QClause> = set.into_iter().collect();
    // Fingerprint every clause once; the O(n²) pairwise loop then does
    // two word-ops per pair (clauses with 64+ predicates fall back to
    // the literal scan).
    let masks: Option<Vec<(u64, u64)>> = list.iter().map(QClause::masks).collect();
    let subsumes = |i: usize, j: usize| match &masks {
        Some(m) => m[i].0 & m[j].0 == m[i].0 && m[i].1 & m[j].1 == m[i].1,
        None => list[i].subsumes(&list[j]),
    };
    let mut keep = vec![true; list.len()];
    for i in 0..list.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..list.len() {
            if i == j || !keep[j] {
                continue;
            }
            if subsumes(i, j) && (list[i].len() < list[j].len() || i < j) {
                keep[j] = false;
            }
        }
    }
    list.into_iter()
        .zip(keep)
        .filter_map(|(c, k)| k.then_some(c))
        .collect()
}

/// A syntactic quality measure for clauses (§4.3). Pruning *weakens* the
/// specification and can reveal more warnings — it is not merely
/// cosmetic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct PruneConfig {
    /// `k`-clause pruning: drop clauses with more than `k` literals
    /// (`None` = keep all, the paper's `k = ∞` column).
    pub max_literals: Option<usize>,
    /// Drop clauses correlating the returns of two or more distinct call
    /// sites (§4.3's alternative measure).
    pub no_cross_call_correlations: bool,
}

/// Applies `PruneClauses` under the given quality measure. The
/// `cross_call` predicate reports, for a predicate index, the set of call
/// sites whose ν-constants it mentions.
pub fn prune_clauses(
    clauses: &[QClause],
    config: PruneConfig,
    call_sites_of_pred: &dyn Fn(usize) -> Vec<u32>,
) -> Vec<QClause> {
    clauses
        .iter()
        .filter(|c| {
            if let Some(k) = config.max_literals {
                if c.len() > k {
                    return false;
                }
            }
            if config.no_cross_call_correlations {
                let mut sites = BTreeSet::new();
                for l in c.lits() {
                    sites.extend(call_sites_of_pred(l.pred));
                }
                if sites.len() >= 2 {
                    return false;
                }
            }
            true
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clause::QLit;

    fn lit(p: usize, pos: bool) -> QLit {
        QLit {
            pred: p,
            positive: pos,
        }
    }

    fn cl(lits: &[(usize, bool)]) -> QClause {
        lits.iter().map(|&(p, s)| lit(p, s)).collect()
    }

    #[test]
    fn paper_example_maximal_clauses_simplify() {
        // (a ∨ b) ∧ (a ∨ ¬b) normalizes to (a) (§4.3's example).
        let input = vec![cl(&[(0, true), (1, true)]), cl(&[(0, true), (1, false)])];
        let out = normalize(&input, 1000);
        assert_eq!(out, vec![cl(&[(0, true)])]);
    }

    #[test]
    fn tautologies_removed() {
        let input = vec![cl(&[(0, true), (0, false)]), cl(&[(1, true)])];
        let out = normalize(&input, 1000);
        assert_eq!(out, vec![cl(&[(1, true)])]);
    }

    #[test]
    fn subsumption_removes_supersets() {
        let input = vec![cl(&[(0, true)]), cl(&[(0, true), (1, true)])];
        let out = normalize(&input, 1000);
        assert_eq!(out, vec![cl(&[(0, true)])]);
    }

    #[test]
    fn full_maximal_cover_collapses() {
        // All four maximal clauses over {a, b} minus one: e.g.
        // (a∨b) ∧ (a∨¬b) ∧ (¬a∨b) ⇔ a ∧ b.
        let input = vec![
            cl(&[(0, true), (1, true)]),
            cl(&[(0, true), (1, false)]),
            cl(&[(0, false), (1, true)]),
        ];
        let out = normalize(&input, 1000);
        assert_eq!(out, vec![cl(&[(0, true)]), cl(&[(1, true)])]);
    }

    /// Truth-table equivalence oracle over ≤ 4 predicates.
    fn models(clauses: &[QClause], n: usize) -> Vec<bool> {
        (0..(1usize << n))
            .map(|m| {
                clauses.iter().all(|c| {
                    c.lits()
                        .iter()
                        .any(|l| ((m >> l.pred) & 1 == 1) == l.positive)
                })
            })
            .collect()
    }

    #[test]
    fn normalize_preserves_semantics_on_random_sets() {
        let mut seed = 0x77aa55ee11u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..100 {
            let n = 3;
            let n_clauses = 1 + (rng() % 5) as usize;
            let mut clauses = Vec::new();
            for _ in 0..n_clauses {
                let mut lits = Vec::new();
                for p in 0..n {
                    match rng() % 3 {
                        0 => lits.push(lit(p, true)),
                        1 => lits.push(lit(p, false)),
                        _ => {}
                    }
                }
                if lits.is_empty() {
                    lits.push(lit(0, true));
                }
                clauses.push(QClause::new(lits));
            }
            let out = normalize(&clauses, 1000);
            assert_eq!(
                models(&clauses, n),
                models(&out, n),
                "normalize changed semantics: {clauses:?} → {out:?}"
            );
        }
    }

    #[test]
    fn k_literal_pruning() {
        let input = vec![
            cl(&[(0, true)]),
            cl(&[(0, true), (1, true)]),
            cl(&[(0, true), (1, true), (2, true)]),
        ];
        let out = prune_clauses(
            &input,
            PruneConfig {
                max_literals: Some(2),
                no_cross_call_correlations: false,
            },
            &|_| vec![],
        );
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn cross_call_pruning() {
        // pred 0 mentions site 0, pred 1 mentions site 1, pred 2 no site.
        let sites = |p: usize| -> Vec<u32> {
            match p {
                0 => vec![0],
                1 => vec![1],
                _ => vec![],
            }
        };
        let input = vec![
            cl(&[(0, true), (1, true)]), // correlates two calls → pruned
            cl(&[(0, true), (2, true)]), // one call → kept
            cl(&[(2, true)]),            // no calls → kept
        ];
        let out = prune_clauses(
            &input,
            PruneConfig {
                max_literals: None,
                no_cross_call_correlations: true,
            },
            &sites,
        );
        assert_eq!(out.len(), 2);
    }
}
