#![warn(missing_docs)]

//! Predicate abstraction layer for ACSpec (§4 of the paper).
//!
//! * [`mine`] — the `Preds` transformer collecting the atomic predicates
//!   of `wp(pr, true)` (§4.4.1), with the *ignore conditionals* (§4.4.2)
//!   and *havoc returns* (§4.4.3) vocabulary abstractions;
//! * [`cover`] — the predicate cover `β_Q(wp(pr, true))` via ALL-SAT
//!   enumeration of maximal cubes (§4.1);
//! * [`clause`] — literals/clauses over `Q` (§2.4);
//! * [`normalize`] — `Normalize` (resolution / subsumption / tautology
//!   elimination) and `PruneClauses` (`k`-literal and cross-call
//!   correlation pruning) (§4.3).
//!
//! # Example
//!
//! ```
//! use acspec_ir::parse::parse_program;
//! use acspec_ir::{desugar_procedure, DesugarOptions};
//! use acspec_predabs::clause::clauses_to_formula;
//! use acspec_predabs::cover::predicate_cover;
//! use acspec_predabs::mine::{mine_predicates, Abstraction};
//! use acspec_vcgen::analyzer::{AnalyzerConfig, ProcAnalyzer};
//!
//! let prog = parse_program("procedure f(x: int) { assert x != 0; }").expect("parses");
//! let proc = prog.procedures[0].clone();
//! let d = desugar_procedure(&prog, &proc, DesugarOptions::default()).expect("desugars");
//! let q = mine_predicates(&d, Abstraction::concrete());
//! let mut az = ProcAnalyzer::new(&d, AnalyzerConfig::default()).expect("encodes");
//! let cover = predicate_cover(&mut az, &q).expect("within budget");
//! assert_eq!(clauses_to_formula(&cover.clauses, &cover.preds).to_string(), "x != 0");
//! ```

pub mod clause;
pub mod cover;
pub mod mine;
pub mod normalize;

pub use clause::{clauses_to_formula, QClause, QLit};
pub use cover::{predicate_cover, predicate_cover_capped, predicate_cover_salvaging, Cover};
pub use mine::{mine_predicates, Abstraction};
pub use normalize::{normalize, prune_clauses, PruneConfig};
