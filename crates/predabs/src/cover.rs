//! The predicate cover `β_Q(wp(pr, true))` (§4.1).
//!
//! Given a predicate set `Q`, the cover is computed by enumerating all
//! assignments over `Q` consistent with `VC(pr) ≡ ¬wp(pr, true)`
//! (ALL-SAT) and negating each maximal cube into a maximal clause. The
//! resulting conjunction of maximal clauses is the canonical
//! representation of the weakest under-approximation of the weakest
//! precondition expressible over `Q`.

use acspec_ir::expr::Atom;
use acspec_smt::TermId;
use acspec_vcgen::analyzer::{ProcAnalyzer, Timeout};

use crate::clause::{QClause, QLit};

/// The predicate cover: the predicate set plus the maximal clauses of
/// `β_Q(wp(pr, true))`.
#[derive(Debug, Clone)]
pub struct Cover {
    /// The predicate set `Q` (indices referenced by the clause literals).
    pub preds: Vec<Atom>,
    /// Maximal clauses (every predicate occurs in each clause).
    pub clauses: Vec<QClause>,
    /// Indicator terms per predicate (for installing clause selectors).
    pub indicators: Vec<TermId>,
}

/// Computes `PredicateCover_Q(pr)` by ALL-SAT enumeration (§4.1) with a
/// default cap of 4096 cover clauses.
///
/// # Errors
///
/// Returns [`Timeout`] if the analyzer's budget or the clause cap is
/// exhausted (the paper reports the same: "others time out during the
/// predicate cover generation", §5.1.4).
pub fn predicate_cover(az: &mut ProcAnalyzer, q: &[Atom]) -> Result<Cover, Timeout> {
    predicate_cover_capped(az, q, 4096)
}

/// Computes `PredicateCover_Q(pr)` with an explicit clause cap.
///
/// The enumeration's blocking clauses are scoped under a session literal,
/// so the analyzer remains usable for ordinary `Dead`/`Fail` queries
/// afterwards.
///
/// # Errors
///
/// Returns [`Timeout`] if the analyzer's budget or `max_clauses` is
/// exhausted.
///
/// # Panics
///
/// Panics if a predicate mentions names outside the input vocabulary
/// (predicates produced by [`crate::mine`] never do).
pub fn predicate_cover_capped(
    az: &mut ProcAnalyzer,
    q: &[Atom],
    max_clauses: usize,
) -> Result<Cover, Timeout> {
    predicate_cover_salvaging(az, q, max_clauses, &mut None)
}

/// Like [`predicate_cover_capped`], but on `Err` deposits the clauses
/// enumerated so far into `salvage` (sorted and deduped). The partial
/// cover under-approximates the true cover — it is missing failing
/// cubes, so conjoining its clauses yields a *weaker* screen than
/// `β_Q(wp)` — which is exactly what a degradation ladder wants: a
/// best-effort strengthening it can report instead of nothing.
///
/// # Errors
///
/// Returns [`Timeout`] if the analyzer's budget, deadline, or
/// `max_clauses` is exhausted.
///
/// # Panics
///
/// Panics if a predicate mentions names outside the input vocabulary.
pub fn predicate_cover_salvaging(
    az: &mut ProcAnalyzer,
    q: &[Atom],
    max_clauses: usize,
    salvage: &mut Option<Cover>,
) -> Result<Cover, Timeout> {
    // Indicator per predicate: b_i ⇔ ⟦q_i⟧ over the input environment.
    // Translation goes through the session arena, so a predicate shared
    // across configurations is interned and encoded once.
    let indicators: Vec<TermId> = q
        .iter()
        .map(|atom| {
            az.add_indicator_formula(&atom.to_formula())
                .expect("predicates range over the input vocabulary")
        })
        .collect();

    // Cube-and-conquer path: split the indicator space into disjoint
    // cubes and enumerate them on parallel workers. Full cubes
    // partition the model space and the merged vectors are sorted and
    // deduped below just like the sequential enumeration's, so the
    // final cover (and every certificate rebuilt from it) is
    // bit-identical to the sequential session's.
    if az.cube_split() > 0 {
        let (vectors, err) = az.cube_all_failures(&[], &indicators, max_clauses);
        let mut clauses: Vec<QClause> = vectors
            .into_iter()
            .map(|vector| {
                vector
                    .into_iter()
                    .enumerate()
                    .map(|(i, positive)| QLit { pred: i, positive }.negated())
                    .collect::<QClause>()
            })
            .collect();
        if let Some(t) = err {
            let mut partial = std::mem::take(&mut clauses);
            partial.sort();
            partial.dedup();
            *salvage = Some(Cover {
                preds: q.to_vec(),
                clauses: partial,
                indicators,
            });
            return Err(t);
        }
        clauses.sort();
        clauses.dedup();
        return Ok(Cover {
            preds: q.to_vec(),
            clauses,
            indicators,
        });
    }

    // Session literal scoping the blocking clauses.
    let session = az.ctx.fresh_bool_var("allsat");
    let not_session = az.ctx.mk_not(session);

    let salvage_partial = |clauses: &[QClause], salvage: &mut Option<Cover>| {
        let mut partial = clauses.to_vec();
        partial.sort();
        partial.dedup();
        *salvage = Some(Cover {
            preds: q.to_vec(),
            clauses: partial,
            indicators: indicators.clone(),
        });
    };

    let mut clauses: Vec<QClause> = Vec::new();
    loop {
        if clauses.len() >= max_clauses {
            az.note_cap_fault();
            salvage_partial(&clauses, salvage);
            return Err(Timeout);
        }
        match az.any_failure(&[], &[session]) {
            Ok(true) => {}
            Ok(false) => break,
            Err(t) => {
                salvage_partial(&clauses, salvage);
                return Err(t);
            }
        }
        // Extract the cube over Q from the model and block it.
        let mut cube: Vec<QLit> = Vec::with_capacity(q.len());
        for (i, &b) in indicators.iter().enumerate() {
            let value = az.model_bool(b).expect("indicator assigned in model");
            cube.push(QLit {
                pred: i,
                positive: value,
            });
        }
        // Blocking clause: ¬session ∨ ⋁ ¬lit.
        let mut blocking: Vec<TermId> = Vec::with_capacity(cube.len() + 1);
        blocking.push(not_session);
        for l in &cube {
            let b = indicators[l.pred];
            blocking.push(if l.positive { az.ctx.mk_not(b) } else { b });
        }
        az.add_clause(&blocking);
        // The cover clause is the negation of the cube.
        clauses.push(cube.into_iter().map(QLit::negated).collect::<QClause>());
        if q.is_empty() {
            // With Q = {} a single failing model means β_Q(wp) = false:
            // the empty cube blocks everything.
            break;
        }
    }
    clauses.sort();
    clauses.dedup();
    Ok(Cover {
        preds: q.to_vec(),
        clauses,
        indicators,
    })
}

impl Cover {
    /// Installs a selector per clause on the analyzer, returning them in
    /// clause order. Passing a subset of the selectors to `Dead`/`Fail`
    /// evaluates the correspondingly weakened specification.
    pub fn install_selectors(&self, az: &mut ProcAnalyzer) -> Vec<acspec_vcgen::Selector> {
        self.install_handles(az)
            .into_iter()
            .map(|(s, _)| s)
            .collect()
    }

    /// Like [`Cover::install_selectors`], but also returns each clause's
    /// boolean body term, which callers need for entailment queries
    /// between clause subsets (the minimality filter of Algorithm 2).
    pub fn install_handles(&self, az: &mut ProcAnalyzer) -> Vec<(acspec_vcgen::Selector, TermId)> {
        self.clauses
            .iter()
            .map(|c| {
                let parts: Vec<TermId> = c
                    .lits()
                    .iter()
                    .map(|l| {
                        let b = self.indicators[l.pred];
                        if l.positive {
                            b
                        } else {
                            az.ctx.mk_not(b)
                        }
                    })
                    .collect();
                let body = az.ctx.mk_or(parts);
                (az.add_selector_term(body), body)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clause::clauses_to_formula;
    use crate::mine::{mine_predicates, Abstraction};
    use acspec_ir::parse::parse_program;
    use acspec_ir::{desugar_procedure, DesugarOptions, DesugaredProc};
    use acspec_vcgen::analyzer::AnalyzerConfig;

    fn setup(src: &str) -> (DesugaredProc, ProcAnalyzer, Vec<Atom>) {
        let prog = parse_program(src).expect("parses");
        let proc = prog.procedures.last().expect("proc").clone();
        let d = desugar_procedure(&prog, &proc, DesugarOptions::default()).expect("desugars");
        let az = ProcAnalyzer::new(&d, AnalyzerConfig::default()).expect("encodes");
        let q = mine_predicates(&d, Abstraction::concrete());
        (d, az, q)
    }

    #[test]
    fn cover_of_simple_assert() {
        // assert x != 0 over Q = {x == 0}: failing cube is (x == 0), so
        // the cover is the single clause (x != 0).
        let (_, mut az, q) = setup("procedure f(x: int) { assert x != 0; }");
        assert_eq!(q.len(), 1);
        let cover = predicate_cover(&mut az, &q).expect("in budget");
        assert_eq!(cover.clauses.len(), 1);
        let f = clauses_to_formula(&cover.clauses, &cover.preds);
        assert_eq!(f.to_string(), "x != 0");
    }

    #[test]
    fn cover_is_empty_for_correct_procedure() {
        let (_, mut az, q) = setup(
            "procedure f(x: int) {
               assume x != 0;
               assert x != 0;
             }",
        );
        let cover = predicate_cover(&mut az, &q).expect("in budget");
        assert!(
            cover.clauses.is_empty(),
            "β_Q(wp) = true: {:?}",
            cover.clauses
        );
    }

    #[test]
    fn cover_with_empty_q_is_false_for_buggy_procedure() {
        // Q = {}: any failure makes the cover the empty clause (false).
        let (_, mut az, _) = setup("procedure f(x: int) { assert x != 0; }");
        let cover = predicate_cover(&mut az, &[]).expect("in budget");
        assert_eq!(cover.clauses.len(), 1);
        assert!(cover.clauses[0].is_empty());
    }

    #[test]
    fn cover_clauses_are_maximal() {
        let (_, mut az, q) = setup(
            "procedure f(x: int, y: int) {
               assert x != 0;
               assert y != 0;
             }",
        );
        assert_eq!(q.len(), 2);
        let cover = predicate_cover(&mut az, &q).expect("in budget");
        for c in &cover.clauses {
            assert_eq!(c.len(), 2, "maximal clauses mention every predicate");
        }
        // Failing cubes: x=0 (any y), and x≠0 ∧ y=0. Over maximal cubes:
        // {x=0,y=0}, {x=0,y≠0}, {x≠0,y=0} → 3 clauses.
        assert_eq!(cover.clauses.len(), 3);
        // Semantics: β_Q(wp) ⇔ x ≠ 0 ∧ y ≠ 0. Check via selectors.
        let sels = cover.install_selectors(&mut az);
        assert!(az.fail_set(&sels).expect("ok").is_empty());
    }

    #[test]
    fn analyzer_usable_after_allsat() {
        // Blocking clauses are scoped: plain Fail(true) still reports the
        // failure afterwards.
        let (_, mut az, q) = setup("procedure f(x: int) { assert x != 0; }");
        let _ = predicate_cover(&mut az, &q).expect("in budget");
        assert_eq!(az.fail_set(&[]).expect("ok").len(), 1);
    }

    #[test]
    fn cube_cover_is_bit_identical_to_sequential() {
        // The same procedure covered sequentially and with every cube
        // split depth: clause lists (and hence certificates) must be
        // bit-identical, and salvage-free runs must agree on Ok.
        let src = "procedure f(x: int, y: int, z: int) {
                     assert x != 0;
                     assert y != 0;
                     assert z != 0;
                   }";
        let (d, mut az_seq, q) = setup(src);
        let seq = predicate_cover(&mut az_seq, &q).expect("in budget");
        for split in [1u32, 2, 3, 5] {
            let config = AnalyzerConfig {
                cube_split: split,
                ..AnalyzerConfig::default()
            };
            let mut az = ProcAnalyzer::new(&d, config).expect("encodes");
            let cover = predicate_cover(&mut az, &q).expect("in budget");
            assert_eq!(
                format!("{:?}", cover.clauses),
                format!("{:?}", seq.clauses),
                "cube_split={split} diverged from sequential"
            );
        }
    }

    #[test]
    fn cube_cover_with_empty_q_matches_sequential() {
        let (_, mut az, _) = setup("procedure f(x: int) { assert x != 0; }");
        let (d2, _, _) = setup("procedure f(x: int) { assert x != 0; }");
        let config = AnalyzerConfig {
            cube_split: 2,
            ..AnalyzerConfig::default()
        };
        let mut az_cube = ProcAnalyzer::new(&d2, config).expect("encodes");
        let seq = predicate_cover(&mut az, &[]).expect("in budget");
        let cube = predicate_cover(&mut az_cube, &[]).expect("in budget");
        assert_eq!(format!("{:?}", cube.clauses), format!("{:?}", seq.clauses));
        assert_eq!(cube.clauses.len(), 1);
        assert!(cube.clauses[0].is_empty());
    }

    #[test]
    fn figure1_cover_suppresses_all_failures() {
        // The full predicate cover (over the concrete Q) is β_Q(wp) ≡ wp,
        // which fails nothing and kills the inner-branch code.
        let src = "
            global Freed: map;
            procedure Foo(c: int, buf: int, cmd: int) {
              if (*) {
                assert Freed[c] == 0;   Freed[c] := 1;
                assert Freed[buf] == 0; Freed[buf] := 1;
              } else {
                if (cmd == 1) {
                  if (*) {
                    assert Freed[c] == 0;   Freed[c] := 1;
                    assert Freed[buf] == 0; Freed[buf] := 1;
                  }
                }
                assert Freed[c] == 0;   Freed[c] := 1;
                assert Freed[buf] == 0; Freed[buf] := 1;
              }
            }";
        let (_, mut az, q) = setup(src);
        let cover = predicate_cover(&mut az, &q).expect("in budget");
        assert!(!cover.clauses.is_empty());
        let sels = cover.install_selectors(&mut az);
        assert!(
            az.fail_set(&sels).expect("ok").is_empty(),
            "wp fails nothing"
        );
        assert!(
            !az.dead_set(&sels).expect("ok").is_empty(),
            "wp kills code → SIB"
        );
    }
}
