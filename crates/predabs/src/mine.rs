//! Predicate mining (§4.4): the `Preds` transformer collecting the atomic
//! predicates of `wp(pr, true)`, parameterized by the two vocabulary
//! abstractions of §4.4.2 and §4.4.3.

use std::collections::BTreeSet;

use acspec_ir::arena::TermArena;
use acspec_ir::desugar::DesugaredProc;
use acspec_ir::expr::{Atom, Expr};
use acspec_ir::stmt::{BranchCond, Stmt};

/// The vocabulary abstractions of Figure 4. Their product yields the four
/// configurations `Conc` (neither), `A0` (havoc returns), `A1` (ignore
/// conditionals), and `A2` (both).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Abstraction {
    /// §4.4.2: treat `if (c)` as `if (*)` during collection, so guard
    /// predicates never enter `Q`.
    pub ignore_conditionals: bool,
    /// §4.4.3: treat call-site assignments `x := ν_l.pr.x` as `havoc x`,
    /// so no predicate mentions callee modifications.
    pub havoc_returns: bool,
}

impl Abstraction {
    /// The concrete configuration (`Conc`).
    pub fn concrete() -> Abstraction {
        Abstraction::default()
    }
}

/// Collects the predicate set `Q` for a desugared procedure under the
/// given abstraction: `Preds(body, {})` filtered to the environment
/// vocabulary (parameters, globals, and — unless havoc-returns is on —
/// ν-constants).
///
/// Runs over a scratch [`TermArena`]; pass a session-scoped arena to
/// [`mine_predicates_interned`] to share substitution/atom memos across
/// the four configurations.
pub fn mine_predicates(proc: &DesugaredProc, abs: Abstraction) -> Vec<Atom> {
    let mut arena = TermArena::new();
    mine_predicates_interned(&mut arena, proc, abs)
}

/// [`mine_predicates`] over a caller-supplied arena. The `Preds`
/// transformer's hot loop — substitute an assignment into every collected
/// atom, then re-collect atoms — is memoized by interned ids, so the four
/// abstraction configurations (which share most of their atom sets) reuse
/// each other's work.
pub fn mine_predicates_interned(
    arena: &mut TermArena,
    proc: &DesugaredProc,
    abs: Abstraction,
) -> Vec<Atom> {
    let q = preds_interned(arena, &proc.body, BTreeSet::new(), abs);
    filter_to_vocabulary(q, proc, abs)
}

/// The historical tree-based miner, kept as the equivalence oracle for
/// the interned path (pinned by tests).
pub fn mine_predicates_reference(proc: &DesugaredProc, abs: Abstraction) -> Vec<Atom> {
    let q = preds(&proc.body, BTreeSet::new(), abs);
    filter_to_vocabulary(q, proc, abs)
}

fn filter_to_vocabulary(q: BTreeSet<Atom>, proc: &DesugaredProc, abs: Abstraction) -> Vec<Atom> {
    let input_vars: BTreeSet<&str> = proc.inputs.iter().map(String::as_str).collect();
    let mut out: Vec<Atom> = q
        .into_iter()
        .filter(|a| {
            // Only environment vocabulary.
            if !a
                .free_vars()
                .iter()
                .all(|v| input_vars.contains(v.as_str()))
            {
                return false;
            }
            if abs.havoc_returns && !a.nu_consts().is_empty() {
                return false;
            }
            true
        })
        .collect();
    out.sort();
    out.dedup();
    out
}

/// The `Preds(s, Q)` transformer of §4.4.1.
fn preds(s: &Stmt, q: BTreeSet<Atom>, abs: Abstraction) -> BTreeSet<Atom> {
    match s {
        Stmt::Skip => q,
        Stmt::Assume(f) | Stmt::Assert { cond: f, .. } => {
            let mut q = q;
            q.extend(f.atoms());
            q
        }
        Stmt::Assign(x, e) => {
            if abs.havoc_returns && matches!(e, Expr::Nu(_)) {
                // Treated as `havoc x`.
                return drop_var(q, x);
            }
            // Atoms(Q[e/x]): substitute into each atom and re-collect
            // (write-elimination and ite-splitting happen inside .atoms()).
            let mut out = BTreeSet::new();
            for a in q {
                let f = a.to_formula().subst(x, e);
                out.extend(f.atoms());
            }
            out
        }
        Stmt::Havoc(x) => drop_var(q, x),
        Stmt::Seq(ss) => ss.iter().rev().fold(q, |acc, s| preds(s, acc, abs)),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let mut out = preds(then_branch, q.clone(), abs);
            out.extend(preds(else_branch, q, abs));
            if let BranchCond::Det(c) = cond {
                if !abs.ignore_conditionals {
                    out.extend(c.atoms());
                }
            }
            out
        }
        Stmt::Call { .. } | Stmt::While { .. } => {
            unreachable!("predicate mining requires a core body")
        }
    }
}

/// `Preds(s, Q)` over a hash-consed arena. Identical to [`preds`] by
/// construction: [`TermArena::subst`] replicates the raw tree
/// substitution and [`TermArena::atoms`] delegates to
/// [`acspec_ir::Formula::atoms`]; both are memoized by interned id, so
/// the repeated `(atom, assignment)` pairs hit the memo after the first
/// configuration.
fn preds_interned(
    arena: &mut TermArena,
    s: &Stmt,
    q: BTreeSet<Atom>,
    abs: Abstraction,
) -> BTreeSet<Atom> {
    match s {
        Stmt::Skip => q,
        Stmt::Assume(f) | Stmt::Assert { cond: f, .. } => {
            let mut q = q;
            let fid = arena.intern_formula(f);
            q.extend(arena.atoms(fid));
            q
        }
        Stmt::Assign(x, e) => {
            if abs.havoc_returns && matches!(e, Expr::Nu(_)) {
                // Treated as `havoc x`.
                return drop_var(q, x);
            }
            // Atoms(Q[e/x]): substitute into each atom and re-collect;
            // both steps are per-id memo lookups after the first time a
            // given (atom, assignment) pair is seen.
            let eid = arena.intern_expr(e);
            let mut out = BTreeSet::new();
            for a in q {
                let fid = arena.intern_formula(&a.to_formula());
                let sub = arena.subst(fid, x, eid);
                out.extend(arena.atoms(sub));
            }
            out
        }
        Stmt::Havoc(x) => drop_var(q, x),
        Stmt::Seq(ss) => ss
            .iter()
            .rev()
            .fold(q, |acc, s| preds_interned(arena, s, acc, abs)),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let mut out = preds_interned(arena, then_branch, q.clone(), abs);
            out.extend(preds_interned(arena, else_branch, q, abs));
            if let BranchCond::Det(c) = cond {
                if !abs.ignore_conditionals {
                    let cid = arena.intern_formula(c);
                    out.extend(arena.atoms(cid));
                }
            }
            out
        }
        Stmt::Call { .. } | Stmt::While { .. } => {
            unreachable!("predicate mining requires a core body")
        }
    }
}

/// `Drop(Q, x)`: removes atoms that mention `x`.
fn drop_var(q: BTreeSet<Atom>, x: &str) -> BTreeSet<Atom> {
    q.into_iter()
        .filter(|a| !a.free_vars().contains(x))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acspec_ir::parse::parse_program;
    use acspec_ir::{desugar_procedure, DesugarOptions};

    fn mine(src: &str, abs: Abstraction) -> Vec<String> {
        let prog = parse_program(src).expect("parses");
        let proc = prog.procedures.last().expect("proc").clone();
        let d = desugar_procedure(&prog, &proc, DesugarOptions::default()).expect("desugars");
        let mut names: Vec<String> = mine_predicates(&d, abs)
            .iter()
            .map(|a| a.to_formula().to_string())
            .collect();
        names.sort();
        names
    }

    #[test]
    fn collects_assert_atoms_through_assignments() {
        let q = mine(
            "procedure f(x: int) {
               var y: int;
               y := x + 1;
               assert y != 0;
             }",
            Abstraction::concrete(),
        );
        // wp = x + 1 != 0; the atom is the equality, canonicalized with
        // operands in the derived expression order.
        assert_eq!(q, vec!["0 == x + 1"]);
    }

    #[test]
    fn havoc_drops_atoms() {
        let q = mine(
            "procedure f(x: int) {
               havoc x;
               assert x != 0;
             }",
            Abstraction::concrete(),
        );
        assert!(q.is_empty(), "got {q:?}");
    }

    #[test]
    fn conditional_guards_collected_unless_ignored() {
        let src = "procedure f(c1: int, x: int) {
            if (c1 == 1) {
              assert x != 0;
            }
          }";
        let q = mine(src, Abstraction::concrete());
        assert_eq!(q, vec!["c1 == 1", "x == 0"]);
        let q = mine(
            src,
            Abstraction {
                ignore_conditionals: true,
                havoc_returns: false,
            },
        );
        assert_eq!(q, vec!["x == 0"]);
    }

    #[test]
    fn write_elimination_yields_alias_predicates() {
        // The Figure 1 phenomenon: the predicate `c == buf` appears via
        // read-over-write rewriting.
        let q = mine(
            "global Freed: map;
             procedure f(c: int, buf: int) {
               assert Freed[c] == 0; Freed[c] := 1;
               assert Freed[buf] == 0;
             }",
            Abstraction::concrete(),
        );
        assert!(
            q.contains(&"buf == c".to_string()) || q.contains(&"c == buf".to_string()),
            "alias predicate expected: {q:?}"
        );
        assert!(q.iter().any(|p| p.contains("Freed[c]")), "got {q:?}");
        assert!(q.iter().any(|p| p.contains("Freed[buf]")), "got {q:?}");
    }

    #[test]
    fn nu_predicates_and_havoc_returns() {
        let src = "procedure calloc() returns (p: int);
            procedure f() {
              var data: int;
              call data := calloc();
              assert data != 0;
            }";
        let q = mine(src, Abstraction::concrete());
        assert_eq!(q, vec!["nu@0.calloc.p == 0"]);
        let q = mine(
            src,
            Abstraction {
                ignore_conditionals: false,
                havoc_returns: true,
            },
        );
        assert!(q.is_empty(), "havoc-returns drops ν atoms: {q:?}");
    }

    #[test]
    fn figure2_abstraction_breaks_call_correlation() {
        // §1.1.2: under Conc the vocabulary can correlate the two calls;
        // under ignore-conditionals the guard atom (from the call's
        // return) is gone.
        let src = "
            procedure calloc() returns (p: int);
            procedure static_returns_t() returns (t: int);
            procedure bar() {
              var data: int; var t: int;
              call data := calloc();
              call t := static_returns_t();
              if (t == 1) {
                assert data != 0;
              } else {
                if (data != 0) {
                  assert data != 0;
                }
              }
            }";
        let conc = mine(src, Abstraction::concrete());
        assert!(
            conc.iter().any(|p| p.contains("static_returns_t")),
            "Conc keeps the conditional correlation: {conc:?}"
        );
        let a1 = mine(
            src,
            Abstraction {
                ignore_conditionals: true,
                havoc_returns: false,
            },
        );
        assert!(
            !a1.iter().any(|p| p.contains("static_returns_t")),
            "A1 drops guard predicates: {a1:?}"
        );
        assert!(
            a1.iter().any(|p| p.contains("calloc")),
            "A1 keeps the assert-derived ν atom: {a1:?}"
        );
    }

    #[test]
    fn locals_filtered_from_vocabulary() {
        let q = mine(
            "procedure f(x: int) {
               var tmp: int;
               assert tmp != 0;
             }",
            Abstraction::concrete(),
        );
        assert!(
            q.is_empty(),
            "uninitialized-local atoms are not inputs: {q:?}"
        );
    }

    #[test]
    fn interned_miner_matches_reference_and_shares_across_configs() {
        let srcs = [
            "global Freed: map;
             procedure f(c: int, buf: int, cmd: int) {
               if (cmd == 1) {
                 assert Freed[c] == 0; Freed[c] := 1;
               }
               assert Freed[buf] == 0; Freed[buf] := 1;
               assert Freed[c] == 0;
             }",
            "procedure ext() returns (r: int);
             procedure f(x: int, y: int) {
               var r: int;
               call r := ext();
               y := x + r;
               if (x < y) { assert y != 0; } else { havoc x; assert r != 0; }
             }",
        ];
        let all_abs = [
            Abstraction::concrete(),
            Abstraction {
                ignore_conditionals: true,
                havoc_returns: false,
            },
            Abstraction {
                ignore_conditionals: false,
                havoc_returns: true,
            },
            Abstraction {
                ignore_conditionals: true,
                havoc_returns: true,
            },
        ];
        for src in srcs {
            let prog = parse_program(src).expect("parses");
            let proc = prog.procedures.last().expect("proc").clone();
            let d = desugar_procedure(&prog, &proc, DesugarOptions::default()).expect("desugars");
            // One session arena shared across all four configurations.
            let mut arena = TermArena::new();
            for abs in all_abs {
                assert_eq!(
                    mine_predicates_interned(&mut arena, &d, abs),
                    mine_predicates_reference(&d, abs),
                    "src={src} abs={abs:?}"
                );
            }
            let stats = arena.stats();
            assert!(
                stats.memo_hits() > 0,
                "later configs must reuse memoized work: {stats:?}"
            );
        }
    }

    #[test]
    fn abstraction_vocabularies_are_ordered() {
        // Q(A2) ⊆ Q(A1) ⊆ Q(Conc) and Q(A2) ⊆ Q(A0) ⊆ Q(Conc) (Fig. 4).
        let src = "
            global G: map;
            procedure ext() returns (r: int);
            procedure f(x: int, y: int) {
              var r: int;
              call r := ext();
              if (x < y) {
                assert G[x] == 0;
              }
              assert r != 0;
            }";
        let conc: BTreeSet<String> = mine(src, Abstraction::concrete()).into_iter().collect();
        let a0: BTreeSet<String> = mine(
            src,
            Abstraction {
                ignore_conditionals: false,
                havoc_returns: true,
            },
        )
        .into_iter()
        .collect();
        let a1: BTreeSet<String> = mine(
            src,
            Abstraction {
                ignore_conditionals: true,
                havoc_returns: false,
            },
        )
        .into_iter()
        .collect();
        let a2: BTreeSet<String> = mine(
            src,
            Abstraction {
                ignore_conditionals: true,
                havoc_returns: true,
            },
        )
        .into_iter()
        .collect();
        assert!(a0.is_subset(&conc));
        assert!(a1.is_subset(&conc));
        assert!(a2.is_subset(&a0));
        assert!(a2.is_subset(&a1));
        assert!(a2.len() < conc.len());
    }
}
