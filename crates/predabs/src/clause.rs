//! Clauses and cubes over a predicate set `Q` (§2.4).

use acspec_ir::expr::{Atom, Formula};

/// A literal over `Q`: predicate index plus polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QLit {
    /// Index into the predicate set.
    pub pred: usize,
    /// Polarity (`true` = the predicate itself).
    pub positive: bool,
}

impl QLit {
    /// The complementary literal.
    #[must_use]
    pub fn negated(self) -> QLit {
        QLit {
            pred: self.pred,
            positive: !self.positive,
        }
    }
}

/// A disjunction of literals over `Q`, kept sorted and deduplicated.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QClause(Vec<QLit>);

impl QClause {
    /// Creates a clause, normalizing literal order and duplicates.
    pub fn new(mut lits: Vec<QLit>) -> QClause {
        lits.sort_unstable();
        lits.dedup();
        QClause(lits)
    }

    /// The literals, in sorted order.
    pub fn lits(&self) -> &[QLit] {
        &self.0
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the clause is empty (equivalent to `false`).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// True if the clause contains both a literal and its negation.
    pub fn is_tautology(&self) -> bool {
        self.0
            .windows(2)
            .any(|w| w[0].pred == w[1].pred && w[0].positive != w[1].positive)
    }

    /// True if `self` subsumes `other` (`self ⊆ other`).
    pub fn subsumes(&self, other: &QClause) -> bool {
        self.0.iter().all(|l| other.0.contains(l))
    }

    /// Resolves two clauses on `pivot` if possible, returning the
    /// resolvent.
    pub fn resolve(&self, other: &QClause, pivot: usize) -> Option<QClause> {
        let pos = QLit {
            pred: pivot,
            positive: true,
        };
        let neg = pos.negated();
        let (has_pos, has_neg) = (self.0.contains(&pos), other.0.contains(&neg));
        if !has_pos || !has_neg {
            return None;
        }
        // Classical binary resolution: drop the positive pivot from `self`
        // and the negative pivot from `other`; any *other* occurrence of
        // the pivot (a tautological input) survives.
        let mut lits: Vec<QLit> = self
            .0
            .iter()
            .filter(|&&l| l != pos)
            .chain(other.0.iter().filter(|&&l| l != neg))
            .copied()
            .collect();
        lits.sort_unstable();
        lits.dedup();
        Some(QClause(lits))
    }

    /// Renders the clause as a formula over the predicate set.
    pub fn to_formula(&self, preds: &[Atom]) -> Formula {
        Formula::or(
            self.0
                .iter()
                .map(|l| preds[l.pred].to_literal_formula(l.positive))
                .collect(),
        )
    }

    /// The negation of the clause (a cube) as a formula.
    pub fn negation_to_formula(&self, preds: &[Atom]) -> Formula {
        Formula::and(
            self.0
                .iter()
                .map(|l| preds[l.pred].to_literal_formula(!l.positive))
                .collect(),
        )
    }
}

impl FromIterator<QLit> for QClause {
    fn from_iter<I: IntoIterator<Item = QLit>>(iter: I) -> QClause {
        QClause::new(iter.into_iter().collect())
    }
}

/// Renders a set of clauses as the conjunction `⋀(C)` (§2.4; the empty
/// set is `true`).
pub fn clauses_to_formula(clauses: &[QClause], preds: &[Atom]) -> Formula {
    Formula::and(clauses.iter().map(|c| c.to_formula(preds)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use acspec_ir::expr::{Expr, RelOp};

    fn lit(p: usize, pos: bool) -> QLit {
        QLit {
            pred: p,
            positive: pos,
        }
    }

    #[test]
    fn normalization_sorts_and_dedupes() {
        let c = QClause::new(vec![lit(2, true), lit(0, false), lit(2, true)]);
        assert_eq!(c.lits(), &[lit(0, false), lit(2, true)]);
    }

    #[test]
    fn tautology_detection() {
        let c = QClause::new(vec![lit(1, true), lit(1, false)]);
        assert!(c.is_tautology());
        let c = QClause::new(vec![lit(1, true), lit(2, false)]);
        assert!(!c.is_tautology());
    }

    #[test]
    fn subsumption() {
        let small = QClause::new(vec![lit(0, true)]);
        let big = QClause::new(vec![lit(0, true), lit(1, false)]);
        assert!(small.subsumes(&big));
        assert!(!big.subsumes(&small));
        assert!(small.subsumes(&small));
    }

    #[test]
    fn resolution() {
        // (a ∨ b) ⋈_a (¬a ∨ c) = (b ∨ c)
        let c1 = QClause::new(vec![lit(0, true), lit(1, true)]);
        let c2 = QClause::new(vec![lit(0, false), lit(2, true)]);
        let r = c1.resolve(&c2, 0).expect("resolvable");
        assert_eq!(r, QClause::new(vec![lit(1, true), lit(2, true)]));
        assert!(c1.resolve(&c2, 1).is_none());
    }

    #[test]
    fn rendering() {
        let preds = vec![
            Atom::from_rel(RelOp::Eq, Expr::var("x"), Expr::Int(0)).0,
            Atom::from_rel(RelOp::Lt, Expr::var("x"), Expr::var("y")).0,
        ];
        let c = QClause::new(vec![lit(0, false), lit(1, true)]);
        let f = c.to_formula(&preds);
        assert_eq!(f.to_string(), "x != 0 || x < y");
        let empty: Vec<QClause> = vec![];
        assert_eq!(clauses_to_formula(&empty, &preds), Formula::True);
    }
}
